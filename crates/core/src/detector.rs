//! The unified incremental sequence detector — the public entry point of
//! the temporal-operator layer.
//!
//! A [`Detector`] wraps a [`SeqPattern`] with:
//!
//! * the per-mode engine (or the exception engine for `EXCEPTION_SEQ`),
//! * optional **partitioning**: a key expression per input port; tuples
//!   are detected independently per key. This is how equi-join conditions
//!   like `C1.tagid = C2.tagid = ...` (Example 6) execute without
//!   post-hoc filtering — the planner lifts them into the partition key;
//! * an optional **post-filter** over complete matches, for residual
//!   predicates the key/gap constraints cannot express.
//!
//! Feeding a detector: call [`Detector::on_tuple`] with the input port and
//! tuple (per-port arrival must be timestamp-ordered; cross-port order is
//! merged internally by `(ts, seq)`), and [`Detector::on_punctuation`]
//! when stream time advances — window-expiry exceptions (§3.1.3's *active
//! expiration*) fire only from punctuations.

use crate::binding::{DetectorOutput, SeqMatch};
use crate::modes::{engine_for, Exception, ModeEngine};
use crate::pattern::SeqPattern;
use eslev_dsms::ckpt::StateNode;
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::expr::Expr;
use eslev_dsms::hash::FnvBuildHasher;
use eslev_dsms::key::{KeyCodec, StateKey};
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;
use eslev_dsms::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Residual predicate over a complete match.
pub type MatchFilter = Arc<dyn Fn(&SeqMatch) -> Result<bool> + Send + Sync>;

/// Whether the detector runs plain `SEQ` or `EXCEPTION_SEQ` semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectKind {
    /// Emit matches only.
    Seq,
    /// Emit matches *and* exceptions (Sequence Completion Level events).
    ExceptionSeq,
}

/// Builder/configuration for a [`Detector`].
pub struct DetectorConfig {
    /// The sequence pattern (elements, window, pairing mode).
    pub pattern: SeqPattern,
    /// SEQ vs EXCEPTION_SEQ.
    pub kind: DetectKind,
    /// Partition key expression per input port (all ports or none).
    pub partition: Option<Vec<Expr>>,
    /// Residual predicate on complete matches.
    pub filter: Option<MatchFilter>,
}

impl DetectorConfig {
    /// Plain SEQ over `pattern`, unpartitioned, unfiltered.
    pub fn seq(pattern: SeqPattern) -> DetectorConfig {
        DetectorConfig {
            pattern,
            kind: DetectKind::Seq,
            partition: None,
            filter: None,
        }
    }

    /// EXCEPTION_SEQ over `pattern`.
    pub fn exception(pattern: SeqPattern) -> DetectorConfig {
        DetectorConfig {
            kind: DetectKind::ExceptionSeq,
            ..DetectorConfig::seq(pattern)
        }
    }

    /// Partition by one key expression per input port.
    pub fn with_partition(mut self, keys: Vec<Expr>) -> DetectorConfig {
        self.partition = Some(keys);
        self
    }

    /// Attach a residual match filter.
    pub fn with_filter(mut self, f: MatchFilter) -> DetectorConfig {
        self.filter = Some(f);
        self
    }
}

/// The incremental multi-stream sequence detector.
///
/// Partition state keys on compact [`StateKey`] encodings and iterates
/// in **creation order** (tracked in `order`), so punctuation-driven
/// emission is deterministic and identical across representations and
/// across a checkpoint/restore boundary.
pub struct Detector {
    pattern: Arc<SeqPattern>,
    kind: DetectKind,
    partition: Option<Vec<Expr>>,
    filter: Option<MatchFilter>,
    codec: KeyCodec,
    scratch: Vec<u8>,
    states: HashMap<StateKey, Box<dyn ModeEngine>, FnvBuildHasher>,
    /// Live partition keys in creation order — the punctuation
    /// iteration and checkpoint serialization order.
    order: Vec<StateKey>,
    matches_emitted: u64,
    exceptions_emitted: u64,
    partitions_created: u64,
    /// Prunes carried over from partitions already dropped, so the total
    /// survives the dead-partition sweep in [`Detector::on_punctuation`].
    prunes_carry: u64,
}

impl Detector {
    /// Build a detector, validating the partition-key arity.
    pub fn new(config: DetectorConfig) -> Result<Detector> {
        if let Some(keys) = &config.partition {
            if keys.len() != config.pattern.num_ports() {
                return Err(DsmsError::plan(format!(
                    "partition needs one key per port: pattern has {} ports, got {} keys",
                    config.pattern.num_ports(),
                    keys.len()
                )));
            }
        }
        Ok(Detector {
            pattern: Arc::new(config.pattern),
            kind: config.kind,
            partition: config.partition,
            filter: config.filter,
            codec: KeyCodec::raw(),
            scratch: Vec::new(),
            states: HashMap::default(),
            order: Vec::new(),
            matches_emitted: 0,
            exceptions_emitted: 0,
            partitions_created: 0,
            prunes_carry: 0,
        })
    }

    /// Adopt the engine's key codec (called at query registration).
    pub fn bind_codec(&mut self, codec: &KeyCodec) {
        self.codec = codec.clone();
    }

    /// Total encoded bytes of live partition keys.
    pub fn state_key_bytes(&self) -> usize {
        self.states.keys().map(|k| k.len()).sum()
    }

    /// The pattern being detected.
    pub fn pattern(&self) -> &SeqPattern {
        &self.pattern
    }

    /// Number of input ports (streams) the detector reads.
    pub fn num_ports(&self) -> usize {
        self.pattern.num_ports()
    }

    /// Process one tuple arriving on `port`.
    pub fn on_tuple(&mut self, port: usize, t: &Tuple) -> Result<Vec<DetectorOutput>> {
        if port >= self.pattern.num_ports() {
            return Err(DsmsError::plan(format!(
                "port {port} out of range ({} ports)",
                self.pattern.num_ports()
            )));
        }
        // Encode the partition key straight into the scratch buffer —
        // existing partitions are found without allocating.
        self.scratch.clear();
        if let Some(keys) = &self.partition {
            let v = keys[port].eval(&[t])?;
            self.codec.encode_value_into(&mut self.scratch, &v);
        }
        if !self.states.contains_key(self.scratch.as_slice()) {
            self.partitions_created += 1;
            let eng: Box<dyn ModeEngine> = match self.kind {
                DetectKind::Seq => engine_for(self.pattern.mode, &self.pattern),
                DetectKind::ExceptionSeq => Box::new(Exception::new()),
            };
            let key = StateKey::from_slice(&self.scratch);
            self.order.push(key.clone());
            self.states.insert(key, eng);
        }
        let pattern = self.pattern.clone();
        let mut raw = Vec::new();
        self.states
            .get_mut(self.scratch.as_slice())
            .expect("partition just ensured")
            .on_tuple(&pattern, port, t, &mut raw)?;
        self.postprocess(raw)
    }

    /// Advance stream time: purge state and fire window-expiry events.
    /// Partitions are visited in creation order, so expiry emission is
    /// deterministic (and survives checkpoint/restore unchanged).
    pub fn on_punctuation(&mut self, ts: Timestamp) -> Result<Vec<DetectorOutput>> {
        let pattern = self.pattern.clone();
        let mut raw = Vec::new();
        for key in &self.order {
            let eng = self.states.get_mut(key).expect("order tracks states");
            eng.on_punctuation(&pattern, ts, &mut raw)?;
        }
        // Dead partitions hold nothing: drop them so long-lived detectors
        // over high-cardinality keys do not leak. Their prune totals move
        // into the carry first so the detector-wide count is monotonic.
        let carry = &mut self.prunes_carry;
        let states = &mut self.states;
        self.order.retain(|k| {
            let keep = states.get(k).is_some_and(|e| e.retained() > 0);
            if !keep {
                if let Some(e) = states.remove(k) {
                    *carry += e.prunes();
                }
            }
            keep
        });
        self.postprocess(raw)
    }

    fn postprocess(&mut self, raw: Vec<DetectorOutput>) -> Result<Vec<DetectorOutput>> {
        let mut out = Vec::with_capacity(raw.len());
        for o in raw {
            match &o {
                DetectorOutput::Match(m) => {
                    if let Some(f) = &self.filter {
                        if !f(m)? {
                            continue;
                        }
                    }
                    self.matches_emitted += 1;
                    out.push(o);
                }
                DetectorOutput::Exception(_) => {
                    if self.kind == DetectKind::ExceptionSeq {
                        self.exceptions_emitted += 1;
                        out.push(o);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Tuples currently retained across all partitions — the history
    /// metric the pairing modes bound.
    pub fn retained(&self) -> usize {
        self.states.values().map(|e| e.retained()).sum()
    }

    /// Live partition count.
    pub fn partitions(&self) -> usize {
        self.states.len()
    }

    /// Matches emitted so far.
    pub fn matches_emitted(&self) -> u64 {
        self.matches_emitted
    }

    /// Exceptions emitted so far.
    pub fn exceptions_emitted(&self) -> u64 {
        self.exceptions_emitted
    }

    /// Partitions created over the detector's lifetime (≥ live count).
    pub fn partitions_created(&self) -> u64 {
        self.partitions_created
    }

    /// Runs/bindings pruned across all partitions, including partitions
    /// already swept away. The operational signature of the pairing mode:
    /// RECENT overwrites constantly, CHRONICLE only on window expiry,
    /// CONSECUTIVE on every adjacency break.
    pub fn prunes(&self) -> u64 {
        self.prunes_carry + self.states.values().map(|e| e.prunes()).sum::<u64>()
    }

    /// Serialize every partition's engine state plus the emission
    /// counters. Partitions serialize in creation order — the order is
    /// itself state (it drives punctuation iteration), so a restored
    /// detector must rebuild it exactly; keys decode back to values so
    /// the checkpoint stays representation-independent.
    pub fn save_state(&self) -> Result<StateNode> {
        let parts = self
            .order
            .iter()
            .map(|k| {
                let e = &self.states[k];
                let vals = self.codec.decode(k.as_bytes())?;
                Ok(StateNode::List(vec![
                    StateNode::List(vals.into_iter().map(StateNode::Value).collect()),
                    e.save_state()?,
                ]))
            })
            .collect::<Result<Vec<StateNode>>>()?;
        Ok(StateNode::List(vec![
            StateNode::List(parts),
            StateNode::U64(self.matches_emitted),
            StateNode::U64(self.exceptions_emitted),
            StateNode::U64(self.partitions_created),
            StateNode::U64(self.prunes_carry),
        ]))
    }

    /// Restore state saved by [`Detector::save_state`] into a detector
    /// built from the same configuration (pattern, kind, partitioning).
    pub fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.states.clear();
        self.order.clear();
        for part in state.item(0)?.as_list()? {
            let key = part
                .item(0)?
                .as_list()?
                .iter()
                .map(|v| v.as_value().cloned())
                .collect::<Result<Vec<Value>>>()?;
            let mut eng: Box<dyn ModeEngine> = match self.kind {
                DetectKind::Seq => engine_for(self.pattern.mode, &self.pattern),
                DetectKind::ExceptionSeq => Box::new(Exception::new()),
            };
            eng.restore_state(part.item(1)?)?;
            let key = self.codec.encode(&key);
            self.order.push(key.clone());
            self.states.insert(key, eng);
        }
        self.matches_emitted = state.item(1)?.as_u64()?;
        self.exceptions_emitted = state.item(2)?.as_u64()?;
        self.partitions_created = state.item(3)?.as_u64()?;
        self.prunes_carry = state.item(4)?.as_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::PairingMode;
    use crate::pattern::Element;
    use eslev_dsms::time::Duration;

    fn reading(tag: &str, secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::str(tag), Value::Ts(Timestamp::from_secs(secs))],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    fn qc_pattern(mode: PairingMode) -> SeqPattern {
        SeqPattern::new((0..4).map(Element::new).collect(), None, mode).unwrap()
    }

    /// Example 6: SEQ(C1, C2, C3, C4) with C1.tagid = C2.tagid = ... —
    /// the equality conditions become the partition key.
    #[test]
    fn partitioned_detection_example6() {
        let cfg = DetectorConfig::seq(qc_pattern(PairingMode::Recent))
            .with_partition(vec![Expr::col(0); 4]);
        let mut d = Detector::new(cfg).unwrap();
        let mut matches = 0;
        // Two products interleaved through the 4 checkpoints.
        let feed = [
            ("p1", 0usize),
            ("p2", 0),
            ("p1", 1),
            ("p2", 1),
            ("p1", 2),
            ("p1", 3),
            ("p2", 2),
            ("p2", 3),
        ];
        for (i, (tag, port)) in feed.iter().enumerate() {
            let outs = d
                .on_tuple(*port, &reading(tag, i as u64, i as u64))
                .unwrap();
            matches += outs.iter().filter(|o| o.as_match().is_some()).count();
        }
        assert_eq!(matches, 2);
        assert_eq!(d.partitions(), 2);
        assert_eq!(d.matches_emitted(), 2);
        // Without partitioning the interleaving would cross-pair tags.
        let mut un = Detector::new(DetectorConfig::seq(qc_pattern(PairingMode::Recent))).unwrap();
        let mut un_matches = Vec::new();
        for (i, (tag, port)) in feed.iter().enumerate() {
            un_matches.extend(
                un.on_tuple(*port, &reading(tag, i as u64, i as u64))
                    .unwrap(),
            );
        }
        let mixed = un_matches.iter().filter_map(|o| o.as_match()).any(|m| {
            let tags: Vec<&str> = m
                .bindings
                .iter()
                .map(|b| b.first().value(0).as_str().unwrap())
                .collect();
            tags.windows(2).any(|w| w[0] != w[1])
        });
        assert!(mixed, "unpartitioned RECENT mixes tags, as the paper warns");
    }

    #[test]
    fn partition_arity_validated() {
        let cfg =
            DetectorConfig::seq(qc_pattern(PairingMode::Recent)).with_partition(vec![Expr::col(0)]);
        assert!(Detector::new(cfg).is_err());
    }

    #[test]
    fn port_range_validated() {
        let mut d = Detector::new(DetectorConfig::seq(qc_pattern(PairingMode::Recent))).unwrap();
        assert!(d.on_tuple(9, &reading("x", 0, 0)).is_err());
    }

    #[test]
    fn filter_drops_matches() {
        let cfg = DetectorConfig::seq(qc_pattern(PairingMode::Chronicle)).with_filter(Arc::new(
            |m: &SeqMatch| Ok(m.span() <= Duration::from_secs(3)),
        ));
        let mut d = Detector::new(cfg).unwrap();
        let mut outs = Vec::new();
        for (i, port) in (0..4).enumerate() {
            outs.extend(
                d.on_tuple(port, &reading("p", i as u64 * 5, i as u64))
                    .unwrap(),
            );
        }
        assert!(outs.is_empty(), "span 15 s filtered out");
        for (i, port) in (0..4).enumerate() {
            outs.extend(
                d.on_tuple(port, &reading("p", 100 + i as u64, 10 + i as u64))
                    .unwrap(),
            );
        }
        assert_eq!(outs.len(), 1);
    }

    #[test]
    fn seq_kind_suppresses_exceptions() {
        // Consecutive SEQ never emits exceptions even on breaks.
        let mut d =
            Detector::new(DetectorConfig::seq(qc_pattern(PairingMode::Consecutive))).unwrap();
        let outs = d.on_tuple(3, &reading("x", 0, 0)).unwrap();
        assert!(outs.is_empty());
    }

    #[test]
    fn exception_kind_counts_both() {
        use crate::pattern::EventWindow;
        let pat = SeqPattern::new(
            (0..3).map(Element::new).collect(),
            Some(EventWindow::following(Duration::from_secs(3600), 0)),
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut d = Detector::new(DetectorConfig::exception(pat)).unwrap();
        // Wrong start.
        let outs = d.on_tuple(1, &reading("x", 0, 0)).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].as_exception().unwrap().level, 1);
        // Partial then expiry via punctuation.
        d.on_tuple(0, &reading("x", 10, 1)).unwrap();
        let outs = d.on_punctuation(Timestamp::from_secs(4000)).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].as_exception().unwrap().level, 2);
        assert_eq!(d.exceptions_emitted(), 2);
        assert_eq!(d.retained(), 0);
    }

    #[test]
    fn dead_partitions_are_dropped() {
        let cfg = DetectorConfig::seq(qc_pattern(PairingMode::Chronicle))
            .with_partition(vec![Expr::col(0); 4]);
        let mut d = Detector::new(cfg).unwrap();
        for i in 0..100u64 {
            d.on_tuple(0, &reading(&format!("p{i}"), i, i)).unwrap();
        }
        assert_eq!(d.partitions(), 100);
        // Chronicle without a window keeps history; complete the
        // sequences so consumption empties each partition.
        for i in 0..100u64 {
            for port in 1..4usize {
                d.on_tuple(
                    port,
                    &reading(
                        &format!("p{i}"),
                        200 + i * 4 + port as u64,
                        1000 + i * 4 + port as u64,
                    ),
                )
                .unwrap();
            }
        }
        d.on_punctuation(Timestamp::from_secs(10_000)).unwrap();
        assert_eq!(d.partitions(), 0);
    }

    /// The four pairing modes leave pairwise-distinct prune counts on the
    /// same feed — the operational fingerprint the observability layer
    /// surfaces (RECENT overwrites slots, CONSECUTIVE breaks adjacency,
    /// UNRESTRICTED expires whole run sets, CHRONICLE consumes in order).
    #[test]
    fn prune_signatures_differ_per_mode() {
        use crate::pattern::EventWindow;
        // SEQ(A, B) with a 10s window preceding B. A-runs of different
        // lengths; the doubled B at the end consumes one more queued A
        // under CHRONICLE (fewer expiry prunes) but cannot break the
        // already-empty CONSECUTIVE run.
        let feed: [(usize, u64); 10] = [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 3),
            (0, 4),
            (0, 5),
            (1, 6),
            (0, 7),
            (1, 8),
            (1, 9),
        ];
        let mut prunes = Vec::new();
        for mode in PairingMode::ALL {
            let pat = SeqPattern::new(
                vec![Element::new(0), Element::new(1)],
                Some(EventWindow::preceding(Duration::from_secs(10), 1)),
                mode,
            )
            .unwrap();
            let mut d = Detector::new(DetectorConfig::seq(pat)).unwrap();
            for (i, (port, secs)) in feed.iter().enumerate() {
                d.on_tuple(*port, &reading("t", *secs, i as u64)).unwrap();
            }
            d.on_punctuation(Timestamp::from_secs(100)).unwrap();
            prunes.push((mode.keyword(), d.prunes()));
        }
        for a in 0..prunes.len() {
            for b in (a + 1)..prunes.len() {
                assert_ne!(
                    prunes[a].1, prunes[b].1,
                    "{} and {} should leave different prune counts: {prunes:?}",
                    prunes[a].0, prunes[b].0
                );
            }
        }
    }
}
