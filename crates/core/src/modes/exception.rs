//! The EXCEPTION_SEQ / CLEVEL_SEQ engine (§3.1.3).
//!
//! Tracks one current partial sequence (the consecutive interpretation
//! under which the paper defines *Sequence Completion Levels*) and emits
//! an [`ExceptionEvent`] whenever the partial becomes unextendable:
//!
//! 1. **Wrong extension** — an arriving tuple does not match the next
//!    expected element (the paper's RECENT example: `(A, B)` then `B`);
//! 2. **Wrong start** — a tuple arrives with no partial in progress and
//!    does not match the first element (completion level 0);
//! 3. **Window expiry** — the operator's window closes on a partial,
//!    detected by punctuation (*active expiration*: no arrival needed).
//!
//! Normal completions are emitted as `Match` outputs so a single engine
//! serves both `EXCEPTION_SEQ` (keep exceptions) and `CLEVEL_SEQ`
//! (exceptions carry `level − 1 < n`, matches carry `n`).
//!
//! At most one exception is emitted per arriving tuple: a tuple that
//! breaks a partial *and* fails to start a new sequence reports only the
//! break (the paper's scenarios are mutually exclusive per arrival).

use super::ModeEngine;
use crate::binding::{DetectorOutput, ExceptionCause, ExceptionEvent};
use crate::ckpt::{restore_run, save_run};
use crate::pattern::SeqPattern;
use crate::runs::{window_satisfied, Ext, Run};
use eslev_dsms::ckpt::StateNode;
use eslev_dsms::error::Result;
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;

/// The exception-detection engine.
#[derive(Default)]
pub struct Exception {
    run: Run,
    prunes: u64,
}

impl Exception {
    /// Fresh engine.
    pub fn new() -> Exception {
        Exception::default()
    }

    fn raise(&mut self, cause: ExceptionCause, ts: Timestamp, out: &mut Vec<DetectorOutput>) {
        let level = self.run.completion_level() + 1;
        let partial = self.run.partial_bindings();
        out.push(DetectorOutput::Exception(ExceptionEvent {
            level,
            partial,
            cause,
            ts,
        }));
        if self.run.total_tuples() > 0 {
            self.prunes += 1;
        }
        self.run = Run::new();
    }
}

impl ModeEngine for Exception {
    fn on_tuple(
        &mut self,
        pat: &SeqPattern,
        port: usize,
        t: &Tuple,
        out: &mut Vec<DetectorOutput>,
    ) -> Result<()> {
        match self.run.classify(pat, t, port)? {
            Some(ext @ Ext::Append { idx }) => {
                self.run.apply(pat, ext, t);
                if idx == pat.len() - 1 {
                    out.push(DetectorOutput::Match(self.run.snapshot_match()));
                }
            }
            Some(ext @ Ext::Advance { .. }) => {
                let complete = self.run.apply(pat, ext, t);
                if complete {
                    let m = std::mem::take(&mut self.run).into_match();
                    debug_assert!(window_satisfied(&pat.window, &m.bindings));
                    out.push(DetectorOutput::Match(m));
                } else if self.run.next_elem() == pat.len() - 1
                    && pat.trailing_star()
                    && !self.run.group.is_empty()
                {
                    out.push(DetectorOutput::Match(self.run.snapshot_match()));
                }
            }
            None => {
                let was_empty = self.run.is_untouched();
                let cause = if was_empty {
                    ExceptionCause::WrongStart { tuple: t.clone() }
                } else {
                    ExceptionCause::WrongExtension { tuple: t.clone() }
                };
                self.raise(cause, t.ts(), out);
                if !was_empty {
                    // The offending tuple gets one (silent) chance to
                    // start a new sequence — no second exception.
                    if let Some(ext) = self.run.classify(pat, t, port)? {
                        self.run.apply(pat, ext, t);
                    }
                }
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        pat: &SeqPattern,
        ts: Timestamp,
        out: &mut Vec<DetectorOutput>,
    ) -> Result<()> {
        if !self.run.is_untouched() && self.run.deadline(pat).is_some_and(|d| ts > d) {
            self.raise(ExceptionCause::WindowExpiry, ts, out);
        }
        Ok(())
    }

    fn retained(&self) -> usize {
        self.run.total_tuples()
    }

    fn prunes(&self) -> u64 {
        self.prunes
    }

    fn save_state(&self) -> Result<StateNode> {
        Ok(StateNode::List(vec![
            save_run(&self.run),
            StateNode::U64(self.prunes),
        ]))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.run = restore_run(state.item(0)?)?;
        self.prunes = state.item(1)?.as_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::PairingMode;
    use crate::pattern::{Element, EventWindow};
    use eslev_dsms::time::Duration;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    /// SEQ(A, B, C) — the clinic pattern of Example 5.
    fn abc() -> SeqPattern {
        SeqPattern::new(
            (0..3).map(Element::new).collect(),
            None,
            PairingMode::Consecutive,
        )
        .unwrap()
    }

    fn abc_windowed(secs: u64) -> SeqPattern {
        SeqPattern::new(
            (0..3).map(Element::new).collect(),
            Some(EventWindow::following(Duration::from_secs(secs), 0)),
            PairingMode::Consecutive,
        )
        .unwrap()
    }

    #[test]
    fn normal_completion_is_a_match() {
        let pat = abc();
        let mut eng = Exception::new();
        let mut out = Vec::new();
        for (i, port) in [0usize, 1, 2].iter().enumerate() {
            eng.on_tuple(&pat, *port, &t(i as u64, i as u64), &mut out)
                .unwrap();
        }
        assert_eq!(out.len(), 1);
        assert!(out[0].as_match().is_some());
    }

    /// The paper's scenario 1: (A, B) then another B → exception at
    /// level k+1 = 3.
    #[test]
    fn wrong_extension_level() {
        let pat = abc();
        let mut eng = Exception::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(1, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(2, 2), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        let e = out[0].as_exception().unwrap();
        assert_eq!(e.level, 3);
        assert_eq!(e.completion_level(), 2);
        assert!(matches!(e.cause, ExceptionCause::WrongExtension { .. }));
        assert_eq!(e.partial.len(), 2);
    }

    /// The paper's scenario 2: after a completed (A,B,C), a lone C cannot
    /// start a sequence → completion level 0, exception level 1.
    #[test]
    fn wrong_start_level() {
        let pat = abc();
        let mut eng = Exception::new();
        let mut out = Vec::new();
        for (i, port) in [0usize, 1, 2].iter().enumerate() {
            eng.on_tuple(&pat, *port, &t(i as u64, i as u64), &mut out)
                .unwrap();
        }
        out.clear();
        eng.on_tuple(&pat, 2, &t(10, 3), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        let e = out[0].as_exception().unwrap();
        assert_eq!(e.level, 1);
        assert!(matches!(e.cause, ExceptionCause::WrongStart { .. }));
        assert!(e.partial.is_empty());
    }

    /// The breaking tuple restarts silently when it matches element 0:
    /// C directly following A raises one exception, then A,B,C completes.
    #[test]
    fn wrong_extension_then_silent_restart() {
        let pat = abc();
        let mut eng = Exception::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 2, &t(1, 1), &mut out).unwrap(); // C after A
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_exception().unwrap().level, 2);
        out.clear();
        // A fresh A (after the failed C) starts silently — the C could
        // not start a new sequence, but caused no second exception.
        eng.on_tuple(&pat, 0, &t(2, 2), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(3, 3), &mut out).unwrap();
        eng.on_tuple(&pat, 2, &t(4, 4), &mut out).unwrap();
        assert_eq!(out.len(), 1, "completion only; no extra exception");
        assert!(out[0].as_match().is_some());
    }

    /// Scenario 3: the 1-hour FOLLOWING window expires on a partial —
    /// detected by punctuation alone (active expiration).
    #[test]
    fn window_expiry_exception() {
        let pat = abc_windowed(3600);
        let mut eng = Exception::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(600, 1), &mut out).unwrap();
        eng.on_punctuation(&pat, Timestamp::from_secs(3601), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        let e = out[0].as_exception().unwrap();
        assert_eq!(e.level, 3);
        assert!(matches!(e.cause, ExceptionCause::WindowExpiry));
        assert_eq!(e.ts, Timestamp::from_secs(3601));
        assert_eq!(eng.retained(), 0);
        // No repeated exception on further punctuation.
        eng.on_punctuation(&pat, Timestamp::from_secs(4000), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn in_window_completion_no_exception() {
        let pat = abc_windowed(3600);
        let mut eng = Exception::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(1200, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 2, &t(2400, 2), &mut out).unwrap();
        eng.on_punctuation(&pat, Timestamp::from_secs(10_000), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].as_match().is_some());
    }

    /// A late C that would complete the sequence *outside* the window is
    /// itself a violation: the partial cannot extend in-window.
    #[test]
    fn late_completion_is_wrong_extension() {
        let pat = abc_windowed(10);
        let mut eng = Exception::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(5, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 2, &t(20, 2), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        let e = out[0].as_exception().unwrap();
        assert_eq!(e.level, 3);
        assert!(matches!(e.cause, ExceptionCause::WrongExtension { .. }));
    }
}

#[cfg(test)]
mod star_tests {
    use super::*;
    use crate::mode::PairingMode;
    use crate::pattern::{Element, SeqPattern};
    use eslev_dsms::time::{Duration, Timestamp};
    use eslev_dsms::tuple::Tuple;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    /// §3.1.3's closing remark: EXCEPTION_SEQ also allows star sequences.
    /// Pattern: SEQ(A*, B) with an intra-group gap — a gap break inside
    /// the repetition is a wrong extension.
    #[test]
    fn star_prefix_completes_normally() {
        let pat = SeqPattern::new(
            vec![
                Element::star(0).with_star_gap(Duration::from_secs(2)),
                Element::new(1),
            ],
            None,
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut eng = Exception::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 0, &t(1, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(2, 2), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        let m = out[0].as_match().unwrap();
        assert_eq!(m.binding(0).count(), 2);
    }

    #[test]
    fn gap_break_inside_star_is_wrong_extension() {
        let pat = SeqPattern::new(
            vec![
                Element::star(0).with_star_gap(Duration::from_secs(2)),
                Element::new(1),
            ],
            None,
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut eng = Exception::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        // 10 s gap breaks the group: the partial (A*) with one tuple has
        // completion level 1 → exception at level 2.
        eng.on_tuple(&pat, 0, &t(10, 1), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        let e = out[0].as_exception().unwrap();
        assert_eq!(e.level, 2);
        assert!(matches!(e.cause, ExceptionCause::WrongExtension { .. }));
        // The offending tuple silently restarts a new group...
        out.clear();
        eng.on_tuple(&pat, 1, &t(11, 2), &mut out).unwrap();
        // ...which the B then completes.
        assert!(out[0].as_match().is_some());
        assert_eq!(out[0].as_match().unwrap().binding(0).count(), 1);
    }

    #[test]
    fn completion_level_counts_open_group_once() {
        // SEQ(A*, B, C): a partial with 3 accumulated A's stalls at
        // completion level 1 (the star element counts once).
        let pat = SeqPattern::new(
            vec![Element::star(0), Element::new(1), Element::new(2)],
            None,
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut eng = Exception::new();
        let mut out = Vec::new();
        for i in 0..3u64 {
            eng.on_tuple(&pat, 0, &t(i, i), &mut out).unwrap();
        }
        // C arrives where B was expected: break at level 1+1 = 2.
        eng.on_tuple(&pat, 2, &t(5, 5), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        let e = out[0].as_exception().unwrap();
        assert_eq!(e.level, 2);
        assert_eq!(e.partial.len(), 1);
        assert_eq!(e.partial[0].count(), 3, "the whole group is reported");
    }
}
