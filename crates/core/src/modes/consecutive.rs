//! CONSECUTIVE mode: pattern tuples must be adjacent on the *joint tuple
//! history* — the timestamp-ordered union of all participating streams
//! (§3.1.1).
//!
//! Implemented as a single current run: every arriving tuple (the next
//! element of the joint history, since the detector feeds it every tuple
//! of every participating stream) either extends the run or breaks it.
//! A breaking tuple may immediately start a new run when it matches the
//! pattern's first element. History is at most one partial match — the
//! tightest of the four modes.

use super::ModeEngine;
use crate::binding::DetectorOutput;
use crate::ckpt::{restore_run, save_run};
use crate::pattern::SeqPattern;
use crate::runs::{window_satisfied, Ext, Run};
use eslev_dsms::ckpt::StateNode;
use eslev_dsms::error::Result;
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;

/// The CONSECUTIVE engine.
#[derive(Default)]
pub struct Consecutive {
    run: Run,
    prunes: u64,
}

impl Consecutive {
    /// Fresh engine.
    pub fn new() -> Consecutive {
        Consecutive::default()
    }

    fn restart_with(&mut self, pat: &SeqPattern, t: &Tuple, port: usize) -> Result<()> {
        self.run = Run::new();
        if let Some(ext) = self.run.classify(pat, t, port)? {
            // Patterns have ≥ 2 elements, so a first bind never completes.
            let complete = self.run.apply(pat, ext, t);
            debug_assert!(!complete);
        }
        Ok(())
    }
}

impl ModeEngine for Consecutive {
    fn on_tuple(
        &mut self,
        pat: &SeqPattern,
        port: usize,
        t: &Tuple,
        out: &mut Vec<DetectorOutput>,
    ) -> Result<()> {
        match self.run.classify(pat, t, port)? {
            Some(ext @ Ext::Append { idx }) => {
                self.run.apply(pat, ext, t);
                if idx == pat.len() - 1 {
                    // Trailing star: online emission.
                    let snap = self.run.snapshot_match();
                    debug_assert!(window_satisfied(&pat.window, &snap.bindings));
                    out.push(DetectorOutput::Match(snap));
                }
            }
            Some(ext @ Ext::Advance { .. }) => {
                let complete = self.run.apply(pat, ext, t);
                if complete {
                    let m = std::mem::take(&mut self.run).into_match();
                    debug_assert!(window_satisfied(&pat.window, &m.bindings));
                    out.push(DetectorOutput::Match(m));
                } else if self.run.next_elem() == pat.len() - 1
                    && pat.trailing_star()
                    && !self.run.group.is_empty()
                {
                    let snap = self.run.snapshot_match();
                    out.push(DetectorOutput::Match(snap));
                }
            }
            None => {
                // Adjacency broken: the partial is dead; the offending
                // tuple may start a fresh sequence.
                if self.run.total_tuples() > 0 {
                    self.prunes += 1;
                }
                self.restart_with(pat, t, port)?;
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        pat: &SeqPattern,
        ts: Timestamp,
        _out: &mut Vec<DetectorOutput>,
    ) -> Result<()> {
        if self.run.deadline(pat).is_some_and(|d| ts > d) {
            self.run = Run::new();
            self.prunes += 1;
        }
        Ok(())
    }

    fn retained(&self) -> usize {
        self.run.total_tuples()
    }

    fn prunes(&self) -> u64 {
        self.prunes
    }

    fn save_state(&self) -> Result<StateNode> {
        Ok(StateNode::List(vec![
            save_run(&self.run),
            StateNode::U64(self.prunes),
        ]))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.run = restore_run(state.item(0)?)?;
        self.prunes = state.item(1)?.as_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::PairingMode;
    use crate::pattern::{Element, EventWindow};
    use eslev_dsms::time::Duration;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    fn pat4() -> SeqPattern {
        SeqPattern::new(
            (0..4).map(Element::new).collect(),
            None,
            PairingMode::Consecutive,
        )
        .unwrap()
    }

    /// The paper's worked example: CONSECUTIVE finds nothing in
    /// [t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4].
    #[test]
    fn worked_example_no_event() {
        let pat = pat4();
        let mut eng = Consecutive::new();
        let mut out = Vec::new();
        let history = [
            (0usize, 1u64),
            (0, 2),
            (1, 3),
            (2, 4),
            (2, 5),
            (1, 6),
            (3, 7),
        ];
        for (i, (port, secs)) in history.iter().enumerate() {
            eng.on_tuple(&pat, *port, &t(*secs, i as u64), &mut out)
                .unwrap();
        }
        assert!(out.is_empty());
    }

    #[test]
    fn clean_history_matches_repeatedly() {
        // A,B,C,A,B,C with SEQ(A,B,C): two matches (Example 5's normal
        // workflow shape).
        let pat = SeqPattern::new(
            (0..3).map(Element::new).collect(),
            None,
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut eng = Consecutive::new();
        let mut out = Vec::new();
        for (i, port) in [0usize, 1, 2, 0, 1, 2].iter().enumerate() {
            eng.on_tuple(&pat, *port, &t(i as u64, i as u64), &mut out)
                .unwrap();
        }
        assert_eq!(out.len(), 2);
        assert_eq!(eng.retained(), 0);
    }

    #[test]
    fn interloper_breaks_and_restarts() {
        // A, B, A, B, C: the third tuple (A) breaks (A,B) and starts
        // over; (A,B,C) from position 3 completes.
        let pat = SeqPattern::new(
            (0..3).map(Element::new).collect(),
            None,
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut eng = Consecutive::new();
        let mut out = Vec::new();
        for (i, port) in [0usize, 1, 0, 1, 2].iter().enumerate() {
            eng.on_tuple(&pat, *port, &t(i as u64, i as u64), &mut out)
                .unwrap();
        }
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].as_match().unwrap().binding(0).first().ts(),
            Timestamp::from_secs(2)
        );
    }

    #[test]
    fn breaking_tuple_that_cannot_start_leaves_empty() {
        let pat = SeqPattern::new(
            (0..3).map(Element::new).collect(),
            None,
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut eng = Consecutive::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 2, &t(1, 1), &mut out).unwrap(); // C breaks, can't start
        assert_eq!(eng.retained(), 0);
        // B alone cannot start either.
        eng.on_tuple(&pat, 1, &t(2, 2), &mut out).unwrap();
        assert_eq!(eng.retained(), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn star_run_with_adjacency() {
        // SEQ(A*, B) CONSECUTIVE: A A B → one match of 2; an interloper
        // inside the group kills it.
        let pat = SeqPattern::new(
            vec![Element::star(0), Element::new(1)],
            None,
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut eng = Consecutive::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 0, &t(1, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(2, 2), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_match().unwrap().binding(0).count(), 2);
    }

    #[test]
    fn window_expiry_resets_run() {
        let pat = SeqPattern::new(
            (0..3).map(Element::new).collect(),
            Some(EventWindow::following(Duration::from_secs(10), 0)),
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut eng = Consecutive::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(5, 1), &mut out).unwrap();
        assert_eq!(eng.retained(), 2);
        eng.on_punctuation(&pat, Timestamp::from_secs(11), &mut out)
            .unwrap();
        assert_eq!(eng.retained(), 0);
        // Late C cannot complete the expired run.
        eng.on_tuple(&pat, 2, &t(12, 2), &mut out).unwrap();
        assert!(out.is_empty());
    }
}
