//! RECENT mode: an incoming tuple pairs with the most recent qualifying
//! tuple of each other stream.
//!
//! Implemented as the paper's worked derivation (§3.1.1) suggests: one
//! *chain node* per element position, holding that position's most recent
//! qualifying binding plus a frozen pointer to the position-before chain
//! it qualified against. A new arrival at position `k` replaces
//! `latest[k]`; snapshots already captured by `latest[k+1..]` keep their
//! (older) parents — exactly how the example picks `C3:t5`'s parent
//! `C2:t3` even though `C2:t6` arrived later.
//!
//! History is O(pattern length) chains — the "aggressive purge" the paper
//! credits this mode with.

use super::ModeEngine;
use crate::binding::{Binding, DetectorOutput, SeqMatch};
use crate::ckpt::{restore_binding, save_binding};
use crate::pattern::{SeqPattern, WindowKind};
use crate::runs::{gap_ok, matches_elem, window_satisfied};
use eslev_dsms::ckpt::StateNode;
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;
use std::sync::Arc;

struct ChainNode {
    binding: Binding,
    parent: Option<Arc<ChainNode>>,
    /// Timestamp of the chain's first tuple (for PRECEDING windows).
    first_ts: Timestamp,
    /// Start of the window anchor, once the anchor position is in the
    /// chain (for FOLLOWING windows).
    anchor_start: Option<Timestamp>,
    /// Instant past which this node can no longer complete in-window.
    deadline: Option<Timestamp>,
}

/// The RECENT engine.
pub struct Recent {
    latest: Vec<Option<Arc<ChainNode>>>,
    prunes: u64,
}

impl Recent {
    /// Fresh engine for `pat`.
    pub fn new(pat: &SeqPattern) -> Recent {
        Recent {
            latest: (0..pat.len()).map(|_| None).collect(),
            prunes: 0,
        }
    }

    fn node_for(
        &self,
        pat: &SeqPattern,
        k: usize,
        binding: Binding,
        parent: Option<Arc<ChainNode>>,
    ) -> ChainNode {
        let first_ts = parent
            .as_ref()
            .map(|p| p.first_ts)
            .unwrap_or_else(|| binding.first().ts());
        let mut anchor_start = parent.as_ref().and_then(|p| p.anchor_start);
        let mut deadline = None;
        if let Some(w) = &pat.window {
            if w.anchor == k {
                anchor_start = Some(binding.first().ts());
            }
            deadline = match w.kind {
                // Until the anchor is reached, everything must stay
                // within d of the chain's first tuple.
                WindowKind::Preceding if k < w.anchor => Some(first_ts + w.dur),
                WindowKind::Following => anchor_start.map(|s| s + w.dur),
                _ => None,
            };
        }
        ChainNode {
            binding,
            parent,
            first_ts,
            anchor_start,
            deadline,
        }
    }

    /// Window admissibility of binding position `k` at time `ts` given
    /// the parent chain.
    fn window_ok(
        &self,
        pat: &SeqPattern,
        k: usize,
        ts: Timestamp,
        parent: Option<&Arc<ChainNode>>,
    ) -> bool {
        let Some(w) = &pat.window else { return true };
        match w.kind {
            WindowKind::Preceding => {
                if k == w.anchor {
                    if let Some(p) = parent {
                        return ts.since(p.first_ts).is_some_and(|g| g <= w.dur);
                    }
                }
                true
            }
            WindowKind::Following => {
                if k > w.anchor {
                    if let Some(start) = parent.and_then(|p| p.anchor_start) {
                        return ts.since(start).is_some_and(|g| g <= w.dur);
                    }
                }
                true
            }
        }
    }

    fn chain_to_match(node: &Arc<ChainNode>) -> SeqMatch {
        let mut bindings = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            bindings.push(n.binding.clone());
            cur = n.parent.as_ref();
        }
        bindings.reverse();
        SeqMatch { bindings }
    }
}

impl ModeEngine for Recent {
    fn on_tuple(
        &mut self,
        pat: &SeqPattern,
        port: usize,
        t: &Tuple,
        out: &mut Vec<DetectorOutput>,
    ) -> Result<()> {
        let n = pat.len();
        // Process candidate positions from the back so that a tuple which
        // fits several positions chains with *previous* state rather than
        // with itself (SEQ(A, A): the second A completes via the first,
        // then becomes the new latest[0]).
        let candidates: Vec<usize> = pat.candidates(port).collect();
        for &k in candidates.iter().rev() {
            let elem = &pat.elements[k];
            if !matches_elem(elem, t, port)? {
                continue;
            }
            // The parent chain this binding would qualify against.
            let parent: Option<Arc<ChainNode>> = if k == 0 {
                None
            } else {
                match &self.latest[k - 1] {
                    Some(p) => Some(p.clone()),
                    None => continue, // nothing to follow yet
                }
            };
            if let Some(p) = &parent {
                // Strict progression + inter-element gap.
                if !t.after(p.binding.last()) {
                    continue;
                }
                if !gap_ok(elem.max_gap_from_prev, Some(p.binding.last()), t) {
                    continue;
                }
            }
            if !self.window_ok(pat, k, t.ts(), parent.as_ref()) {
                continue;
            }
            let mut grew_group = false;
            let new_node = if elem.star {
                // Extend the current group when the gap allows (copy-on-
                // write: snapshots held as parents elsewhere are frozen);
                // otherwise start a fresh group against the parent chain.
                match &self.latest[k] {
                    Some(cur)
                        if t.after(cur.binding.last())
                            && gap_ok(elem.star_gap, Some(cur.binding.last()), t) =>
                    {
                        let mut g = cur.binding.tuples().to_vec();
                        g.push(t.clone());
                        grew_group = true;
                        self.node_for(pat, k, Binding::Star(g), cur.parent.clone())
                    }
                    _ => {
                        if k > 0 && parent.is_none() {
                            continue;
                        }
                        self.node_for(pat, k, Binding::Star(vec![t.clone()]), parent)
                    }
                }
            } else {
                self.node_for(pat, k, Binding::Single(t.clone()), parent)
            };
            let arc = Arc::new(new_node);
            // Replacing an occupied slot is RECENT's "aggressive purge":
            // the old head is discarded (snapshots held as parents stay
            // alive). Growing a star group keeps its tuples, so it does
            // not count.
            if self.latest[k].is_some() && !grew_group {
                self.prunes += 1;
            }
            self.latest[k] = Some(arc.clone());
            if k == n - 1 {
                // Completion (including online trailing-star snapshots).
                let m = Self::chain_to_match(&arc);
                if m.bindings.len() == n {
                    debug_assert!(window_satisfied(&pat.window, &m.bindings));
                    out.push(DetectorOutput::Match(m));
                }
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        _pat: &SeqPattern,
        ts: Timestamp,
        _out: &mut Vec<DetectorOutput>,
    ) -> Result<()> {
        for slot in &mut self.latest {
            if slot
                .as_ref()
                .is_some_and(|node| node.deadline.is_some_and(|d| ts > d))
            {
                *slot = None;
                self.prunes += 1;
            }
        }
        Ok(())
    }

    fn retained(&self) -> usize {
        // Shared parents counted once via the live heads.
        let mut seen = std::collections::HashSet::new();
        let mut total = 0;
        for slot in self.latest.iter().flatten() {
            let mut cur: Option<&Arc<ChainNode>> = Some(slot);
            while let Some(node) = cur {
                let key = Arc::as_ptr(node) as usize;
                if seen.insert(key) {
                    total += node.binding.count();
                }
                cur = node.parent.as_ref();
            }
        }
        total
    }

    fn prunes(&self) -> u64 {
        self.prunes
    }

    fn save_state(&self) -> Result<StateNode> {
        // Flatten the chain DAG into a node table, parents before
        // children and deduplicated by pointer identity, so the Arc
        // sharing between slots survives the round trip (the engine's
        // O(pattern-length) history bound depends on it).
        let mut index = std::collections::HashMap::new();
        let mut nodes: Vec<StateNode> = Vec::new();
        let mut slots: Vec<StateNode> = Vec::new();
        for slot in &self.latest {
            let Some(head) = slot else {
                slots.push(StateNode::Unit);
                continue;
            };
            let mut chain = Vec::new();
            let mut cur = Some(head);
            while let Some(n) = cur {
                chain.push(n.clone());
                cur = n.parent.as_ref();
            }
            for n in chain.iter().rev() {
                let ptr = Arc::as_ptr(n) as usize;
                if index.contains_key(&ptr) {
                    continue;
                }
                let parent = match &n.parent {
                    None => StateNode::Unit,
                    Some(p) => StateNode::U64(index[&(Arc::as_ptr(p) as usize)] as u64),
                };
                nodes.push(StateNode::List(vec![
                    save_binding(&n.binding),
                    parent,
                    StateNode::ts(n.first_ts),
                    StateNode::opt_ts(n.anchor_start),
                    StateNode::opt_ts(n.deadline),
                ]));
                index.insert(ptr, nodes.len() - 1);
            }
            slots.push(StateNode::U64(index[&(Arc::as_ptr(head) as usize)] as u64));
        }
        Ok(StateNode::List(vec![
            StateNode::List(nodes),
            StateNode::List(slots),
            StateNode::U64(self.prunes),
        ]))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        let node_items = state.item(0)?.as_list()?;
        let mut nodes: Vec<Arc<ChainNode>> = Vec::with_capacity(node_items.len());
        for (i, item) in node_items.iter().enumerate() {
            let parent = match item.item(1)? {
                StateNode::Unit => None,
                idx => {
                    let idx = idx.as_usize()?;
                    if idx >= i {
                        return Err(DsmsError::ckpt("chain-node parent must precede child"));
                    }
                    Some(nodes[idx].clone())
                }
            };
            nodes.push(Arc::new(ChainNode {
                binding: restore_binding(item.item(0)?)?,
                parent,
                first_ts: item.item(2)?.as_ts()?,
                anchor_start: item.item(3)?.as_opt_ts()?,
                deadline: item.item(4)?.as_opt_ts()?,
            }));
        }
        let slot_items = state.item(1)?.as_list()?;
        if slot_items.len() != self.latest.len() {
            return Err(DsmsError::ckpt(format!(
                "recent engine has {} slots, checkpoint has {}",
                self.latest.len(),
                slot_items.len()
            )));
        }
        self.latest = slot_items
            .iter()
            .map(|s| match s {
                StateNode::Unit => Ok(None),
                idx => nodes
                    .get(idx.as_usize()?)
                    .cloned()
                    .map(Some)
                    .ok_or_else(|| DsmsError::ckpt("chain-slot index out of range")),
            })
            .collect::<Result<Vec<_>>>()?;
        self.prunes = state.item(2)?.as_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::PairingMode;
    use crate::pattern::{Element, EventWindow};
    use eslev_dsms::time::Duration;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    fn pat4() -> SeqPattern {
        SeqPattern::new(
            (0..4).map(Element::new).collect(),
            None,
            PairingMode::Recent,
        )
        .unwrap()
    }

    /// The paper's worked example: RECENT must return exactly
    /// (t2:C1, t3:C2, t5:C3, t7:C4).
    #[test]
    fn worked_example_single_event() {
        let pat = pat4();
        let mut eng = Recent::new(&pat);
        let mut out = Vec::new();
        let history = [
            (0usize, 1u64),
            (0, 2),
            (1, 3),
            (2, 4),
            (2, 5),
            (1, 6),
            (3, 7),
        ];
        for (i, (port, secs)) in history.iter().enumerate() {
            eng.on_tuple(&pat, *port, &t(*secs, i as u64), &mut out)
                .unwrap();
        }
        let matches: Vec<_> = out.iter().filter_map(|o| o.as_match()).collect();
        assert_eq!(matches.len(), 1);
        let secs: Vec<u64> = matches[0]
            .bindings
            .iter()
            .map(|b| b.first().ts().as_micros() / 1_000_000)
            .collect();
        assert_eq!(secs, vec![2, 3, 5, 7]);
    }

    /// The C2:t6 tuple is "not qualifying" (it follows C3:t5); the paper
    /// explains the chain must keep C2:t3. Verify the frozen-parent rule
    /// across a second completion.
    #[test]
    fn frozen_parents_survive_replacement() {
        let pat = pat4();
        let mut eng = Recent::new(&pat);
        let mut out = Vec::new();
        for (i, (port, secs)) in [(0usize, 1u64), (1, 3), (2, 4), (1, 6), (3, 7)]
            .iter()
            .enumerate()
        {
            eng.on_tuple(&pat, *port, &t(*secs, i as u64), &mut out)
                .unwrap();
        }
        // latest[1] was replaced by t6 after latest[2] snapshotted t3;
        // the match must use t3, not t6.
        let m = out[0].as_match().unwrap();
        assert_eq!(m.binding(1).first().ts(), Timestamp::from_secs(3));
    }

    #[test]
    fn replacement_uses_most_recent() {
        // SEQ(A, B): A1 A2 B → match is (A2, B).
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            None,
            PairingMode::Recent,
        )
        .unwrap();
        let mut eng = Recent::new(&pat);
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(1, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 0, &t(2, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(3, 2), &mut out).unwrap();
        let m = out[0].as_match().unwrap();
        assert_eq!(m.binding(0).first().ts(), Timestamp::from_secs(2));
        // Each later B re-fires against the same chain.
        eng.on_tuple(&pat, 1, &t(4, 3), &mut out).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn history_is_constant_size() {
        let pat = pat4();
        let mut eng = Recent::new(&pat);
        let mut out = Vec::new();
        for i in 0..1000u64 {
            eng.on_tuple(&pat, (i % 3) as usize, &t(i, i), &mut out)
                .unwrap();
        }
        // At most one (single-tuple) node per position, parents shared.
        assert!(eng.retained() <= 8, "retained {}", eng.retained());
    }

    #[test]
    fn self_aliased_stream_chains_without_self_pairing() {
        // SEQ(A, A) on one port: two arrivals → one match (a1, a2).
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(0)],
            None,
            PairingMode::Recent,
        )
        .unwrap();
        let mut eng = Recent::new(&pat);
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(1, 0), &mut out).unwrap();
        assert!(out.is_empty(), "a single tuple must not pair with itself");
        eng.on_tuple(&pat, 0, &t(2, 1), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        let m = out[0].as_match().unwrap();
        assert_eq!(m.binding(0).first().ts(), Timestamp::from_secs(1));
        assert_eq!(m.binding(1).first().ts(), Timestamp::from_secs(2));
    }

    #[test]
    fn star_group_accumulates_and_emits() {
        // SEQ(R1*, R2) RECENT: group grows, case closes it.
        let pat = SeqPattern::new(
            vec![
                Element::star(0).with_star_gap(Duration::from_secs(1)),
                Element::new(1).with_max_gap(Duration::from_secs(5)),
            ],
            None,
            PairingMode::Recent,
        )
        .unwrap();
        let mut eng = Recent::new(&pat);
        let mut out = Vec::new();
        let ms = |ms: u64, seq: u64| Tuple::new(vec![], Timestamp::from_millis(ms), seq);
        eng.on_tuple(&pat, 0, &ms(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 0, &ms(500, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 0, &ms(900, 2), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &ms(1500, 3), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_match().unwrap().binding(0).count(), 3);
        // Gap break starts a new group: next case pairs with it only.
        eng.on_tuple(&pat, 0, &ms(10_000, 4), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &ms(10_500, 5), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].as_match().unwrap().binding(0).count(), 1);
    }

    #[test]
    fn preceding_window_rejects_and_purges() {
        // SEQ(A, B) OVER [10 s PRECEDING B].
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            Some(EventWindow::preceding(Duration::from_secs(10), 1)),
            PairingMode::Recent,
        )
        .unwrap();
        let mut eng = Recent::new(&pat);
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(20, 1), &mut out).unwrap();
        assert!(out.is_empty());
        // Punctuation purges the stale A node.
        assert!(eng.retained() > 0);
        eng.on_punctuation(&pat, Timestamp::from_secs(30), &mut out)
            .unwrap();
        assert_eq!(eng.retained(), 0);
    }

    #[test]
    fn following_window_bounds_completion() {
        // SEQ(A, B, C) OVER [10 s FOLLOWING A].
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1), Element::new(2)],
            Some(EventWindow::following(Duration::from_secs(10), 0)),
            PairingMode::Recent,
        )
        .unwrap();
        let mut eng = Recent::new(&pat);
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(5, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 2, &t(15, 2), &mut out).unwrap();
        assert!(
            out.is_empty(),
            "C at 15 s violates FOLLOWING 10 s of A at 0"
        );
        // In-window completion works.
        eng.on_tuple(&pat, 0, &t(20, 3), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(22, 4), &mut out).unwrap();
        eng.on_tuple(&pat, 2, &t(28, 5), &mut out).unwrap();
        assert_eq!(out.len(), 1);
    }
}
