//! UNRESTRICTED mode: every time-ordered combination is an event.
//!
//! Implemented as a nondeterministic set of runs. A tuple that can bind
//! element `k` of a run *forks* the run (the original stays available for
//! later tuples of element `k`, which is what "all possible pairings"
//! means). Star groups do not fork: longest-match makes the group
//! deterministic given the run's earlier bindings, so qualifying tuples
//! are appended in place — but *closing* a group forks, because a later
//! closing tuple closes a (longer) group of the same run.
//!
//! Run count is inherently combinatorial — the paper's motivation for the
//! other three modes. Windows bound it: runs past their window deadline
//! are purged on every punctuation.

use super::ModeEngine;
use crate::binding::DetectorOutput;
use crate::ckpt::{restore_run, save_run};
use crate::pattern::SeqPattern;
use crate::runs::{window_satisfied, Ext, Run};
use eslev_dsms::ckpt::StateNode;
use eslev_dsms::error::Result;
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;

/// The UNRESTRICTED engine.
#[derive(Default)]
pub struct Unrestricted {
    runs: Vec<Run>,
    prunes: u64,
}

impl Unrestricted {
    /// Fresh engine.
    pub fn new() -> Unrestricted {
        Unrestricted::default()
    }

    /// Number of live runs (for tests and ablation benches).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

impl ModeEngine for Unrestricted {
    fn on_tuple(
        &mut self,
        pat: &SeqPattern,
        port: usize,
        t: &Tuple,
        out: &mut Vec<DetectorOutput>,
    ) -> Result<()> {
        let mut forks: Vec<Run> = Vec::new();
        let mut absorbed_at_zero = false;
        for run in &mut self.runs {
            match run.classify(pat, t, port)? {
                None => {}
                Some(ext @ Ext::Append { idx }) => {
                    // In-place absorption (longest-match star growth).
                    run.apply(pat, ext, t);
                    if idx == 0 {
                        absorbed_at_zero = true;
                    }
                    if idx == pat.len() - 1 {
                        // Trailing star: online emission per arrival.
                        emit(pat, run.snapshot_match(), out);
                    }
                }
                Some(ext @ Ext::Advance { .. }) => {
                    // Fork: the original run remains open for other
                    // tuples that could bind this element later.
                    let mut forked = run.clone();
                    let complete = forked.apply(pat, ext, t);
                    if complete {
                        emit(pat, forked.into_match(), out);
                    } else {
                        if forked.next_elem() == pat.len() - 1 && pat.trailing_star() {
                            // Advance into a trailing star starts its
                            // group — emit the first online snapshot.
                            emit(pat, forked.snapshot_match(), out);
                        }
                        forks.push(forked);
                    }
                }
            }
        }
        // Seed a new run at element 0.
        let fresh = Run::new();
        if let Some(ext) = fresh.classify(pat, t, port)? {
            // A star element 0 that already absorbed this tuple must not
            // also seed a new group (the group IS the longest run).
            let seed = match ext {
                Ext::Append { .. } => !absorbed_at_zero,
                Ext::Advance { .. } => true,
            };
            if seed {
                let mut run = Run::new();
                let complete = run.apply(pat, ext, t);
                if complete {
                    emit(pat, run.into_match(), out);
                } else {
                    if pat.len() == 1 {
                        unreachable!("patterns have >= 2 elements");
                    }
                    if run.next_elem() == pat.len() - 1
                        && pat.trailing_star()
                        && !run.group.is_empty()
                    {
                        emit(pat, run.snapshot_match(), out);
                    }
                    self.runs.push(run);
                }
            }
        }
        self.runs.append(&mut forks);
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        pat: &SeqPattern,
        ts: Timestamp,
        _out: &mut Vec<DetectorOutput>,
    ) -> Result<()> {
        let before = self.runs.len();
        self.runs
            .retain(|r| r.deadline(pat).is_none_or(|d| ts <= d));
        self.prunes += (before - self.runs.len()) as u64;
        Ok(())
    }

    fn retained(&self) -> usize {
        self.runs.iter().map(|r| r.total_tuples()).sum()
    }

    fn prunes(&self) -> u64 {
        self.prunes
    }

    fn save_state(&self) -> Result<StateNode> {
        Ok(StateNode::List(vec![
            StateNode::List(self.runs.iter().map(save_run).collect()),
            StateNode::U64(self.prunes),
        ]))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        self.runs = state
            .item(0)?
            .as_list()?
            .iter()
            .map(restore_run)
            .collect::<Result<Vec<Run>>>()?;
        self.prunes = state.item(1)?.as_u64()?;
        Ok(())
    }
}

fn emit(pat: &SeqPattern, m: crate::binding::SeqMatch, out: &mut Vec<DetectorOutput>) {
    debug_assert!(window_satisfied(&pat.window, &m.bindings));
    out.push(DetectorOutput::Match(m));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::PairingMode;
    use crate::pattern::Element;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    fn pat4() -> SeqPattern {
        SeqPattern::new(
            (0..4).map(Element::new).collect(),
            None,
            PairingMode::Unrestricted,
        )
        .unwrap()
    }

    /// The paper's worked example (§3.1.1): joint history
    /// [t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4] must yield
    /// exactly 4 events under UNRESTRICTED.
    #[test]
    fn worked_example_yields_four_events() {
        let pat = pat4();
        let mut eng = Unrestricted::new();
        let mut out = Vec::new();
        let history = [
            (0usize, 1u64),
            (0, 2),
            (1, 3),
            (2, 4),
            (2, 5),
            (1, 6),
            (3, 7),
        ];
        for (i, (port, secs)) in history.iter().enumerate() {
            eng.on_tuple(&pat, *port, &t(*secs, i as u64), &mut out)
                .unwrap();
        }
        let matches: Vec<_> = out.iter().filter_map(|o| o.as_match()).collect();
        assert_eq!(matches.len(), 4);
        let mut combos: Vec<Vec<u64>> = matches
            .iter()
            .map(|m| {
                m.bindings
                    .iter()
                    .map(|b| b.first().ts().as_micros() / 1_000_000)
                    .collect()
            })
            .collect();
        combos.sort();
        assert_eq!(
            combos,
            vec![
                vec![1, 3, 4, 7],
                vec![1, 3, 5, 7],
                vec![2, 3, 4, 7],
                vec![2, 3, 5, 7],
            ]
        );
    }

    #[test]
    fn star_longest_match_single_event() {
        // SEQ(A*, B): three As then B → exactly one event with all three.
        let pat = SeqPattern::new(
            vec![Element::star(0), Element::new(1)],
            None,
            PairingMode::Unrestricted,
        )
        .unwrap();
        let mut eng = Unrestricted::new();
        let mut out = Vec::new();
        for i in 0..3u64 {
            eng.on_tuple(&pat, 0, &t(i, i), &mut out).unwrap();
        }
        eng.on_tuple(&pat, 1, &t(10, 3), &mut out).unwrap();
        let matches: Vec<_> = out.iter().filter_map(|o| o.as_match()).collect();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].binding(0).count(), 3);
    }

    #[test]
    fn later_close_reuses_grown_group() {
        // SEQ(A*, B): A A B1 B2 → (AA, B1) and (AA, B2).
        let pat = SeqPattern::new(
            vec![Element::star(0), Element::new(1)],
            None,
            PairingMode::Unrestricted,
        )
        .unwrap();
        let mut eng = Unrestricted::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 0, &t(1, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(2, 2), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(3, 3), &mut out).unwrap();
        let matches: Vec<_> = out.iter().filter_map(|o| o.as_match()).collect();
        assert_eq!(matches.len(), 2);
        assert!(matches.iter().all(|m| m.binding(0).count() == 2));
    }

    #[test]
    fn trailing_star_emits_per_arrival() {
        // SEQ(A, B*): one event per B (paper §3.1.2's online rule).
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::star(1)],
            None,
            PairingMode::Unrestricted,
        )
        .unwrap();
        let mut eng = Unrestricted::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        for i in 1..=3u64 {
            eng.on_tuple(&pat, 1, &t(i, i), &mut out).unwrap();
        }
        let counts: Vec<usize> = out
            .iter()
            .filter_map(|o| o.as_match())
            .map(|m| m.binding(1).count())
            .collect();
        assert_eq!(counts, vec![1, 2, 3]);
    }

    #[test]
    fn window_purges_runs() {
        use crate::pattern::EventWindow;
        use eslev_dsms::time::Duration;
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            Some(EventWindow::preceding(Duration::from_secs(10), 1)),
            PairingMode::Unrestricted,
        )
        .unwrap();
        let mut eng = Unrestricted::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        assert_eq!(eng.run_count(), 1);
        eng.on_punctuation(&pat, Timestamp::from_secs(11), &mut out)
            .unwrap();
        assert_eq!(eng.run_count(), 0);
        assert_eq!(eng.retained(), 0);
        // A late second element finds nothing.
        eng.on_tuple(&pat, 1, &t(12, 1), &mut out).unwrap();
        assert!(out.iter().all(|o| o.as_match().is_none()));
    }

    #[test]
    fn cross_product_growth_is_real() {
        // 3 As then 3 Bs with SEQ(A, B): 9 matches — the combinatorial
        // behaviour the other modes exist to avoid.
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            None,
            PairingMode::Unrestricted,
        )
        .unwrap();
        let mut eng = Unrestricted::new();
        let mut out = Vec::new();
        for i in 0..3u64 {
            eng.on_tuple(&pat, 0, &t(i, i), &mut out).unwrap();
        }
        for i in 3..6u64 {
            eng.on_tuple(&pat, 1, &t(i, i), &mut out).unwrap();
        }
        assert_eq!(out.len(), 9);
    }
}
