//! Per-mode detection engines.
//!
//! Each engine holds the tuple history shape its mode permits and turns
//! arriving tuples into [`DetectorOutput`]s. The [`Detector`] picks an
//! engine per partition based on the pattern's [`PairingMode`] (or the
//! exception engine for `EXCEPTION_SEQ`).
//!
//! [`Detector`]: crate::detector::Detector
//! [`PairingMode`]: crate::mode::PairingMode

mod chronicle;
mod consecutive;
mod exception;
mod recent;
mod unrestricted;

pub use chronicle::Chronicle;
pub use consecutive::Consecutive;
pub use exception::Exception;
pub use recent::Recent;
pub use unrestricted::Unrestricted;

use crate::binding::DetectorOutput;
use crate::mode::PairingMode;
use crate::pattern::SeqPattern;
use eslev_dsms::ckpt::StateNode;
use eslev_dsms::error::Result;
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;

/// The common engine interface.
pub trait ModeEngine: Send {
    /// Process a tuple arriving on `port`; append outputs.
    fn on_tuple(
        &mut self,
        pat: &SeqPattern,
        port: usize,
        t: &Tuple,
        out: &mut Vec<DetectorOutput>,
    ) -> Result<()>;

    /// Stream time advanced: purge expired state, fire expiry exceptions.
    fn on_punctuation(
        &mut self,
        pat: &SeqPattern,
        ts: Timestamp,
        out: &mut Vec<DetectorOutput>,
    ) -> Result<()>;

    /// Tuples currently retained (the paper's history-size metric).
    fn retained(&self) -> usize;

    /// Bindings or runs discarded so far — by window expiry, adjacency
    /// breaks or mode-specific overwrites. The per-mode pruning rate is
    /// what differentiates the four pairing modes operationally, so it is
    /// surfaced as an observability counter. Default: never prunes.
    fn prunes(&self) -> u64 {
        0
    }

    /// Serialize the engine's state for a checkpoint.
    fn save_state(&self) -> Result<StateNode>;

    /// Restore state saved by [`ModeEngine::save_state`] into a fresh
    /// engine built for the same pattern.
    fn restore_state(&mut self, state: &StateNode) -> Result<()>;
}

/// Instantiate the engine for a mode (SEQ detection).
pub fn engine_for(mode: PairingMode, pat: &SeqPattern) -> Box<dyn ModeEngine> {
    match mode {
        PairingMode::Unrestricted => Box::new(Unrestricted::new()),
        PairingMode::Recent => Box::new(Recent::new(pat)),
        PairingMode::Chronicle => Box::new(Chronicle::new(pat)),
        PairingMode::Consecutive => Box::new(Consecutive::new()),
    }
}

#[cfg(test)]
mod ckpt_tests {
    use super::*;
    use crate::pattern::Element;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    /// Suspend/resume equivalence: feeding the worked example with a
    /// save/restore in the middle must behave exactly like an
    /// uninterrupted engine — same outputs, same retained history, same
    /// prune counters — for every pairing mode.
    #[test]
    fn save_restore_mid_stream_is_transparent() {
        let history = crate::joint::worked_example();
        for mode in PairingMode::ALL {
            let pat = SeqPattern::new((0..4).map(Element::new).collect(), None, mode).unwrap();
            let mut reference = engine_for(mode, &pat);
            let mut first_half = engine_for(mode, &pat);
            let mut ref_out = Vec::new();
            let mut out = Vec::new();
            for e in &history[..4] {
                reference
                    .on_tuple(&pat, e.port, &e.tuple, &mut ref_out)
                    .unwrap();
                first_half
                    .on_tuple(&pat, e.port, &e.tuple, &mut out)
                    .unwrap();
            }
            let saved = first_half.save_state().unwrap();
            let mut resumed = engine_for(mode, &pat);
            resumed.restore_state(&saved).unwrap();
            drop(first_half);
            for e in &history[4..] {
                reference
                    .on_tuple(&pat, e.port, &e.tuple, &mut ref_out)
                    .unwrap();
                resumed.on_tuple(&pat, e.port, &e.tuple, &mut out).unwrap();
            }
            assert_eq!(out, ref_out, "{mode:?} outputs diverge after restore");
            assert_eq!(resumed.retained(), reference.retained(), "{mode:?}");
            assert_eq!(resumed.prunes(), reference.prunes(), "{mode:?}");
        }
    }

    /// The RECENT engine's O(pattern-length) history bound relies on
    /// parent chains being shared between slots; the round trip must
    /// preserve that sharing, not expand the DAG into trees.
    #[test]
    fn recent_restore_preserves_chain_sharing() {
        let pat = SeqPattern::new(
            (0..4).map(Element::new).collect(),
            None,
            PairingMode::Recent,
        )
        .unwrap();
        let mut eng = Recent::new(&pat);
        let mut out = Vec::new();
        for i in 0..100u64 {
            eng.on_tuple(&pat, (i % 3) as usize, &t(i, i), &mut out)
                .unwrap();
        }
        let before = eng.retained();
        let saved = eng.save_state().unwrap();
        let mut resumed = Recent::new(&pat);
        resumed.restore_state(&saved).unwrap();
        assert_eq!(resumed.retained(), before);
        for i in 100..1100u64 {
            resumed
                .on_tuple(&pat, (i % 3) as usize, &t(i, i), &mut out)
                .unwrap();
        }
        assert!(resumed.retained() <= 8, "retained {}", resumed.retained());
    }

    /// Exception-engine partials survive suspension: the window-expiry
    /// exception still fires from a punctuation after restore.
    #[test]
    fn exception_partial_survives_restore() {
        use crate::pattern::EventWindow;
        use eslev_dsms::time::Duration;
        let pat = SeqPattern::new(
            (0..3).map(Element::new).collect(),
            Some(EventWindow::following(Duration::from_secs(3600), 0)),
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut eng = Exception::new();
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(600, 1), &mut out).unwrap();
        let saved = eng.save_state().unwrap();
        let mut resumed = Exception::new();
        resumed.restore_state(&saved).unwrap();
        resumed
            .on_punctuation(&pat, Timestamp::from_secs(4000), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        let e = out[0].as_exception().unwrap();
        assert_eq!(e.level, 3);
    }
}
