//! Per-mode detection engines.
//!
//! Each engine holds the tuple history shape its mode permits and turns
//! arriving tuples into [`DetectorOutput`]s. The [`Detector`] picks an
//! engine per partition based on the pattern's [`PairingMode`] (or the
//! exception engine for `EXCEPTION_SEQ`).
//!
//! [`Detector`]: crate::detector::Detector
//! [`PairingMode`]: crate::mode::PairingMode

mod chronicle;
mod consecutive;
mod exception;
mod recent;
mod unrestricted;

pub use chronicle::Chronicle;
pub use consecutive::Consecutive;
pub use exception::Exception;
pub use recent::Recent;
pub use unrestricted::Unrestricted;

use crate::binding::DetectorOutput;
use crate::mode::PairingMode;
use crate::pattern::SeqPattern;
use eslev_dsms::error::Result;
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;

/// The common engine interface.
pub trait ModeEngine: Send {
    /// Process a tuple arriving on `port`; append outputs.
    fn on_tuple(
        &mut self,
        pat: &SeqPattern,
        port: usize,
        t: &Tuple,
        out: &mut Vec<DetectorOutput>,
    ) -> Result<()>;

    /// Stream time advanced: purge expired state, fire expiry exceptions.
    fn on_punctuation(
        &mut self,
        pat: &SeqPattern,
        ts: Timestamp,
        out: &mut Vec<DetectorOutput>,
    ) -> Result<()>;

    /// Tuples currently retained (the paper's history-size metric).
    fn retained(&self) -> usize;

    /// Bindings or runs discarded so far — by window expiry, adjacency
    /// breaks or mode-specific overwrites. The per-mode pruning rate is
    /// what differentiates the four pairing modes operationally, so it is
    /// surfaced as an observability counter. Default: never prunes.
    fn prunes(&self) -> u64 {
        0
    }
}

/// Instantiate the engine for a mode (SEQ detection).
pub fn engine_for(mode: PairingMode, pat: &SeqPattern) -> Box<dyn ModeEngine> {
    match mode {
        PairingMode::Unrestricted => Box::new(Unrestricted::new()),
        PairingMode::Recent => Box::new(Recent::new(pat)),
        PairingMode::Chronicle => Box::new(Chronicle::new(pat)),
        PairingMode::Consecutive => Box::new(Consecutive::new()),
    }
}
