//! CHRONICLE mode: earliest qualifying tuples pair up, and every tuple
//! participates in at most one event (consumed on match).
//!
//! Implemented with one FIFO of unconsumed bindings per element position
//! (groups for star elements, delimited by the `star_gap` constraint).
//! When a tuple arrives that can bind the final element, the engine
//! searches the queues for the lexicographically-earliest chain; on
//! success the participating tuples are removed everywhere — the paper's
//! "once a matching occurs ... the participating tuples can be removed
//! from the tuple history".

use super::ModeEngine;
use crate::binding::{Binding, DetectorOutput, SeqMatch};
use crate::ckpt::{restore_binding, restore_run, save_binding, save_run};
use crate::pattern::{SeqPattern, WindowKind};
use crate::runs::{gap_ok, matches_elem, window_satisfied, Run};
use eslev_dsms::ckpt::StateNode;
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;
use std::collections::VecDeque;

/// The CHRONICLE engine.
pub struct Chronicle {
    /// Unconsumed bindings per element position. The final position's
    /// queue stays empty for non-star patterns (a final-element tuple
    /// either completes a chain on arrival or can never complete one).
    queues: Vec<VecDeque<Binding>>,
    /// Active trailing-star run (consumed prefix + growing group).
    trailing: Option<Run>,
    prunes: u64,
}

impl Chronicle {
    /// Fresh engine for `pat`.
    pub fn new(pat: &SeqPattern) -> Chronicle {
        Chronicle {
            queues: (0..pat.len()).map(|_| VecDeque::new()).collect(),
            trailing: None,
            prunes: 0,
        }
    }

    /// Earliest chain through positions `0..last` whose tail `t` can
    /// follow; returns per-position queue indexes.
    fn search_prefix(&self, pat: &SeqPattern, last: usize, t: &Tuple) -> Option<Vec<usize>> {
        let mut chosen = vec![0usize; last];
        self.dfs(pat, 0, last, None, t, &mut chosen)
            .then_some(chosen)
    }

    fn dfs(
        &self,
        pat: &SeqPattern,
        k: usize,
        last: usize,
        prev: Option<&Tuple>,
        t: &Tuple,
        chosen: &mut Vec<usize>,
    ) -> bool {
        if k == last {
            // Bind the arriving tuple itself as element `last`.
            let elem = &pat.elements[last];
            return match prev {
                Some(p) => t.after(p) && gap_ok(elem.max_gap_from_prev, Some(p), t),
                None => true,
            };
        }
        let elem = &pat.elements[k];
        for (i, b) in self.queues[k].iter().enumerate() {
            let first = b.first();
            let ok_order = prev.is_none_or(|p| first.after(p));
            let ok_gap = gap_ok(elem.max_gap_from_prev, prev, first);
            // Everything must precede the completing tuple.
            let ok_before_t = t.after(b.last());
            if ok_order && ok_gap && ok_before_t {
                chosen[k] = i;
                if self.dfs(pat, k + 1, last, Some(b.last()), t, chosen) {
                    return true;
                }
            }
            // Earliest-first: later entries only tried when earlier ones
            // fail downstream (backtracking).
        }
        false
    }

    /// Consume chosen bindings and every other queue occurrence of their
    /// tuples (self-aliased streams enqueue a tuple at several positions).
    fn consume(&mut self, chosen: &[usize]) -> Vec<Binding> {
        let mut used: Vec<Binding> = Vec::with_capacity(chosen.len());
        for (k, &i) in chosen.iter().enumerate() {
            used.push(self.queues[k].remove(i).expect("index from search"));
        }
        let seqs: std::collections::HashSet<u64> = used
            .iter()
            .flat_map(|b| b.tuples().iter().map(|t| t.seq()))
            .collect();
        for q in &mut self.queues {
            let mut rebuilt = VecDeque::with_capacity(q.len());
            for b in q.drain(..) {
                match b {
                    Binding::Single(t) => {
                        if !seqs.contains(&t.seq()) {
                            rebuilt.push_back(Binding::Single(t));
                        }
                    }
                    Binding::Star(g) => {
                        let g: Vec<Tuple> =
                            g.into_iter().filter(|t| !seqs.contains(&t.seq())).collect();
                        if !g.is_empty() {
                            rebuilt.push_back(Binding::Star(g));
                        }
                    }
                }
            }
            *q = rebuilt;
        }
        used
    }

    fn enqueue(&mut self, pat: &SeqPattern, k: usize, t: &Tuple) {
        let elem = &pat.elements[k];
        if elem.star {
            if let Some(Binding::Star(g)) = self.queues[k].back_mut() {
                let tail = g.last().expect("groups are non-empty");
                if t.after(tail) && gap_ok(elem.star_gap, Some(tail), t) {
                    g.push(t.clone());
                    return;
                }
            }
            self.queues[k].push_back(Binding::Star(vec![t.clone()]));
        } else {
            self.queues[k].push_back(Binding::Single(t.clone()));
        }
    }

    fn emit_if_windowed(
        pat: &SeqPattern,
        bindings: Vec<Binding>,
        out: &mut Vec<DetectorOutput>,
    ) -> bool {
        if window_satisfied(&pat.window, &bindings) {
            out.push(DetectorOutput::Match(SeqMatch { bindings }));
            true
        } else {
            false
        }
    }
}

impl ModeEngine for Chronicle {
    fn on_tuple(
        &mut self,
        pat: &SeqPattern,
        port: usize,
        t: &Tuple,
        out: &mut Vec<DetectorOutput>,
    ) -> Result<()> {
        let n = pat.len();
        let mut consumed_as_final = false;
        for k in pat.candidates(port).collect::<Vec<_>>() {
            if consumed_as_final {
                break;
            }
            if !matches_elem(&pat.elements[k], t, port)? {
                continue;
            }
            if k == n - 1 {
                if pat.trailing_star() {
                    // Extend the active trailing run, else start one.
                    if let Some(run) = &mut self.trailing {
                        let tail = run.group.last().cloned();
                        if tail.as_ref().is_some_and(|tail| {
                            t.after(tail) && gap_ok(pat.elements[k].star_gap, Some(tail), t)
                        }) {
                            run.group.push(t.clone());
                            let snap = run.snapshot_match();
                            if window_satisfied(&pat.window, &snap.bindings) {
                                out.push(DetectorOutput::Match(snap));
                            }
                            continue;
                        }
                        // Gap broke: the run is finished; drop it.
                        self.trailing = None;
                        self.prunes += 1;
                    }
                    if let Some(chosen) = self.search_prefix(pat, n - 1, t) {
                        let mut bindings = self.consume(&chosen);
                        bindings.push(Binding::Star(vec![t.clone()]));
                        let run = Run {
                            bindings: bindings[..n - 1].to_vec(),
                            group: vec![t.clone()],
                        };
                        if window_satisfied(&pat.window, &bindings) {
                            out.push(DetectorOutput::Match(SeqMatch { bindings }));
                        }
                        self.trailing = Some(run);
                    }
                } else if let Some(chosen) = self.search_prefix(pat, n - 1, t) {
                    let mut bindings = self.consume(&chosen);
                    bindings.push(Binding::Single(t.clone()));
                    // Window rejection forfeits the chain (tuples were
                    // consumed); incremental checks below make this rare,
                    // and the prefix purge keeps queues in-window.
                    if Self::emit_if_windowed(pat, bindings, out) {
                        consumed_as_final = true;
                    }
                }
            } else {
                self.enqueue(pat, k, t);
            }
        }
        Ok(())
    }

    fn on_punctuation(
        &mut self,
        pat: &SeqPattern,
        ts: Timestamp,
        _out: &mut Vec<DetectorOutput>,
    ) -> Result<()> {
        if let Some(w) = &pat.window {
            match w.kind {
                WindowKind::Preceding if w.anchor == pat.len() - 1 => {
                    // Completion happens at ≥ ts, so anything older than
                    // ts − d can never sit inside the window again.
                    let bound = ts.saturating_sub(w.dur);
                    for q in &mut self.queues {
                        while q.front().is_some_and(|b| b.last().ts() < bound) {
                            q.pop_front();
                            self.prunes += 1;
                        }
                    }
                }
                WindowKind::Following => {
                    // Anchor candidates whose window already closed can
                    // never head a completing chain.
                    let q = &mut self.queues[w.anchor];
                    while q.front().is_some_and(|b| b.first().ts() + w.dur < ts) {
                        q.pop_front();
                        self.prunes += 1;
                    }
                }
                _ => {}
            }
        }
        if let Some(run) = &self.trailing {
            if run.deadline(pat).is_some_and(|d| ts > d) {
                self.trailing = None;
                self.prunes += 1;
            }
        }
        Ok(())
    }

    fn retained(&self) -> usize {
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|b| b.count())
            .sum::<usize>()
            + self.trailing.as_ref().map_or(0, |r| r.total_tuples())
    }

    fn prunes(&self) -> u64 {
        self.prunes
    }

    fn save_state(&self) -> Result<StateNode> {
        let queues = self
            .queues
            .iter()
            .map(|q| StateNode::List(q.iter().map(save_binding).collect()))
            .collect();
        let trailing = match &self.trailing {
            None => StateNode::Unit,
            Some(run) => save_run(run),
        };
        Ok(StateNode::List(vec![
            StateNode::List(queues),
            trailing,
            StateNode::U64(self.prunes),
        ]))
    }

    fn restore_state(&mut self, state: &StateNode) -> Result<()> {
        let queues = state.item(0)?.as_list()?;
        if queues.len() != self.queues.len() {
            return Err(DsmsError::ckpt(format!(
                "chronicle engine has {} queues, checkpoint has {}",
                self.queues.len(),
                queues.len()
            )));
        }
        for (q, node) in self.queues.iter_mut().zip(queues) {
            q.clear();
            for b in node.as_list()? {
                q.push_back(restore_binding(b)?);
            }
        }
        self.trailing = match state.item(1)? {
            StateNode::Unit => None,
            run => Some(restore_run(run)?),
        };
        self.prunes = state.item(2)?.as_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::PairingMode;
    use crate::pattern::{Element, EventWindow};
    use eslev_dsms::time::Duration;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    fn pat4() -> SeqPattern {
        SeqPattern::new(
            (0..4).map(Element::new).collect(),
            None,
            PairingMode::Chronicle,
        )
        .unwrap()
    }

    /// The paper's worked example: CHRONICLE returns only
    /// (t1:C1, t3:C2, t4:C3, t7:C4), and the tuples are consumed.
    #[test]
    fn worked_example_earliest_chain_consumed() {
        let pat = pat4();
        let mut eng = Chronicle::new(&pat);
        let mut out = Vec::new();
        let history = [
            (0usize, 1u64),
            (0, 2),
            (1, 3),
            (2, 4),
            (2, 5),
            (1, 6),
            (3, 7),
        ];
        for (i, (port, secs)) in history.iter().enumerate() {
            eng.on_tuple(&pat, *port, &t(*secs, i as u64), &mut out)
                .unwrap();
        }
        assert_eq!(out.len(), 1);
        let secs: Vec<u64> = out[0]
            .as_match()
            .unwrap()
            .bindings
            .iter()
            .map(|b| b.first().ts().as_micros() / 1_000_000)
            .collect();
        assert_eq!(secs, vec![1, 3, 4, 7]);
        // Consumption: a second C4 can still match the leftovers
        // (t2:C1, t6:C2, t5:C3)? No — t6:C2 follows t5:C3, so no chain.
        eng.on_tuple(&pat, 3, &t(8, 7), &mut out).unwrap();
        assert_eq!(out.len(), 1, "leftover tuples form no ordered chain");
    }

    #[test]
    fn consumption_prevents_reuse() {
        // SEQ(A, B): A B B → first B consumes A; second B finds nothing.
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let mut eng = Chronicle::new(&pat);
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(1, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(2, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(3, 2), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(eng.retained(), 0);
    }

    #[test]
    fn earliest_first_pairing() {
        // SEQ(A, B): A1 A2 B1 B2 → (A1,B1), (A2,B2).
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let mut eng = Chronicle::new(&pat);
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(1, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 0, &t(2, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(3, 2), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(4, 3), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        let firsts: Vec<u64> = out
            .iter()
            .map(|o| o.as_match().unwrap().binding(0).first().ts().as_micros() / 1_000_000)
            .collect();
        assert_eq!(firsts, vec![1, 2]);
    }

    /// Example 7: SEQ(R1*, R2) MODE CHRONICLE — containment. Two packing
    /// rounds with a gap break between them.
    #[test]
    fn containment_two_cases() {
        let pat = SeqPattern::new(
            vec![
                Element::star(0).with_star_gap(Duration::from_secs(1)),
                Element::new(1).with_max_gap(Duration::from_secs(5)),
            ],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let mut eng = Chronicle::new(&pat);
        let mut out = Vec::new();
        let ms = |ms: u64, seq: u64| Tuple::new(vec![], Timestamp::from_millis(ms), seq);
        // Case 1: 3 products at 0/400/800 ms, case read at 2 s.
        for (i, m) in [0u64, 400, 800].iter().enumerate() {
            eng.on_tuple(&pat, 0, &ms(*m, i as u64), &mut out).unwrap();
        }
        eng.on_tuple(&pat, 1, &ms(2000, 3), &mut out).unwrap();
        // Case 2: 2 products at 10/10.5 s, case read at 11 s.
        eng.on_tuple(&pat, 0, &ms(10_000, 4), &mut out).unwrap();
        eng.on_tuple(&pat, 0, &ms(10_500, 5), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &ms(11_000, 6), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].as_match().unwrap().binding(0).count(), 3);
        assert_eq!(out[1].as_match().unwrap().binding(0).count(), 2);
        assert_eq!(eng.retained(), 0, "matched tuples are consumed");
    }

    #[test]
    fn star_gap_break_without_case_keeps_groups_separate() {
        let pat = SeqPattern::new(
            vec![
                Element::star(0).with_star_gap(Duration::from_secs(1)),
                Element::new(1).with_max_gap(Duration::from_secs(5)),
            ],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let mut eng = Chronicle::new(&pat);
        let mut out = Vec::new();
        // Two product bursts, then one case: earliest group wins.
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_tuple(&pat, 0, &t(10, 1), &mut out).unwrap(); // gap break
        eng.on_tuple(&pat, 1, &t(12, 2), &mut out).unwrap();
        // Earliest group [t0] violates max_gap (12 − 0 > 5): falls through
        // to the second group [t10], which qualifies.
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].as_match().unwrap().binding(0).first().ts(),
            Timestamp::from_secs(10)
        );
        assert_eq!(eng.retained(), 1, "unmatched first burst remains queued");
    }

    #[test]
    fn trailing_star_online_with_consumed_prefix() {
        // SEQ(A, B*): B tuples emit online; prefix A is consumed once.
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::star(1)],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let mut eng = Chronicle::new(&pat);
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        for i in 1..=3u64 {
            eng.on_tuple(&pat, 1, &t(i, i), &mut out).unwrap();
        }
        let counts: Vec<usize> = out
            .iter()
            .map(|o| o.as_match().unwrap().binding(1).count())
            .collect();
        assert_eq!(counts, vec![1, 2, 3]);
    }

    #[test]
    fn preceding_window_purges_queues() {
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            Some(EventWindow::preceding(Duration::from_secs(10), 1)),
            PairingMode::Chronicle,
        )
        .unwrap();
        let mut eng = Chronicle::new(&pat);
        let mut out = Vec::new();
        for i in 0..50u64 {
            eng.on_tuple(&pat, 0, &t(i, i), &mut out).unwrap();
        }
        eng.on_punctuation(&pat, Timestamp::from_secs(100), &mut out)
            .unwrap();
        assert_eq!(eng.retained(), 0);
    }

    #[test]
    fn following_window_purges_anchor_queue() {
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            Some(EventWindow::following(Duration::from_secs(10), 0)),
            PairingMode::Chronicle,
        )
        .unwrap();
        let mut eng = Chronicle::new(&pat);
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap();
        eng.on_punctuation(&pat, Timestamp::from_secs(11), &mut out)
            .unwrap();
        assert_eq!(eng.retained(), 0);
        // And the in-window path still matches.
        eng.on_tuple(&pat, 0, &t(20, 1), &mut out).unwrap();
        eng.on_tuple(&pat, 1, &t(25, 2), &mut out).unwrap();
        assert_eq!(out.len(), 1);
    }
}

#[cfg(test)]
mod backtracking_tests {
    use super::*;
    use crate::mode::PairingMode;
    use crate::pattern::Element;
    use eslev_dsms::time::Duration;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(vec![], Timestamp::from_secs(secs), seq)
    }

    /// The earliest-first DFS must backtrack: the earliest A cannot pair
    /// with any B satisfying the gap, but the second A can.
    #[test]
    fn dfs_backtracks_past_infeasible_earliest() {
        // SEQ(A, B) with B within 2 s of A.
        let pat = SeqPattern::new(
            vec![
                Element::new(0),
                Element::new(1).with_max_gap(Duration::from_secs(2)),
            ],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let mut eng = Chronicle::new(&pat);
        let mut out = Vec::new();
        eng.on_tuple(&pat, 0, &t(0, 0), &mut out).unwrap(); // A@0
        eng.on_tuple(&pat, 0, &t(9, 1), &mut out).unwrap(); // A@9
        eng.on_tuple(&pat, 1, &t(10, 2), &mut out).unwrap(); // B@10
        assert_eq!(out.len(), 1);
        let m = out[0].as_match().unwrap();
        assert_eq!(m.binding(0).first().ts(), Timestamp::from_secs(9));
        // A@0 is still queued (not consumed by the failed probe).
        assert_eq!(eng.retained(), 1);
    }

    /// Three-deep backtracking: earliest chains fail at the last element
    /// repeatedly; the engine must still find the unique feasible chain.
    #[test]
    fn deep_backtracking_finds_feasible_chain() {
        // SEQ(A, B, C): C within 3 s of B, B within 3 s of A.
        let pat = SeqPattern::new(
            vec![
                Element::new(0),
                Element::new(1).with_max_gap(Duration::from_secs(3)),
                Element::new(2).with_max_gap(Duration::from_secs(3)),
            ],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let mut eng = Chronicle::new(&pat);
        let mut out = Vec::new();
        // A@0 pairs with B@2, but then no C within 3 of B@2 exists;
        // the feasible chain is A@10, B@12, C@14.
        for (port, secs, seq) in [
            (0usize, 0u64, 0u64),
            (1, 2, 1),
            (0, 10, 2),
            (1, 12, 3),
            (2, 14, 4),
        ] {
            eng.on_tuple(&pat, port, &t(secs, seq), &mut out).unwrap();
        }
        assert_eq!(out.len(), 1);
        let m = out[0].as_match().unwrap();
        let starts: Vec<u64> = m
            .bindings
            .iter()
            .map(|b| b.first().ts().as_micros() / 1_000_000)
            .collect();
        assert_eq!(starts, vec![10, 12, 14]);
    }
}
