//! # eslev-core — ESL-EV temporal event operators
//!
//! The primary contribution of *RFID Data Processing with a Data Stream
//! Query Language* (Bai, Wang, Liu, Zaniolo, Liu — ICDE 2007): temporal
//! event detection integrated into a SQL-based stream system.
//!
//! * [`pattern::SeqPattern`] — `SEQ(E1, E2*, ..., En)` with per-element
//!   predicates, the `previous`-operator gap constraints, and operator
//!   windows (`OVER [d PRECEDING/FOLLOWING E_i]`).
//! * [`mode::PairingMode`] — the four Tuple Pairing Modes
//!   (UNRESTRICTED / RECENT / CHRONICLE / CONSECUTIVE).
//! * [`detector::Detector`] — the incremental multi-stream detector, with
//!   partitioning (equi-key conditions) and residual filters; in
//!   `EXCEPTION_SEQ` form it reports *Sequence Completion Level*
//!   violations including punctuation-driven window expiry.
//! * [`op::DetectorOp`] — adapter that runs a detector as an operator of
//!   the `eslev-dsms` engine.
//!
//! ```
//! use eslev_core::prelude::*;
//! use eslev_dsms::prelude::{Timestamp, Tuple, Duration};
//!
//! // SEQ(R1*, R2) MODE CHRONICLE — Example 7's containment pattern.
//! let pattern = SeqPattern::new(
//!     vec![
//!         Element::star(0).with_star_gap(Duration::from_secs(1)),
//!         Element::new(1).with_max_gap(Duration::from_secs(5)),
//!     ],
//!     None,
//!     PairingMode::Chronicle,
//! )
//! .unwrap();
//! let mut detector = Detector::new(DetectorConfig::seq(pattern)).unwrap();
//! let at = |s: u64, q: u64| Tuple::new(vec![], Timestamp::from_secs(s), q);
//! detector.on_tuple(0, &at(1, 0)).unwrap(); // product
//! detector.on_tuple(0, &at(2, 1)).unwrap(); // product
//! let outs = detector.on_tuple(1, &at(3, 2)).unwrap(); // packing case
//! let m = outs[0].as_match().unwrap();
//! assert_eq!(m.binding(0).count(), 2); // COUNT(R1*)
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binding;
pub mod ckpt;
pub mod detector;
pub mod joint;
pub mod mode;
pub mod modes;
pub mod op;
pub mod pattern;
pub mod runs;

/// One-stop imports for the temporal-operator layer.
pub mod prelude {
    pub use crate::binding::{Binding, DetectorOutput, ExceptionCause, ExceptionEvent, SeqMatch};
    pub use crate::detector::{DetectKind, Detector, DetectorConfig, MatchFilter};
    pub use crate::joint::{merge, JointEntry};
    pub use crate::mode::PairingMode;
    pub use crate::op::{DetectorOp, OutputProjection};
    pub use crate::pattern::{Element, EventWindow, SeqPattern, WindowKind};
}
