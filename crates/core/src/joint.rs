//! Joint tuple history utilities (§3.1.1).
//!
//! The paper defines the *joint tuple history* of a set of streams as the
//! timestamp-ordered union of their tuples — the structure CONSECUTIVE
//! mode's adjacency is defined against, and the notation
//! `[t1:C1, t2:C1, t3:C2, ...]` the worked example uses. This module
//! provides that merged view for tests, the baseline comparators and the
//! workload replayers: a deterministic merge of per-stream feeds by
//! `(ts, seq)`.

use eslev_dsms::tuple::Tuple;

/// One entry of a joint history: which port it arrived on, plus the tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointEntry {
    /// Input port (stream) of the tuple.
    pub port: usize,
    /// The tuple itself.
    pub tuple: Tuple,
}

/// Merge per-port feeds (each already in `(ts, seq)` order) into the
/// joint tuple history. Stable across equal timestamps thanks to the
/// global sequence-number tie-break.
pub fn merge(feeds: Vec<Vec<Tuple>>) -> Vec<JointEntry> {
    let mut all: Vec<JointEntry> = feeds
        .into_iter()
        .enumerate()
        .flat_map(|(port, ts)| ts.into_iter().map(move |tuple| JointEntry { port, tuple }))
        .collect();
    all.sort_by_key(|e| e.tuple.order_key());
    all
}

/// Render a joint history in the paper's `[t1:C1, t2:C1, ...]` notation
/// (port `i` printed as `C{i+1}`, times in whole seconds). Used by tests
/// and the experiment harness for readable diagnostics.
pub fn notation(history: &[JointEntry]) -> String {
    let parts: Vec<String> = history
        .iter()
        .map(|e| format!("t{}:C{}", e.tuple.ts().as_micros() / 1_000_000, e.port + 1))
        .collect();
    format!("[{}]", parts.join(", "))
}

/// Build the worked example of §3.1.1:
/// `[t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4]` over four ports.
/// Returned as `(port, tuple)` pairs ready to feed a detector.
pub fn worked_example() -> Vec<JointEntry> {
    use eslev_dsms::time::Timestamp;
    let spec: [(usize, u64); 7] = [(0, 1), (0, 2), (1, 3), (2, 4), (2, 5), (1, 6), (3, 7)];
    spec.iter()
        .enumerate()
        .map(|(i, (port, secs))| JointEntry {
            port: *port,
            tuple: Tuple::new(Vec::new(), Timestamp::from_secs(*secs), i as u64),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslev_dsms::time::Timestamp;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(vec![], Timestamp::from_secs(secs), seq)
    }

    #[test]
    fn merge_orders_by_time_then_seq() {
        let merged = merge(vec![vec![t(1, 0), t(5, 3)], vec![t(2, 1), t(5, 2)]]);
        let keys: Vec<(u64, u64)> = merged
            .iter()
            .map(|e| (e.tuple.ts().as_micros() / 1_000_000, e.tuple.seq()))
            .collect();
        assert_eq!(keys, vec![(1, 0), (2, 1), (5, 2), (5, 3)]);
        assert_eq!(merged[2].port, 1, "seq 2 came from the second feed");
    }

    #[test]
    fn worked_example_notation_matches_paper() {
        let h = worked_example();
        assert_eq!(
            notation(&h),
            "[t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4]"
        );
    }
}
