//! Partial-match runs — the shared machinery of the pairing-mode engines.
//!
//! A [`Run`] is a partial sequence: bindings for a prefix of the pattern's
//! elements plus, when the next element is a star, its *open group* of
//! accumulated tuples. The paper's longest-match rule (§3.1.2) falls out
//! of this representation: a star group absorbs every qualifying tuple
//! until the *next* element's tuple arrives, so by construction the group
//! is maximal when it closes.

use crate::binding::{Binding, SeqMatch};
use crate::pattern::{Element, EventWindow, SeqPattern, WindowKind};
use eslev_dsms::error::Result;
use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;

/// How a tuple can advance a run (computed by [`Run::classify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ext {
    /// Append the tuple to the open star group of element `idx`
    /// (starting the group when it is empty).
    Append {
        /// Star element index (always the run's next element).
        idx: usize,
    },
    /// Close the open group (if any) and bind element `idx` with the
    /// tuple (starting a fresh open group when element `idx` is a star).
    Advance {
        /// Element index being bound.
        idx: usize,
    },
}

/// A partial match.
#[derive(Debug, Clone, Default)]
pub struct Run {
    /// Completed bindings for elements `0..bindings.len()`.
    pub bindings: Vec<Binding>,
    /// Open star group for element `bindings.len()` (empty when that
    /// element is not a star or has not started).
    pub group: Vec<Tuple>,
}

impl Run {
    /// A fresh, empty run.
    pub fn new() -> Run {
        Run::default()
    }

    /// Index of the next element to fill.
    pub fn next_elem(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the run has bound (or started) anything.
    pub fn is_untouched(&self) -> bool {
        self.bindings.is_empty() && self.group.is_empty()
    }

    /// Completed elements, counting a non-empty open star group as
    /// completed (a star needs only one tuple) — this is the paper's
    /// *Sequence Completion Level* of the partial.
    pub fn completion_level(&self) -> usize {
        self.bindings.len() + usize::from(!self.group.is_empty())
    }

    /// The most recently bound tuple (open-group tail, else the last
    /// binding's last tuple).
    pub fn last_tuple(&self) -> Option<&Tuple> {
        self.group
            .last()
            .or_else(|| self.bindings.last().map(|b| b.last()))
    }

    /// Timestamp of the first tuple in the run.
    pub fn first_ts(&self) -> Option<Timestamp> {
        self.bindings
            .first()
            .map(|b| b.first().ts())
            .or_else(|| self.group.first().map(|t| t.ts()))
    }

    /// When the window anchored at element `anchor` starts for this run:
    /// the anchor binding's first tuple (or the open group's first tuple
    /// when the anchor is the currently accumulating star).
    pub fn anchor_start(&self, anchor: usize) -> Option<Timestamp> {
        if anchor < self.bindings.len() {
            Some(self.bindings[anchor].first().ts())
        } else if anchor == self.bindings.len() {
            self.group.first().map(|t| t.ts())
        } else {
            None
        }
    }

    /// Total tuples held by the run (the history-size metric).
    pub fn total_tuples(&self) -> usize {
        self.bindings.iter().map(|b| b.count()).sum::<usize>() + self.group.len()
    }

    /// Determine whether (and how) `t` extends this run under `pat`.
    ///
    /// Checks, in order: element port + predicate, strict `(ts, seq)`
    /// progression, the gap constraints, and the event window. Returns at
    /// most one action — given the run's state the extension is
    /// deterministic; *which runs exist* is what distinguishes the modes.
    pub fn classify(&self, pat: &SeqPattern, t: &Tuple, port: usize) -> Result<Option<Ext>> {
        let next = self.next_elem();
        if next >= pat.len() {
            return Ok(None);
        }
        // Strict progression: the tuple must come after everything bound.
        if let Some(prev) = self.last_tuple() {
            if !t.after(prev) {
                return Ok(None);
            }
        }
        let elem = &pat.elements[next];
        if elem.star {
            if self.group.is_empty() {
                // Starting the star group.
                if matches_elem(elem, t, port)?
                    && gap_ok(elem.max_gap_from_prev, self.last_tuple(), t)
                    && self.window_ok(pat, next, t)
                {
                    return Ok(Some(Ext::Append { idx: next }));
                }
                return Ok(None);
            }
            // Group open: absorb, or close via the next element.
            if matches_elem(elem, t, port)?
                && gap_ok(elem.star_gap, self.group.last(), t)
                && self.window_ok(pat, next, t)
            {
                return Ok(Some(Ext::Append { idx: next }));
            }
            if next + 1 < pat.len() {
                let succ = &pat.elements[next + 1];
                if matches_elem(succ, t, port)?
                    && gap_ok(succ.max_gap_from_prev, self.group.last(), t)
                    && self.window_ok(pat, next + 1, t)
                {
                    return Ok(Some(Ext::Advance { idx: next + 1 }));
                }
            }
            return Ok(None);
        }
        // Plain element.
        if matches_elem(elem, t, port)?
            && gap_ok(elem.max_gap_from_prev, self.last_tuple(), t)
            && self.window_ok(pat, next, t)
        {
            return Ok(Some(Ext::Advance { idx: next }));
        }
        Ok(None)
    }

    /// Would binding element `idx` with `t` respect the event window?
    fn window_ok(&self, pat: &SeqPattern, idx: usize, t: &Tuple) -> bool {
        let Some(w) = &pat.window else { return true };
        match w.kind {
            WindowKind::Preceding => {
                // Elements 0..=anchor within [anchor_ts − d, anchor_ts]:
                // it suffices that the anchor lands within d of the run's
                // first tuple — and for a star anchor, that each group
                // tuple does.
                if idx == w.anchor {
                    if let Some(first) = self.first_ts() {
                        return t.ts().since(first).is_some_and(|g| g <= w.dur);
                    }
                }
                true
            }
            WindowKind::Following => {
                // Elements anchor..n within [anchor_start, anchor_start+d].
                if idx > w.anchor {
                    if let Some(start) = self.anchor_start(w.anchor) {
                        return t.ts().since(start).is_some_and(|g| g <= w.dur);
                    }
                }
                true
            }
        }
    }

    /// The instant after which this run can no longer complete within its
    /// window; `None` when unconstrained. Drives purging (SEQ) and the
    /// window-expiry exceptions of §3.1.3 (EXCEPTION_SEQ).
    pub fn deadline(&self, pat: &SeqPattern) -> Option<Timestamp> {
        let w = pat.window.as_ref()?;
        match w.kind {
            WindowKind::Preceding => {
                // Until the anchor is closed, everything must stay within
                // d of the run's first tuple.
                if self.bindings.len() <= w.anchor {
                    self.first_ts().map(|f| f + w.dur)
                } else {
                    None
                }
            }
            WindowKind::Following => self.anchor_start(w.anchor).map(|s| s + w.dur),
        }
    }

    /// Apply an extension. Returns `true` when the run is now a complete
    /// match of a pattern that does *not* end in a star. (Trailing-star
    /// runs stay open and emit snapshots per append.)
    pub fn apply(&mut self, pat: &SeqPattern, ext: Ext, t: &Tuple) -> bool {
        match ext {
            Ext::Append { idx } => {
                debug_assert_eq!(idx, self.next_elem());
                debug_assert!(pat.elements[idx].star);
                self.group.push(t.clone());
                false
            }
            Ext::Advance { idx } => {
                if !self.group.is_empty() {
                    debug_assert_eq!(idx, self.bindings.len() + 1);
                    self.bindings
                        .push(Binding::Star(std::mem::take(&mut self.group)));
                }
                debug_assert_eq!(idx, self.bindings.len());
                if pat.elements[idx].star {
                    self.group.push(t.clone());
                    false
                } else {
                    self.bindings.push(Binding::Single(t.clone()));
                    self.bindings.len() == pat.len()
                }
            }
        }
    }

    /// The complete match (for runs whose every element is bound).
    pub fn into_match(self) -> SeqMatch {
        debug_assert!(self.group.is_empty());
        SeqMatch {
            bindings: self.bindings,
        }
    }

    /// Snapshot match for a trailing-star run: completed bindings plus
    /// the current open group (online emission, §3.1.2).
    pub fn snapshot_match(&self) -> SeqMatch {
        debug_assert!(!self.group.is_empty());
        let mut bindings = self.bindings.clone();
        bindings.push(Binding::Star(self.group.clone()));
        SeqMatch { bindings }
    }

    /// Bindings of the partial for exception reporting (open group closed
    /// into a star binding).
    pub fn partial_bindings(&self) -> Vec<Binding> {
        let mut b = self.bindings.clone();
        if !self.group.is_empty() {
            b.push(Binding::Star(self.group.clone()));
        }
        b
    }
}

/// Does `t` (arriving on `port`) satisfy element `e`'s port + predicate?
pub fn matches_elem(e: &Element, t: &Tuple, port: usize) -> Result<bool> {
    if e.port != port {
        return Ok(false);
    }
    match &e.predicate {
        None => Ok(true),
        Some(p) => p.eval_bool(&[t]),
    }
}

/// Gap check: `t` within `limit` after `prev` (vacuously true without a
/// limit or predecessor).
pub fn gap_ok(limit: Option<eslev_dsms::time::Duration>, prev: Option<&Tuple>, t: &Tuple) -> bool {
    match (limit, prev) {
        (Some(d), Some(p)) => t.ts().since(p.ts()).is_some_and(|g| g <= d),
        _ => true,
    }
}

/// Final safety check: a complete set of bindings satisfies the window.
/// Modes check incrementally; this is the belt-and-braces invariant used
/// in debug assertions and property tests.
pub fn window_satisfied(window: &Option<EventWindow>, bindings: &[Binding]) -> bool {
    let Some(w) = window else { return true };
    if w.anchor >= bindings.len() {
        return false;
    }
    match w.kind {
        WindowKind::Preceding => {
            let anchor_end = bindings[w.anchor].last().ts();
            bindings[..=w.anchor].iter().all(|b| {
                b.tuples()
                    .iter()
                    .all(|t| anchor_end.since(t.ts()).is_some_and(|g| g <= w.dur))
            })
        }
        WindowKind::Following => {
            let anchor_start = bindings[w.anchor].first().ts();
            bindings[w.anchor..].iter().all(|b| {
                b.tuples()
                    .iter()
                    .all(|t| t.ts().since(anchor_start).is_some_and(|g| g <= w.dur))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::PairingMode;
    use crate::pattern::Element;
    use eslev_dsms::time::Duration;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    fn seq2() -> SeqPattern {
        SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            None,
            PairingMode::Unrestricted,
        )
        .unwrap()
    }

    fn star_then_case() -> SeqPattern {
        // SEQ(R1*, R2) with star_gap 1 s and max_gap 5 s (Example 7).
        SeqPattern::new(
            vec![
                Element::star(0).with_star_gap(Duration::from_secs(1)),
                Element::new(1).with_max_gap(Duration::from_secs(5)),
            ],
            None,
            PairingMode::Chronicle,
        )
        .unwrap()
    }

    #[test]
    fn plain_advance_and_complete() {
        let pat = seq2();
        let mut run = Run::new();
        let a = t(1, 0);
        assert_eq!(
            run.classify(&pat, &a, 0).unwrap(),
            Some(Ext::Advance { idx: 0 })
        );
        assert!(!run.apply(&pat, Ext::Advance { idx: 0 }, &a));
        let b = t(2, 1);
        // Wrong port does not extend.
        assert_eq!(run.classify(&pat, &b, 0).unwrap(), None);
        assert_eq!(
            run.classify(&pat, &b, 1).unwrap(),
            Some(Ext::Advance { idx: 1 })
        );
        assert!(run.apply(&pat, Ext::Advance { idx: 1 }, &b));
        let m = run.into_match();
        assert_eq!(m.ts(), Timestamp::from_secs(2));
    }

    #[test]
    fn strict_progression_rejects_simultaneous_and_earlier() {
        let pat = seq2();
        let mut run = Run::new();
        let a = t(5, 10);
        run.apply(&pat, Ext::Advance { idx: 0 }, &a);
        // Same (ts, seq-earlier) tuple on port 1 is not "after".
        let earlier = t(5, 3);
        assert_eq!(run.classify(&pat, &earlier, 1).unwrap(), None);
        // Same ts but later seq IS after (tie broken by arrival).
        let later = t(5, 11);
        assert!(run.classify(&pat, &later, 1).unwrap().is_some());
    }

    #[test]
    fn star_group_absorbs_until_gap_breaks() {
        let pat = star_then_case();
        let mut run = Run::new();
        let millis = |ms: u64, seq: u64| Tuple::new(vec![], Timestamp::from_millis(ms), seq);
        let p1 = millis(0, 0);
        let p2 = millis(800, 1);
        let p3 = millis(3000, 2); // gap 2.2 s > star_gap 1 s
        assert_eq!(
            run.classify(&pat, &p1, 0).unwrap(),
            Some(Ext::Append { idx: 0 })
        );
        run.apply(&pat, Ext::Append { idx: 0 }, &p1);
        assert_eq!(
            run.classify(&pat, &p2, 0).unwrap(),
            Some(Ext::Append { idx: 0 })
        );
        run.apply(&pat, Ext::Append { idx: 0 }, &p2);
        assert_eq!(run.classify(&pat, &p3, 0).unwrap(), None, "gap broken");
        // Case within 5 s of p2 closes the group.
        let case = millis(2000, 3);
        assert_eq!(
            run.classify(&pat, &case, 1).unwrap(),
            Some(Ext::Advance { idx: 1 })
        );
        assert!(run.apply(&pat, Ext::Advance { idx: 1 }, &case));
        let m = run.into_match();
        assert_eq!(m.binding(0).count(), 2);
        assert_eq!(m.binding(1).count(), 1);
    }

    #[test]
    fn star_requires_at_least_one() {
        let pat = star_then_case();
        let run = Run::new();
        // A case with no products cannot advance (star is one-or-more).
        let case = t(1, 0);
        assert_eq!(run.classify(&pat, &case, 1).unwrap(), None);
    }

    #[test]
    fn max_gap_from_prev_enforced_on_close() {
        let pat = star_then_case();
        let mut run = Run::new();
        let p = t(0, 0);
        run.apply(&pat, Ext::Append { idx: 0 }, &p);
        let late_case = t(10, 1); // 10 s > 5 s
        assert_eq!(run.classify(&pat, &late_case, 1).unwrap(), None);
    }

    #[test]
    fn preceding_window_checked_at_anchor() {
        // SEQ(A, B) OVER [10 s PRECEDING B].
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            Some(EventWindow::preceding(Duration::from_secs(10), 1)),
            PairingMode::Unrestricted,
        )
        .unwrap();
        let mut run = Run::new();
        run.apply(&pat, Ext::Advance { idx: 0 }, &t(0, 0));
        assert_eq!(run.deadline(&pat), Some(Timestamp::from_secs(10)));
        assert!(run.classify(&pat, &t(15, 1), 1).unwrap().is_none());
        assert!(run.classify(&pat, &t(9, 1), 1).unwrap().is_some());
    }

    #[test]
    fn following_window_checked_after_anchor() {
        // SEQ(A, B, C) OVER [10 s FOLLOWING A].
        let pat = SeqPattern::new(
            vec![Element::new(0), Element::new(1), Element::new(2)],
            Some(EventWindow::following(Duration::from_secs(10), 0)),
            PairingMode::Consecutive,
        )
        .unwrap();
        let mut run = Run::new();
        run.apply(&pat, Ext::Advance { idx: 0 }, &t(100, 0));
        assert_eq!(run.deadline(&pat), Some(Timestamp::from_secs(110)));
        assert!(run.classify(&pat, &t(105, 1), 1).unwrap().is_some());
        run.apply(&pat, Ext::Advance { idx: 1 }, &t(105, 1));
        assert!(run.classify(&pat, &t(111, 2), 2).unwrap().is_none());
        assert!(run.classify(&pat, &t(110, 2), 2).unwrap().is_some());
    }

    #[test]
    fn window_satisfied_final_check() {
        let w = Some(EventWindow::preceding(Duration::from_secs(5), 1));
        let good = vec![Binding::Single(t(3, 0)), Binding::Single(t(6, 1))];
        let bad = vec![Binding::Single(t(0, 0)), Binding::Single(t(6, 1))];
        assert!(window_satisfied(&w, &good));
        assert!(!window_satisfied(&w, &bad));
        assert!(window_satisfied(&None, &bad));
    }

    #[test]
    fn completion_level_counts_open_group() {
        let pat = star_then_case();
        let mut run = Run::new();
        assert_eq!(run.completion_level(), 0);
        run.apply(&pat, Ext::Append { idx: 0 }, &t(0, 0));
        assert_eq!(run.completion_level(), 1);
    }

    #[test]
    fn snapshot_and_partial_bindings() {
        let pat = star_then_case();
        let mut run = Run::new();
        run.apply(&pat, Ext::Append { idx: 0 }, &t(0, 0));
        run.apply(&pat, Ext::Append { idx: 0 }, &t(1, 1));
        let snap = run.snapshot_match();
        assert_eq!(snap.binding(0).count(), 2);
        let partial = run.partial_bindings();
        assert_eq!(partial.len(), 1);
        assert_eq!(run.total_tuples(), 2);
    }

    #[test]
    fn predicate_gates_matching() {
        let pat = SeqPattern::new(
            vec![
                Element::new(0)
                    .with_predicate(Expr::eq(eslev_dsms::expr::Expr::col(0), Expr::lit(7i64))),
                Element::new(1),
            ],
            None,
            PairingMode::Unrestricted,
        )
        .unwrap();
        use eslev_dsms::expr::Expr;
        let run = Run::new();
        let bad = Tuple::new(vec![Value::Int(3)], Timestamp::from_secs(1), 0);
        let good = Tuple::new(vec![Value::Int(7)], Timestamp::from_secs(1), 0);
        assert_eq!(run.classify(&pat, &bad, 0).unwrap(), None);
        assert!(run.classify(&pat, &good, 0).unwrap().is_some());
    }
}
