//! Tuple Pairing Modes (§3.1.1).
//!
//! The paper's four event-consumption policies, the first three modeled
//! on Snoop's *event consumption modes*. They control (a) which tuple
//! combinations generate events and (b) how much tuple history must be
//! retained — the central systems claim of the paper is that RECENT /
//! CHRONICLE / CONSECUTIVE bound history aggressively where UNRESTRICTED
//! cannot.

use std::fmt;

/// How candidate tuples pair up to form sequence events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairingMode {
    /// Every time-ordered combination is an event (the default when the
    /// MODE clause is omitted). History: full window contents.
    Unrestricted,
    /// An incoming tuple matches the most recent qualifying tuple of each
    /// other stream. History: one chain per element position.
    Recent,
    /// An incoming tuple matches the *earliest* qualifying tuples, and a
    /// tuple participates in at most one event (consumed on match).
    /// History: FIFO of unconsumed tuples.
    Chronicle,
    /// Tuples must be adjacent on the *joint tuple history* (the
    /// timestamp-ordered union of all participating streams). History:
    /// the single current run.
    Consecutive,
}

impl PairingMode {
    /// All modes, in the paper's presentation order (handy for sweeps).
    pub const ALL: [PairingMode; 4] = [
        PairingMode::Unrestricted,
        PairingMode::Recent,
        PairingMode::Chronicle,
        PairingMode::Consecutive,
    ];

    /// The keyword used in ESL-EV query text.
    pub fn keyword(self) -> &'static str {
        match self {
            PairingMode::Unrestricted => "UNRESTRICTED",
            PairingMode::Recent => "RECENT",
            PairingMode::Chronicle => "CHRONICLE",
            PairingMode::Consecutive => "CONSECUTIVE",
        }
    }

    /// Parse the MODE keyword (case-insensitive).
    pub fn from_keyword(s: &str) -> Option<PairingMode> {
        match s.to_ascii_uppercase().as_str() {
            "UNRESTRICTED" => Some(PairingMode::Unrestricted),
            "RECENT" => Some(PairingMode::Recent),
            "CHRONICLE" => Some(PairingMode::Chronicle),
            "CONSECUTIVE" => Some(PairingMode::Consecutive),
            _ => None,
        }
    }
}

impl fmt::Display for PairingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for m in PairingMode::ALL {
            assert_eq!(PairingMode::from_keyword(m.keyword()), Some(m));
            assert_eq!(
                PairingMode::from_keyword(&m.keyword().to_lowercase()),
                Some(m)
            );
        }
        assert_eq!(PairingMode::from_keyword("bogus"), None);
    }

    #[test]
    fn display_matches_keyword() {
        assert_eq!(PairingMode::Chronicle.to_string(), "CHRONICLE");
    }
}
