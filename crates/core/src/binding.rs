//! Match bindings and detector outputs.
//!
//! A successful `SEQ` evaluation binds each pattern element to either one
//! tuple or (for star elements) a non-empty group of tuples. The star
//! aggregates of §3.1.2 — `FIRST`, `LAST`, `COUNT` — are accessors on the
//! binding.

use eslev_dsms::time::Timestamp;
use eslev_dsms::tuple::Tuple;
use std::fmt;

/// What one pattern element matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// A plain element's single tuple.
    Single(Tuple),
    /// A star element's group, in arrival order (never empty).
    Star(Vec<Tuple>),
}

impl Binding {
    /// First tuple of the binding (the `FIRST(E*)` aggregate; identity for
    /// single bindings).
    pub fn first(&self) -> &Tuple {
        match self {
            Binding::Single(t) => t,
            Binding::Star(g) => g.first().expect("star groups are non-empty"),
        }
    }

    /// Last tuple of the binding (the `LAST(E*)` aggregate).
    pub fn last(&self) -> &Tuple {
        match self {
            Binding::Single(t) => t,
            Binding::Star(g) => g.last().expect("star groups are non-empty"),
        }
    }

    /// Number of tuples (the `COUNT(E*)` aggregate; 1 for singles).
    pub fn count(&self) -> usize {
        match self {
            Binding::Single(_) => 1,
            Binding::Star(g) => g.len(),
        }
    }

    /// All tuples of the binding, in order.
    pub fn tuples(&self) -> &[Tuple] {
        match self {
            Binding::Single(t) => std::slice::from_ref(t),
            Binding::Star(g) => g,
        }
    }
}

/// A complete sequence match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqMatch {
    /// One binding per pattern element, in pattern order.
    pub bindings: Vec<Binding>,
}

impl SeqMatch {
    /// Binding of element `i`.
    pub fn binding(&self, i: usize) -> &Binding {
        &self.bindings[i]
    }

    /// The match's event time: the last tuple's timestamp (when the
    /// pattern became fully matched).
    pub fn ts(&self) -> Timestamp {
        self.bindings
            .last()
            .expect("matches are non-empty")
            .last()
            .ts()
    }

    /// Timestamp of the first tuple in the match.
    pub fn start_ts(&self) -> Timestamp {
        self.bindings
            .first()
            .expect("matches are non-empty")
            .first()
            .ts()
    }

    /// End-to-end span of the match.
    pub fn span(&self) -> eslev_dsms::time::Duration {
        self.ts() - self.start_ts()
    }

    /// Evaluation row with one *representative* tuple per element — the
    /// last tuple of star groups (the convention residual predicates and
    /// SELECT lists use; `FIRST`/`COUNT` have dedicated accessors).
    pub fn row_last(&self) -> Vec<&Tuple> {
        self.bindings.iter().map(|b| b.last()).collect()
    }

    /// Total number of tuples across all bindings.
    pub fn total_tuples(&self) -> usize {
        self.bindings.iter().map(|b| b.count()).sum()
    }
}

impl fmt::Display for SeqMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SeqMatch[")?;
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match b {
                Binding::Single(t) => write!(f, "{}", t.ts())?,
                Binding::Star(g) => {
                    write!(f, "{}×{}..{}", g.len(), g[0].ts(), g[g.len() - 1].ts())?
                }
            }
        }
        write!(f, "]")
    }
}

/// Why an `EXCEPTION_SEQ` violation fired (§3.1.3's three scenarios).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExceptionCause {
    /// An arriving tuple made the current partial sequence unextendable.
    WrongExtension {
        /// The offending tuple.
        tuple: Tuple,
    },
    /// An arriving tuple could not start a new sequence (completion
    /// level 0).
    WrongStart {
        /// The offending tuple.
        tuple: Tuple,
    },
    /// The operator's sliding window expired on a partial sequence.
    WindowExpiry,
}

/// An exception event: a sequence stalled at `level − 1` completed
/// elements, i.e. the *Sequence Completion Level* is `level − 1` and the
/// exception occurs "at level `k + 1`" in the paper's wording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExceptionEvent {
    /// `k + 1` where `k` is the stalled partial's completion level.
    pub level: usize,
    /// Bindings of the stalled partial sequence (length `level − 1`).
    pub partial: Vec<Binding>,
    /// Which of the three scenarios triggered it.
    pub cause: ExceptionCause,
    /// When the exception was detected.
    pub ts: Timestamp,
}

impl ExceptionEvent {
    /// The stalled partial's Sequence Completion Level (`level − 1`).
    pub fn completion_level(&self) -> usize {
        self.level - 1
    }
}

/// Everything a detector can emit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorOutput {
    /// A complete sequence match (`SEQ` fired, or an `EXCEPTION_SEQ`
    /// pattern completed normally — useful for `CLEVEL_SEQ = n` queries).
    Match(SeqMatch),
    /// A violation (`EXCEPTION_SEQ` fired).
    Exception(ExceptionEvent),
}

impl DetectorOutput {
    /// The match, if this is one.
    pub fn as_match(&self) -> Option<&SeqMatch> {
        match self {
            DetectorOutput::Match(m) => Some(m),
            DetectorOutput::Exception(_) => None,
        }
    }

    /// The exception, if this is one.
    pub fn as_exception(&self) -> Option<&ExceptionEvent> {
        match self {
            DetectorOutput::Exception(e) => Some(e),
            DetectorOutput::Match(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    fn sample() -> SeqMatch {
        SeqMatch {
            bindings: vec![
                Binding::Star(vec![t(1, 0), t(2, 1), t(3, 2)]),
                Binding::Single(t(7, 3)),
            ],
        }
    }

    #[test]
    fn star_aggregates() {
        let m = sample();
        assert_eq!(m.binding(0).first().ts(), Timestamp::from_secs(1));
        assert_eq!(m.binding(0).last().ts(), Timestamp::from_secs(3));
        assert_eq!(m.binding(0).count(), 3);
        assert_eq!(m.binding(1).count(), 1);
        assert_eq!(m.total_tuples(), 4);
    }

    #[test]
    fn match_times() {
        let m = sample();
        assert_eq!(m.ts(), Timestamp::from_secs(7));
        assert_eq!(m.start_ts(), Timestamp::from_secs(1));
        assert_eq!(m.span(), eslev_dsms::time::Duration::from_secs(6));
    }

    #[test]
    fn row_last_uses_group_tails() {
        let m = sample();
        let row = m.row_last();
        assert_eq!(row[0].ts(), Timestamp::from_secs(3));
        assert_eq!(row[1].ts(), Timestamp::from_secs(7));
    }

    #[test]
    fn exception_levels() {
        let e = ExceptionEvent {
            level: 3,
            partial: vec![Binding::Single(t(1, 0)), Binding::Single(t(2, 1))],
            cause: ExceptionCause::WindowExpiry,
            ts: Timestamp::from_secs(10),
        };
        assert_eq!(e.completion_level(), 2);
    }

    #[test]
    fn output_accessors() {
        let m = DetectorOutput::Match(sample());
        assert!(m.as_match().is_some());
        assert!(m.as_exception().is_none());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(sample().to_string(), "SeqMatch[3×1s..3s, 7s]");
    }
}
