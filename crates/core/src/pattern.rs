//! Sequence pattern definitions — the abstract syntax of the paper's
//! `SEQ(E1, E2*, ..., En) OVER [window] MODE m` operator.
//!
//! A pattern is an ordered list of [`Element`]s. Each element names the
//! input port (stream) its tuples come from, may be a *star* element
//! (Kleene repetition with longest-match semantics, §3.1.2), may carry a
//! per-tuple predicate, and may carry the two timing constraints the
//! paper's examples use:
//!
//! * `max_gap_from_prev` — bound on `this.ts − previous_binding.ts`
//!   (Example 7's `R2.tagtime − LAST(R1*).tagtime ≤ 5 SECONDS`);
//! * `star_gap` — bound between consecutive tuples *inside* a star group
//!   (Example 7's `R1.tagtime − R1.previous.tagtime ≤ 1 SECONDS`,
//!   i.e. the paper's `previous` operator).

use crate::mode::PairingMode;
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::expr::Expr;
use eslev_dsms::time::Duration;

/// One position of a sequence pattern.
#[derive(Debug, Clone)]
pub struct Element {
    /// Which detector input port this element's tuples arrive on. Several
    /// elements may share a port (self-aliased streams, footnote 1).
    pub port: usize,
    /// Star (repeating, one-or-more) element.
    pub star: bool,
    /// Predicate a tuple must satisfy to bind here (evaluated with the
    /// candidate tuple as relation 0).
    pub predicate: Option<Expr>,
    /// Max allowed gap between the previous element's (last) tuple and
    /// this element's (first) tuple.
    pub max_gap_from_prev: Option<Duration>,
    /// For star elements: max gap between consecutive tuples of the group.
    pub star_gap: Option<Duration>,
}

impl Element {
    /// Plain (non-star, unconstrained) element reading from `port`.
    pub fn new(port: usize) -> Element {
        Element {
            port,
            star: false,
            predicate: None,
            max_gap_from_prev: None,
            star_gap: None,
        }
    }

    /// Star element reading from `port`.
    pub fn star(port: usize) -> Element {
        Element {
            star: true,
            ..Element::new(port)
        }
    }

    /// Attach a tuple predicate.
    pub fn with_predicate(mut self, p: Expr) -> Element {
        self.predicate = Some(p);
        self
    }

    /// Bound the gap from the previous element.
    pub fn with_max_gap(mut self, d: Duration) -> Element {
        self.max_gap_from_prev = Some(d);
        self
    }

    /// Bound the intra-group gap (star elements only; the paper's
    /// `previous` operator).
    pub fn with_star_gap(mut self, d: Duration) -> Element {
        self.star_gap = Some(d);
        self
    }
}

/// Which way an event-operator window extends from its anchor element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// `OVER [d PRECEDING E_i]` — every element up to and including the
    /// anchor must lie within `d` before the anchor's tuple.
    Preceding,
    /// `OVER [d FOLLOWING E_i]` — every element from the anchor on must
    /// lie within `d` after the anchor's tuple.
    Following,
}

/// A sliding window applied to the event operator itself (§3.1.1), with
/// the FOLLOWING extension of §3.1.3 that lets it anchor at any element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventWindow {
    /// Window length.
    pub dur: Duration,
    /// Index of the anchor element.
    pub anchor: usize,
    /// Direction.
    pub kind: WindowKind,
}

impl EventWindow {
    /// `d PRECEDING element i`.
    pub fn preceding(dur: Duration, anchor: usize) -> EventWindow {
        EventWindow {
            dur,
            anchor,
            kind: WindowKind::Preceding,
        }
    }

    /// `d FOLLOWING element i`.
    pub fn following(dur: Duration, anchor: usize) -> EventWindow {
        EventWindow {
            dur,
            anchor,
            kind: WindowKind::Following,
        }
    }
}

/// A full `SEQ` pattern: elements + optional window + pairing mode.
#[derive(Debug, Clone)]
pub struct SeqPattern {
    /// Ordered pattern elements.
    pub elements: Vec<Element>,
    /// Optional window over the whole operator.
    pub window: Option<EventWindow>,
    /// Tuple pairing mode (§3.1.1). Default: UNRESTRICTED.
    pub mode: PairingMode,
}

impl SeqPattern {
    /// Build and validate a pattern.
    ///
    /// Rules enforced:
    /// * at least two elements (a 1-element "sequence" is just a filter);
    /// * a window anchor must index an existing element;
    /// * `star_gap` only on star elements;
    /// * adjacent elements may repeat a port, but two *consecutive star*
    ///   elements on the same port are ambiguous (any split of one run
    ///   matches both) and are rejected.
    pub fn new(
        elements: Vec<Element>,
        window: Option<EventWindow>,
        mode: PairingMode,
    ) -> Result<SeqPattern> {
        if elements.len() < 2 {
            return Err(DsmsError::plan("SEQ needs at least two elements"));
        }
        if let Some(w) = &window {
            if w.anchor >= elements.len() {
                return Err(DsmsError::plan(format!(
                    "window anchor {} out of range (pattern has {} elements)",
                    w.anchor,
                    elements.len()
                )));
            }
        }
        for (i, e) in elements.iter().enumerate() {
            if e.star_gap.is_some() && !e.star {
                return Err(DsmsError::plan(format!(
                    "element {i}: star_gap on a non-star element"
                )));
            }
            if i > 0 {
                let prev = &elements[i - 1];
                if e.star && prev.star && e.port == prev.port {
                    return Err(DsmsError::plan(format!(
                        "elements {} and {i}: consecutive star elements on the same stream are ambiguous",
                        i - 1
                    )));
                }
            }
        }
        Ok(SeqPattern {
            elements,
            window,
            mode,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Never true (patterns have ≥ 2 elements); provided for idiom.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Number of input ports the pattern reads (max port + 1).
    pub fn num_ports(&self) -> usize {
        self.elements.iter().map(|e| e.port).max().unwrap_or(0) + 1
    }

    /// Indexes of elements a tuple arriving on `port` could bind to.
    pub fn candidates(&self, port: usize) -> impl Iterator<Item = usize> + '_ {
        self.elements
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.port == port)
            .map(|(i, _)| i)
    }

    /// Whether the final element is a star (online per-arrival emission).
    pub fn trailing_star(&self) -> bool {
        self.elements.last().is_some_and(|e| e.star)
    }

    /// Number of star elements (multi-return rows allowed only when 1,
    /// footnote 4 of the paper).
    pub fn star_count(&self) -> usize {
        self.elements.iter().filter(|e| e.star).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_basic_pattern() {
        // SEQ(C1, C2, C3, C4) — Example 6.
        let p = SeqPattern::new(
            (0..4).map(Element::new).collect(),
            None,
            PairingMode::Unrestricted,
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.num_ports(), 4);
        assert!(!p.trailing_star());
        assert_eq!(p.star_count(), 0);
    }

    #[test]
    fn containment_pattern_shape() {
        // SEQ(R1*, R2) MODE CHRONICLE with both gaps — Example 7.
        let p = SeqPattern::new(
            vec![
                Element::star(0).with_star_gap(Duration::from_secs(1)),
                Element::new(1).with_max_gap(Duration::from_secs(5)),
            ],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        assert_eq!(p.star_count(), 1);
        assert!(!p.trailing_star());
        assert_eq!(p.candidates(0).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn rejects_single_element() {
        assert!(SeqPattern::new(vec![Element::new(0)], None, PairingMode::Recent).is_err());
    }

    #[test]
    fn rejects_bad_anchor() {
        let w = EventWindow::preceding(Duration::from_secs(1), 5);
        assert!(SeqPattern::new(
            vec![Element::new(0), Element::new(1)],
            Some(w),
            PairingMode::Recent
        )
        .is_err());
    }

    #[test]
    fn rejects_star_gap_on_plain_element() {
        let mut e = Element::new(0);
        e.star_gap = Some(Duration::from_secs(1));
        assert!(SeqPattern::new(vec![e, Element::new(1)], None, PairingMode::Recent).is_err());
    }

    #[test]
    fn rejects_adjacent_same_port_stars() {
        assert!(SeqPattern::new(
            vec![Element::star(0), Element::star(0)],
            None,
            PairingMode::Unrestricted
        )
        .is_err());
        // Different ports are fine: SEQ(A*, B, C*, D) from §3.1.2.
        assert!(SeqPattern::new(
            vec![
                Element::star(0),
                Element::new(1),
                Element::star(2),
                Element::new(3)
            ],
            None,
            PairingMode::Unrestricted
        )
        .is_ok());
    }

    #[test]
    fn shared_ports_are_candidates() {
        // SEQ(A, A) over one stream (self-alias, footnote 1).
        let p = SeqPattern::new(
            vec![Element::new(0), Element::new(0)],
            None,
            PairingMode::Consecutive,
        )
        .unwrap();
        assert_eq!(p.candidates(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(p.num_ports(), 1);
    }
}
