//! Checkpoint serialization for the temporal-operator layer.
//!
//! [`Binding`]s and [`Run`]s are the state atoms every pairing-mode
//! engine is built from; this module gives them a canonical
//! [`StateNode`] encoding so the five engines (and the [`Detector`])
//! can round-trip through an engine checkpoint. A single binding is
//! saved as a bare tuple node, a star group as a list of tuple nodes —
//! the two cannot collide because a tuple node is never a list.
//!
//! [`Detector`]: crate::detector::Detector

use crate::binding::Binding;
use crate::runs::Run;
use eslev_dsms::ckpt::StateNode;
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::tuple::Tuple;

/// Serialize one binding (single tuple or star group).
pub fn save_binding(b: &Binding) -> StateNode {
    match b {
        Binding::Single(t) => StateNode::Tuple(t.clone()),
        Binding::Star(g) => {
            StateNode::List(g.iter().map(|t| StateNode::Tuple(t.clone())).collect())
        }
    }
}

/// Decode a binding saved by [`save_binding`].
pub fn restore_binding(node: &StateNode) -> Result<Binding> {
    match node {
        StateNode::Tuple(t) => Ok(Binding::Single(t.clone())),
        StateNode::List(items) => {
            if items.is_empty() {
                return Err(DsmsError::ckpt("star groups are non-empty"));
            }
            let g = items
                .iter()
                .map(|n| n.as_tuple().cloned())
                .collect::<Result<Vec<Tuple>>>()?;
            Ok(Binding::Star(g))
        }
        other => Err(DsmsError::ckpt(format!(
            "expected a binding node, found {}",
            other.kind()
        ))),
    }
}

/// Serialize a partial-match run (bindings + open star group).
pub fn save_run(r: &Run) -> StateNode {
    StateNode::List(vec![
        StateNode::List(r.bindings.iter().map(save_binding).collect()),
        StateNode::List(
            r.group
                .iter()
                .map(|t| StateNode::Tuple(t.clone()))
                .collect(),
        ),
    ])
}

/// Decode a run saved by [`save_run`].
pub fn restore_run(node: &StateNode) -> Result<Run> {
    let bindings = node
        .item(0)?
        .as_list()?
        .iter()
        .map(restore_binding)
        .collect::<Result<Vec<Binding>>>()?;
    let group = node
        .item(1)?
        .as_list()?
        .iter()
        .map(|n| n.as_tuple().cloned())
        .collect::<Result<Vec<Tuple>>>()?;
    Ok(Run { bindings, group })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslev_dsms::time::Timestamp;
    use eslev_dsms::value::Value;

    fn t(secs: u64, seq: u64) -> Tuple {
        Tuple::new(
            vec![Value::Int(secs as i64)],
            Timestamp::from_secs(secs),
            seq,
        )
    }

    #[test]
    fn binding_round_trip() {
        for b in [
            Binding::Single(t(1, 0)),
            Binding::Star(vec![t(1, 0), t(2, 1)]),
        ] {
            assert_eq!(restore_binding(&save_binding(&b)).unwrap(), b);
        }
    }

    #[test]
    fn empty_star_group_rejected() {
        assert!(restore_binding(&StateNode::List(vec![])).is_err());
        assert!(restore_binding(&StateNode::U64(3)).is_err());
    }

    #[test]
    fn run_round_trip() {
        let run = Run {
            bindings: vec![Binding::Single(t(1, 0)), Binding::Star(vec![t(2, 1)])],
            group: vec![t(3, 2), t(4, 3)],
        };
        let restored = restore_run(&save_run(&run)).unwrap();
        assert_eq!(restored.bindings, run.bindings);
        assert_eq!(restored.group, run.group);
    }
}
