//! Recursive-descent parser for ESL-EV.
//!
//! Grammar (informal):
//!
//! ```text
//! script     := statement (';' statement)* [';']
//! statement  := create_stream | create_table | insert | select
//! create_*   := CREATE (STREAM|TABLE) name '(' col type (',' col type)* ')'
//! insert     := INSERT INTO name select
//! select     := SELECT items FROM from_items [WHERE expr] [GROUP BY exprs]
//! from_item  := TABLE '(' name OVER window ')' [AS alias]
//!             | name [AS alias] [OVER window]
//! window     := '[' dur dir anchor ']' | '(' [RANGE] dur dir anchor ')'
//! dir        := PRECEDING [AND FOLLOWING] | FOLLOWING
//! anchor     := ident | CURRENT
//! dur        := INT unit        (unit := SECONDS | MINUTES | ...)
//! expr       := or-precedence expression with NOT/comparison/LIKE/IS NULL,
//!               EXISTS '(' select ')', SEQ-family terms, star aggregates,
//!               `alias.previous.col`, function calls, literals
//! ```

use crate::ast::*;
use crate::token::{lex, Token, TokenKind};
use eslev_core::mode::PairingMode;
use eslev_dsms::engine::Consistency;
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::time::Duration;
use eslev_dsms::value::{Value, ValueType};

/// Parse a script of one or more `;`-separated statements.
pub fn parse_script(input: &str) -> Result<Vec<Statement>> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        while p.eat(&TokenKind::Semi) {}
        if p.at_eof() {
            break;
        }
        stmts.push(p.statement()?);
        if !p.eat(&TokenKind::Semi) && !p.at_eof() {
            return Err(p.unexpected("`;` or end of input"));
        }
    }
    Ok(stmts)
}

/// Parse exactly one statement.
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut stmts = parse_script(input)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        n => Err(DsmsError::parse(format!("expected one statement, got {n}"))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&kind.to_string()))
        }
    }

    fn unexpected(&self, wanted: &str) -> DsmsError {
        DsmsError::parse(format!(
            "expected {wanted}, found {} at offset {}",
            self.peek(),
            self.tokens[self.pos].offset
        ))
    }

    /// Is the current token the given (case-folded) keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{}`", kw.to_uppercase())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    // ------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("create") {
            return self.create();
        }
        if self.at_kw("insert") {
            return self.insert();
        }
        if self.at_kw("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.at_kw("update") {
            return self.update();
        }
        if self.at_kw("delete") {
            return self.delete();
        }
        Err(self.unexpected("CREATE, INSERT, SELECT, UPDATE or DELETE"))
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        let is_stream = if self.eat_kw("stream") {
            true
        } else if self.eat_kw("table") {
            false
        } else {
            return Err(self.unexpected("STREAM or TABLE"));
        };
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.type_name()?;
            columns.push((col, ty));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(if is_stream {
            Statement::CreateStream { name, columns }
        } else {
            Statement::CreateTable { name, columns }
        })
    }

    fn type_name(&mut self) -> Result<ValueType> {
        let t = self.ident()?;
        let ty = match t.as_str() {
            "int" | "integer" | "bigint" | "smallint" => ValueType::Int,
            "float" | "double" | "real" | "numeric" | "decimal" => ValueType::Float,
            "varchar" | "char" | "text" | "string" => ValueType::Str,
            "boolean" | "bool" => ValueType::Bool,
            "timestamp" | "time" | "datetime" => ValueType::Ts,
            other => return Err(DsmsError::parse(format!("unknown type `{other}`"))),
        };
        // Optional length/precision suffix, e.g. VARCHAR(32).
        if self.eat(&TokenKind::LParen) {
            while !self.eat(&TokenKind::RParen) {
                self.bump();
            }
        }
        Ok(ty)
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let target = self.ident()?;
        let select = self.select()?;
        Ok(Statement::InsertInto { target, select })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let expr = self.expr()?;
            sets.push((col, expr));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        if self.eat(&TokenKind::Star) {
            items.push(SelectItem::Wildcard);
        } else {
            loop {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            from.push(self.from_item()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                TokenKind::Int(i) if i >= 0 => Some(i as usize),
                other => {
                    return Err(DsmsError::parse(format!(
                        "LIMIT expects a non-negative integer, found {other}"
                    )))
                }
            }
        } else {
            None
        };
        let consistency = if self.eat_kw("consistency") {
            if self.eat_kw("fast") {
                Some(Consistency::Fast)
            } else if self.eat_kw("consistent") {
                Some(Consistency::Consistent)
            } else {
                return Err(DsmsError::parse("CONSISTENCY expects FAST or CONSISTENT"));
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
            consistency,
        })
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM item; not a conversion
    fn from_item(&mut self) -> Result<FromItem> {
        // TABLE( stream OVER (...) ) AS alias — Example 1's windowed
        // table function.
        if self.at_kw("table") && self.peek2() == &TokenKind::LParen {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let name = self.ident()?;
            self.expect_kw("over")?;
            let window = self.window_spec()?;
            self.expect(&TokenKind::RParen)?;
            let alias = if self.eat_kw("as") {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(FromItem {
                name,
                alias,
                window: Some(window),
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            None
        };
        let window = if self.eat_kw("over") {
            Some(self.window_spec()?)
        } else {
            None
        };
        Ok(FromItem {
            name,
            alias,
            window,
        })
    }

    /// `[dur dir anchor]` or `(RANGE dur dir anchor)`.
    fn window_spec(&mut self) -> Result<AstWindow> {
        let bracketed = if self.eat(&TokenKind::LBracket) {
            true
        } else if self.eat(&TokenKind::LParen) {
            false
        } else {
            return Err(self.unexpected("`[` or `(` window spec"));
        };
        let length = if self.eat_kw("rows") {
            let n = match self.bump() {
                TokenKind::Int(i) if i >= 0 => i as usize,
                other => {
                    return Err(DsmsError::parse(format!(
                        "ROWS window expects a non-negative count, found {other}"
                    )))
                }
            };
            WindowLength::Rows(n)
        } else {
            self.eat_kw("range"); // optional RANGE keyword
            WindowLength::Time(self.duration()?)
        };
        let kind = if self.eat_kw("preceding") {
            if self.eat_kw("and") {
                self.expect_kw("following")?;
                AstWindowKind::PrecedingAndFollowing
            } else {
                AstWindowKind::Preceding
            }
        } else if self.eat_kw("following") {
            AstWindowKind::Following
        } else {
            return Err(self.unexpected("PRECEDING or FOLLOWING"));
        };
        let anchor = if self.eat_kw("current") {
            None
        } else {
            Some(self.ident()?)
        };
        self.expect(if bracketed {
            &TokenKind::RBracket
        } else {
            &TokenKind::RParen
        })?;
        Ok(AstWindow {
            length,
            kind,
            anchor,
        })
    }

    fn duration(&mut self) -> Result<Duration> {
        let n = match self.bump() {
            TokenKind::Int(i) if i >= 0 => i as u64,
            other => {
                return Err(DsmsError::parse(format!(
                    "expected a non-negative duration count, found {other}"
                )))
            }
        };
        let unit = self.ident()?;
        duration_from_unit(n, &unit)
    }

    // ------------------------------------------------------ expressions

    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            e = AstExpr::Bin(AstBinOp::Or, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            e = AstExpr::Bin(AstBinOp::And, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.at_kw("not") && !matches!(self.peek2(), TokenKind::Ident(s) if s == "exists") {
            self.bump();
            let inner = self.not_expr()?;
            return Ok(AstExpr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<AstExpr> {
        // NOT EXISTS / EXISTS as a comparison-level primary.
        if self.at_kw("not") {
            if let TokenKind::Ident(s) = self.peek2() {
                if s == "exists" {
                    self.bump();
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let sub = self.select()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(AstExpr::Exists {
                        negated: true,
                        subquery: Box::new(sub),
                    });
                }
            }
        }
        if self.at_kw("exists") && self.peek2() == &TokenKind::LParen {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let sub = self.select()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(AstExpr::Exists {
                negated: false,
                subquery: Box::new(sub),
            });
        }

        let lhs = self.additive()?;

        // LIKE / IS NULL postfix forms.
        if self.eat_kw("like") {
            let pat = match self.bump() {
                TokenKind::Str(s) => s,
                other => {
                    return Err(DsmsError::parse(format!(
                        "LIKE expects a string pattern, found {other}"
                    )))
                }
            };
            return Ok(AstExpr::Like(Box::new(lhs), pat));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }

        let op = match self.peek() {
            TokenKind::Eq => AstBinOp::Eq,
            TokenKind::Ne => AstBinOp::Ne,
            TokenKind::Lt => AstBinOp::Lt,
            TokenKind::Le => AstBinOp::Le,
            TokenKind::Gt => AstBinOp::Gt,
            TokenKind::Ge => AstBinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(AstExpr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => AstBinOp::Add,
                TokenKind::Minus => AstBinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            e = AstExpr::Bin(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut e = self.primary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => AstBinOp::Mul,
                TokenKind::Slash => AstBinOp::Div,
                TokenKind::Percent => AstBinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.primary()?;
            e = AstExpr::Bin(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                // `5 SECONDS` → duration literal.
                if let TokenKind::Ident(u) = self.peek() {
                    if is_time_unit(u) {
                        let unit = self.ident()?;
                        return Ok(AstExpr::Dur(duration_from_unit(i.max(0) as u64, &unit)?));
                    }
                }
                Ok(AstExpr::Lit(Value::Int(i)))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(AstExpr::Lit(Value::Float(x)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(AstExpr::Lit(Value::str(s)))
            }
            TokenKind::Minus => {
                self.bump();
                let inner = self.primary()?;
                Ok(AstExpr::Bin(
                    AstBinOp::Sub,
                    Box::new(AstExpr::Lit(Value::Int(0))),
                    Box::new(inner),
                ))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => self.ident_led(name),
            other => Err(DsmsError::parse(format!(
                "expected an expression, found {other}"
            ))),
        }
    }

    /// Expressions led by an identifier: literals (`true`), SEQ family,
    /// star aggregates, calls, and (qualified / previous) columns.
    fn ident_led(&mut self, name: String) -> Result<AstExpr> {
        match name.as_str() {
            "true" => {
                self.bump();
                return Ok(AstExpr::Lit(Value::Bool(true)));
            }
            "false" => {
                self.bump();
                return Ok(AstExpr::Lit(Value::Bool(false)));
            }
            "null" => {
                self.bump();
                return Ok(AstExpr::Lit(Value::Null));
            }
            "seq" | "exception_seq" | "clevel_seq" if self.peek2() == &TokenKind::LParen => {
                return self.seq_term();
            }
            "first" | "last" | "count" if self.peek2() == &TokenKind::LParen => {
                // Could be a star aggregate FIRST(a*)[.col] or a plain
                // call COUNT(x); look ahead for `ident *` inside.
                if let Some(e) = self.try_star_agg()? {
                    return Ok(e);
                }
            }
            _ => {}
        }
        self.bump(); // consume the identifier
        if self.peek() == &TokenKind::LParen {
            // Function / aggregate call.
            self.bump();
            let mut args = Vec::new();
            if self.peek() != &TokenKind::RParen {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(AstExpr::Call { name, args });
        }
        if self.eat(&TokenKind::Dot) {
            let second = self.ident()?;
            if second == "previous" && self.eat(&TokenKind::Dot) {
                let col = self.ident()?;
                return Ok(AstExpr::PrevCol {
                    qualifier: name,
                    name: col,
                });
            }
            return Ok(AstExpr::Col {
                qualifier: Some(name),
                name: second,
            });
        }
        Ok(AstExpr::Col {
            qualifier: None,
            name,
        })
    }

    /// `FIRST(a*)[.col]` / `LAST(a*)[.col]` / `COUNT(a*)`; returns `None`
    /// (without consuming) when the parenthesized body is not `ident *`.
    fn try_star_agg(&mut self) -> Result<Option<AstExpr>> {
        let save = self.pos;
        let func = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let alias = match self.peek().clone() {
            TokenKind::Ident(a) => {
                self.bump();
                a
            }
            _ => {
                self.pos = save;
                return Ok(None);
            }
        };
        if !self.eat(&TokenKind::Star) {
            self.pos = save;
            return Ok(None);
        }
        self.expect(&TokenKind::RParen)?;
        let kind = match func.as_str() {
            "first" => StarAggKind::First,
            "last" => StarAggKind::Last,
            "count" => StarAggKind::Count,
            _ => unreachable!("guarded by caller"),
        };
        let column = if self.eat(&TokenKind::Dot) {
            Some(self.ident()?)
        } else {
            None
        };
        if kind == StarAggKind::Count && column.is_some() {
            return Err(DsmsError::parse("COUNT(a*) takes no column projection"));
        }
        if kind != StarAggKind::Count && column.is_none() {
            return Err(DsmsError::parse(format!(
                "{}(a*) needs a `.column` projection",
                if kind == StarAggKind::First {
                    "FIRST"
                } else {
                    "LAST"
                }
            )));
        }
        Ok(Some(AstExpr::StarAgg {
            kind,
            alias,
            column,
        }))
    }

    fn seq_term(&mut self) -> Result<AstExpr> {
        let kw = self.ident()?;
        let kind = match kw.as_str() {
            "seq" => SeqKind::Seq,
            "exception_seq" => SeqKind::ExceptionSeq,
            "clevel_seq" => SeqKind::ClevelSeq,
            _ => unreachable!("guarded by caller"),
        };
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        loop {
            let alias = self.ident()?;
            let star = self.eat(&TokenKind::Star);
            args.push(SeqArg { alias, star });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        let window = if self.eat_kw("over") {
            Some(self.window_spec()?)
        } else {
            None
        };
        let mode = if self.eat_kw("mode") {
            let m = self.ident()?;
            Some(
                PairingMode::from_keyword(&m)
                    .ok_or_else(|| DsmsError::parse(format!("unknown pairing mode `{m}`")))?,
            )
        } else {
            None
        };
        Ok(AstExpr::Seq {
            kind,
            args,
            window,
            mode,
        })
    }
}

fn is_time_unit(s: &str) -> bool {
    matches!(
        s,
        "microsecond"
            | "microseconds"
            | "millisecond"
            | "milliseconds"
            | "second"
            | "seconds"
            | "minute"
            | "minutes"
            | "hour"
            | "hours"
            | "day"
            | "days"
    )
}

fn duration_from_unit(n: u64, unit: &str) -> Result<Duration> {
    let d = match unit {
        "microsecond" | "microseconds" => Duration::from_micros(n),
        "millisecond" | "milliseconds" => Duration::from_millis(n),
        "second" | "seconds" => Duration::from_secs(n),
        "minute" | "minutes" => Duration::from_mins(n),
        "hour" | "hours" => Duration::from_hours(n),
        "day" | "days" => Duration::from_hours(n * 24),
        other => {
            return Err(DsmsError::parse(format!("unknown time unit `{other}`")));
        }
    };
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_statements() {
        let s = parse_statement(
            "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP)",
        )
        .unwrap();
        match s {
            Statement::CreateStream { name, columns } => {
                assert_eq!(name, "readings");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[2], ("read_time".into(), ValueType::Ts));
            }
            _ => panic!("wrong statement"),
        }
        let s = parse_statement(
            "CREATE TABLE object_movement (tagid VARCHAR(32), location VARCHAR, start_time TIMESTAMP)",
        )
        .unwrap();
        assert!(matches!(s, Statement::CreateTable { .. }));
    }

    /// Example 1 parses verbatim.
    #[test]
    fn example1_duplicate_filtering() {
        let sql = "
            INSERT INTO cleaned_readings
            SELECT * FROM readings AS r1
            WHERE NOT EXISTS
              (SELECT * FROM TABLE( readings OVER
                 (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
               WHERE r2.reader_id = r1.reader_id
               AND r2.tag_id = r1.tag_id)";
        let s = parse_statement(sql).unwrap();
        let Statement::InsertInto { target, select } = s else {
            panic!("expected insert");
        };
        assert_eq!(target, "cleaned_readings");
        assert_eq!(select.from[0].binding(), "r1");
        let Some(AstExpr::Exists { negated, subquery }) = select.where_clause else {
            panic!("expected NOT EXISTS");
        };
        assert!(negated);
        let w = subquery.from[0].window.as_ref().unwrap();
        assert_eq!(w.dur(), Some(Duration::from_secs(1)));
        assert_eq!(w.kind, AstWindowKind::Preceding);
        assert_eq!(w.anchor, None);
        assert_eq!(subquery.from[0].binding(), "r2");
    }

    /// Example 2 parses verbatim.
    #[test]
    fn example2_location_tracking() {
        let sql = "
            INSERT INTO object_movement
            SELECT tid, loc, tagtime
            FROM tag_locations WHERE NOT EXISTS
              (SELECT tagid FROM object_movement
               WHERE tagid = tid AND location = loc)";
        let s = parse_statement(sql).unwrap();
        assert!(matches!(s, Statement::InsertInto { .. }));
    }

    /// Example 3 parses verbatim.
    #[test]
    fn example3_epc_aggregation() {
        let sql = "
            SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
            AND extract_serial(tid) > 5000
            AND extract_serial(tid) < 9999";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(sel.items.len(), 1);
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        assert!(matches!(expr, AstExpr::Call { name, .. } if name == "count"));
        let conjuncts = split_conjuncts(sel.where_clause.as_ref().unwrap());
        assert_eq!(conjuncts.len(), 3);
        assert!(matches!(conjuncts[0], AstExpr::Like(..)));
    }

    /// Example 6 parses verbatim.
    #[test]
    fn example6_seq() {
        let sql = "
            SELECT C1.tagid, C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
            FROM C1, C2, C3, C4
            WHERE SEQ(C1, C2, C3, C4)
            AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let conj = split_conjuncts(sel.where_clause.as_ref().unwrap());
        let AstExpr::Seq {
            kind,
            args,
            window,
            mode,
        } = conj[0]
        else {
            panic!("first conjunct is SEQ")
        };
        assert_eq!(*kind, SeqKind::Seq);
        assert_eq!(args.len(), 4);
        assert!(!args[0].star);
        assert!(window.is_none());
        assert!(mode.is_none());
    }

    /// The windowed SEQ variant from §3.1.1 parses.
    #[test]
    fn seq_with_window_and_mode() {
        let sql = "
            SELECT C4.tagid FROM C1, C2, C3, C4
            WHERE SEQ(C1, C2, C3, C4)
              OVER [30 MINUTES PRECEDING C4]
              MODE CONSECUTIVE
            AND C1.tagid=C4.tagid";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let conj = split_conjuncts(sel.where_clause.as_ref().unwrap());
        let AstExpr::Seq { window, mode, .. } = conj[0] else {
            panic!()
        };
        let w = window.as_ref().unwrap();
        assert_eq!(w.dur(), Some(Duration::from_mins(30)));
        assert_eq!(w.anchor.as_deref(), Some("c4"));
        assert_eq!(*mode, Some(PairingMode::Consecutive));
    }

    /// Example 7 parses verbatim (star sequence, star aggregates,
    /// `previous` operator, ≤ sign).
    #[test]
    fn example7_star_sequence() {
        let sql = "
            SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
            FROM R1, R2
            WHERE SEQ(R1*, R2) MODE CHRONICLE
            AND R2.tagtime - LAST(R1*).tagtime ≤ 5 SECONDS
            AND R1.tagtime - R1.previous.tagtime ≤ 1 SECONDS";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(matches!(
            &sel.items[0],
            SelectItem::Expr {
                expr: AstExpr::StarAgg {
                    kind: StarAggKind::First,
                    ..
                },
                ..
            }
        ));
        assert!(matches!(
            &sel.items[1],
            SelectItem::Expr {
                expr: AstExpr::StarAgg {
                    kind: StarAggKind::Count,
                    column: None,
                    ..
                },
                ..
            }
        ));
        let conj = split_conjuncts(sel.where_clause.as_ref().unwrap());
        assert_eq!(conj.len(), 3);
        let AstExpr::Seq { args, mode, .. } = conj[0] else {
            panic!()
        };
        assert!(args[0].star);
        assert!(!args[1].star);
        assert_eq!(*mode, Some(PairingMode::Chronicle));
        // Gap constraint with LAST(R1*).
        let AstExpr::Bin(AstBinOp::Le, lhs, rhs) = conj[1] else {
            panic!()
        };
        assert!(matches!(**rhs, AstExpr::Dur(d) if d == Duration::from_secs(5)));
        assert!(matches!(**lhs, AstExpr::Bin(AstBinOp::Sub, ..)));
        // previous-operator constraint.
        let AstExpr::Bin(AstBinOp::Le, lhs, _) = conj[2] else {
            panic!()
        };
        let AstExpr::Bin(AstBinOp::Sub, _, prev) = &**lhs else {
            panic!()
        };
        assert!(matches!(**prev, AstExpr::PrevCol { .. }));
    }

    /// The EXCEPTION_SEQ query of §3.1.3 parses verbatim.
    #[test]
    fn exception_seq_query() {
        let sql = "
            SELECT A1.tagid, A2.tagid, A3.tagid
            FROM A1, A2, A3
            WHERE EXCEPTION_SEQ(A1, A2, A3)
            OVER [1 HOURS FOLLOWING A1]";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let Some(AstExpr::Seq { kind, window, .. }) = sel.where_clause else {
            panic!()
        };
        assert_eq!(kind, SeqKind::ExceptionSeq);
        let w = window.unwrap();
        assert_eq!(w.kind, AstWindowKind::Following);
        assert_eq!(w.dur(), Some(Duration::from_hours(1)));
        assert_eq!(w.anchor.as_deref(), Some("a1"));
    }

    /// The CLEVEL_SEQ equivalent parses verbatim.
    #[test]
    fn clevel_seq_query() {
        let sql = "
            SELECT A1.tagid, A2.tagid, A3.tagid
            FROM A1, A2, A3
            WHERE (CLEVEL_SEQ(A1, A2, A3)
            OVER [1 HOURS FOLLOWING A1]) < 3";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let Some(AstExpr::Bin(AstBinOp::Lt, lhs, rhs)) = sel.where_clause else {
            panic!()
        };
        assert!(matches!(
            *lhs,
            AstExpr::Seq {
                kind: SeqKind::ClevelSeq,
                ..
            }
        ));
        assert!(matches!(*rhs, AstExpr::Lit(Value::Int(3))));
    }

    /// Example 8 parses verbatim (cross-sub-query window, PRECEDING AND
    /// FOLLOWING).
    #[test]
    fn example8_door_security() {
        let sql = "
            SELECT person.tagid
            FROM tag_readings AS person
            WHERE person.tagtype = 'person' AND NOT EXISTS
              (SELECT * FROM tag_readings AS item
               OVER [1 MINUTES PRECEDING AND FOLLOWING person]
               WHERE item.tagtype = 'item')";
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let conj = split_conjuncts(sel.where_clause.as_ref().unwrap());
        assert_eq!(conj.len(), 2);
        let AstExpr::Exists { negated, subquery } = conj[1] else {
            panic!()
        };
        assert!(negated);
        let w = subquery.from[0].window.as_ref().unwrap();
        assert_eq!(w.kind, AstWindowKind::PrecedingAndFollowing);
        assert_eq!(w.anchor.as_deref(), Some("person"));
        assert_eq!(w.dur(), Some(Duration::from_mins(1)));
    }

    #[test]
    fn script_splits_statements() {
        let stmts =
            parse_script("CREATE STREAM s (t TIMESTAMP); SELECT * FROM s; SELECT * FROM s;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn error_reporting_mentions_offset() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(err.to_string().contains("expected"));
        let err = parse_statement("SELECT * FRM s").unwrap_err();
        assert!(err.to_string().contains("from") || err.to_string().contains("FROM"));
    }

    #[test]
    fn rows_window_parses() {
        let Statement::Select(sel) =
            parse_statement("SELECT avg(v) FROM s OVER (ROWS 10 PRECEDING CURRENT)").unwrap()
        else {
            panic!()
        };
        let w = sel.from[0].window.as_ref().unwrap();
        assert_eq!(w.length, WindowLength::Rows(10));
        assert_eq!(w.anchor, None);
    }

    #[test]
    fn group_by_parses() {
        let Statement::Select(sel) =
            parse_statement("SELECT loc, count(tid) FROM s GROUP BY loc").unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.group_by.len(), 1);
    }

    #[test]
    fn negative_numbers_and_precedence() {
        let Statement::Select(sel) =
            parse_statement("SELECT a + b * 2 FROM s WHERE x > -5").unwrap()
        else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        // a + (b * 2), not (a + b) * 2.
        assert_eq!(expr.to_string(), "(a + (b * 2))");
    }

    #[test]
    fn star_agg_vs_plain_count() {
        let Statement::Select(sel) =
            parse_statement("SELECT count(tid), COUNT(R1*) FROM r1").unwrap()
        else {
            panic!()
        };
        assert!(matches!(
            &sel.items[0],
            SelectItem::Expr {
                expr: AstExpr::Call { .. },
                ..
            }
        ));
        assert!(matches!(
            &sel.items[1],
            SelectItem::Expr {
                expr: AstExpr::StarAgg { .. },
                ..
            }
        ));
    }

    #[test]
    fn star_agg_projection_rules() {
        assert!(parse_statement("SELECT FIRST(a*) FROM a, b WHERE SEQ(a*, b)").is_err());
        assert!(parse_statement("SELECT COUNT(a*).x FROM a, b WHERE SEQ(a*, b)").is_err());
    }

    #[test]
    fn consistency_clause() {
        let Statement::Select(sel) =
            parse_statement("SELECT tag_id FROM readings CONSISTENCY FAST").unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.consistency, Some(Consistency::Fast));
        let Statement::Select(sel) =
            parse_statement("SELECT tag_id FROM readings WHERE x > 1 CONSISTENCY CONSISTENT")
                .unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.consistency, Some(Consistency::Consistent));
        let Statement::Select(sel) = parse_statement("SELECT tag_id FROM readings").unwrap() else {
            panic!()
        };
        assert_eq!(sel.consistency, None);
        assert!(parse_statement("SELECT tag_id FROM readings CONSISTENCY eventually").is_err());
    }
}
