//! Abstract syntax of ESL-EV statements.
//!
//! The AST mirrors the paper's concrete syntax: standard SQL statements
//! plus event-operator terms (`SEQ`, `EXCEPTION_SEQ`, `CLEVEL_SEQ` with
//! `OVER [...]` windows and `MODE` clauses), star aggregates
//! (`FIRST(R1*).tagtime`), the `previous` operator, duration literals,
//! and window specs attached to FROM items (including the §3.2
//! cross-sub-query windows of Example 8).

use eslev_core::mode::PairingMode;
use eslev_dsms::engine::Consistency;
use eslev_dsms::time::Duration;
use eslev_dsms::value::{Value, ValueType};
use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE STREAM name (col type, ...)`.
    CreateStream {
        /// Stream name.
        name: String,
        /// Columns.
        columns: Vec<(String, ValueType)>,
    },
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Columns.
        columns: Vec<(String, ValueType)>,
    },
    /// `INSERT INTO target SELECT ...` — a continuous query whose output
    /// feeds a stream or table.
    InsertInto {
        /// Target stream or table.
        target: String,
        /// The query.
        select: SelectStmt,
    },
    /// A bare continuous `SELECT` (results collected for the caller).
    Select(SelectStmt),
    /// `UPDATE table SET col = expr [, ...] [WHERE pred]` — one-shot.
    Update {
        /// Target table.
        table: String,
        /// `(column, value expression)` assignments.
        sets: Vec<(String, AstExpr)>,
        /// Row filter.
        where_clause: Option<AstExpr>,
    },
    /// `DELETE FROM table [WHERE pred]` — one-shot.
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        where_clause: Option<AstExpr>,
    },
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Select list (empty means `*`).
    pub items: Vec<SelectItem>,
    /// FROM items.
    pub from: Vec<FromItem>,
    /// WHERE predicate.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<AstExpr>,
    /// ORDER BY items (`true` = DESC); only meaningful for ad-hoc
    /// snapshot queries — continuous streams have no final order.
    pub order_by: Vec<(AstExpr, bool)>,
    /// LIMIT row count (ad-hoc only).
    pub limit: Option<usize>,
    /// `CONSISTENCY FAST | CONSISTENT` — the emission discipline under
    /// out-of-order input (default: consistent, i.e. block until the
    /// watermark proves order; fast emits speculatively and retracts).
    pub consistency: Option<Consistency>,
}

/// One select-list entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: AstExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// One FROM entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// Relation (stream or table) name.
    pub name: String,
    /// `AS alias`.
    pub alias: Option<String>,
    /// Window attached to the item (`TABLE(s OVER (RANGE ...))` in
    /// Example 1, `s AS item OVER [... PRECEDING AND FOLLOWING person]`
    /// in Example 8).
    pub window: Option<AstWindow>,
}

impl FromItem {
    /// The name this item binds in scope.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Direction of a window spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstWindowKind {
    /// `d PRECEDING anchor`.
    Preceding,
    /// `d FOLLOWING anchor`.
    Following,
    /// `d PRECEDING AND FOLLOWING anchor` (§3.2).
    PrecedingAndFollowing,
}

/// How a window is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowLength {
    /// Time-based: `RANGE 30 MINUTES ...`.
    Time(Duration),
    /// Count-based: `ROWS 10 ...`.
    Rows(usize),
}

impl WindowLength {
    /// The duration, when time-based.
    pub fn as_time(self) -> Option<Duration> {
        match self {
            WindowLength::Time(d) => Some(d),
            WindowLength::Rows(_) => None,
        }
    }
}

/// A window spec: `[30 MINUTES PRECEDING C4]`,
/// `(RANGE 1 SECONDS PRECEDING CURRENT)`, `(ROWS 10 PRECEDING CURRENT)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstWindow {
    /// Window length (time or rows).
    pub length: WindowLength,
    /// Direction.
    pub kind: AstWindowKind,
    /// Anchor: an alias, or `None` for `CURRENT` (the carrying tuple).
    pub anchor: Option<String>,
}

impl AstWindow {
    /// The duration, when time-based (errors are the planner's job).
    pub fn dur(&self) -> Option<Duration> {
        self.length.as_time()
    }
}

/// Which event operator a [`AstExpr::Seq`] term is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqKind {
    /// `SEQ(...)` — boolean: a sequence completed.
    Seq,
    /// `EXCEPTION_SEQ(...)` — boolean: a violation occurred.
    ExceptionSeq,
    /// `CLEVEL_SEQ(...)` — integer: the Sequence Completion Level.
    ClevelSeq,
}

/// One argument of a `SEQ` operator: an alias, optionally starred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqArg {
    /// FROM alias the argument refers to.
    pub alias: String,
    /// `alias*` — repeating element.
    pub star: bool,
}

/// Star-aggregate functions over a star element (§3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StarAggKind {
    /// `FIRST(R1*)` — the first tuple of the group.
    First,
    /// `LAST(R1*)` — the last tuple.
    Last,
    /// `COUNT(R1*)` — group size.
    Count,
}

/// Binary operators (parser-level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Literal value.
    Lit(Value),
    /// Duration literal (`5 SECONDS`).
    Dur(Duration),
    /// Column reference, optionally qualified (`r2.tag_id` / `tag_id`).
    Col {
        /// Alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// `alias.previous.column` — the star-sequence `previous` operator.
    PrevCol {
        /// Star-element alias.
        qualifier: String,
        /// Column name.
        name: String,
    },
    /// `FIRST(R1*).col` / `LAST(R1*).col` / `COUNT(R1*)`.
    StarAgg {
        /// Which aggregate.
        kind: StarAggKind,
        /// Star-element alias.
        alias: String,
        /// Projected column (`None` for COUNT).
        column: Option<String>,
    },
    /// Ordinary aggregate call (`COUNT(x)`, `SUM(x)`, UDAs).
    Agg {
        /// Aggregate name.
        name: String,
        /// Argument.
        arg: Box<AstExpr>,
    },
    /// Scalar function call.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<AstExpr>,
    },
    /// Binary operation.
    Bin(AstBinOp, Box<AstExpr>, Box<AstExpr>),
    /// `NOT e`.
    Not(Box<AstExpr>),
    /// `e IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<AstExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `e LIKE 'pattern'`.
    Like(Box<AstExpr>, String),
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// `NOT EXISTS`.
        negated: bool,
        /// The correlated sub-select.
        subquery: Box<SelectStmt>,
    },
    /// Event-operator term.
    Seq {
        /// Operator kind.
        kind: SeqKind,
        /// Arguments in sequence order.
        args: Vec<SeqArg>,
        /// `OVER [...]`.
        window: Option<AstWindow>,
        /// `MODE ...`.
        mode: Option<PairingMode>,
    },
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Lit(Value::Str(s)) => write!(f, "'{s}'"),
            AstExpr::Lit(v) => write!(f, "{v}"),
            AstExpr::Dur(d) => write!(f, "{} MICROSECONDS", d.as_micros()),
            AstExpr::Col { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            AstExpr::PrevCol { qualifier, name } => write!(f, "{qualifier}.previous.{name}"),
            AstExpr::StarAgg {
                kind,
                alias,
                column,
            } => {
                let kw = match kind {
                    StarAggKind::First => "FIRST",
                    StarAggKind::Last => "LAST",
                    StarAggKind::Count => "COUNT",
                };
                match column {
                    Some(c) => write!(f, "{kw}({alias}*).{c}"),
                    None => write!(f, "{kw}({alias}*)"),
                }
            }
            AstExpr::Agg { name, arg } => write!(f, "{name}({arg})"),
            AstExpr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            AstExpr::Bin(op, a, b) => {
                let sym = match op {
                    AstBinOp::Add => "+",
                    AstBinOp::Sub => "-",
                    AstBinOp::Mul => "*",
                    AstBinOp::Div => "/",
                    AstBinOp::Mod => "%",
                    AstBinOp::Eq => "=",
                    AstBinOp::Ne => "<>",
                    AstBinOp::Lt => "<",
                    AstBinOp::Le => "<=",
                    AstBinOp::Gt => ">",
                    AstBinOp::Ge => ">=",
                    AstBinOp::And => "AND",
                    AstBinOp::Or => "OR",
                };
                write!(f, "({a} {sym} {b})")
            }
            AstExpr::Not(e) => write!(f, "(NOT {e})"),
            AstExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            AstExpr::Like(e, p) => write!(f, "({e} LIKE '{p}')"),
            AstExpr::Exists { negated, .. } => {
                write!(f, "{}EXISTS (...)", if *negated { "NOT " } else { "" })
            }
            AstExpr::Seq {
                kind,
                args,
                window,
                mode,
            } => {
                let kw = match kind {
                    SeqKind::Seq => "SEQ",
                    SeqKind::ExceptionSeq => "EXCEPTION_SEQ",
                    SeqKind::ClevelSeq => "CLEVEL_SEQ",
                };
                write!(f, "{kw}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}{}", a.alias, if a.star { "*" } else { "" })?;
                }
                write!(f, ")")?;
                if let Some(w) = window {
                    let k = match w.kind {
                        AstWindowKind::Preceding => "PRECEDING",
                        AstWindowKind::Following => "FOLLOWING",
                        AstWindowKind::PrecedingAndFollowing => "PRECEDING AND FOLLOWING",
                    };
                    let len = match w.length {
                        WindowLength::Time(d) => format!("{} MICROSECONDS", d.as_micros()),
                        WindowLength::Rows(n) => format!("ROWS {n}"),
                    };
                    write!(
                        f,
                        " OVER [{len} {k} {}]",
                        w.anchor.as_deref().unwrap_or("CURRENT")
                    )?;
                }
                if let Some(m) = mode {
                    write!(f, " MODE {m}")?;
                }
                Ok(())
            }
        }
    }
}

/// Split a conjunction into its conjuncts (for the planner's predicate
/// classification).
pub fn split_conjuncts(e: &AstExpr) -> Vec<&AstExpr> {
    match e {
        AstExpr::Bin(AstBinOp::And, a, b) => {
            let mut v = split_conjuncts(a);
            v.extend(split_conjuncts(b));
            v
        }
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_shape() {
        let e = AstExpr::Bin(
            AstBinOp::And,
            Box::new(AstExpr::Like(
                Box::new(AstExpr::Col {
                    qualifier: None,
                    name: "tid".into(),
                }),
                "20.%.%".into(),
            )),
            Box::new(AstExpr::Bin(
                AstBinOp::Gt,
                Box::new(AstExpr::Call {
                    name: "extract_serial".into(),
                    args: vec![AstExpr::Col {
                        qualifier: None,
                        name: "tid".into(),
                    }],
                }),
                Box::new(AstExpr::Lit(Value::Int(5000))),
            )),
        );
        assert_eq!(
            e.to_string(),
            "((tid LIKE '20.%.%') AND (extract_serial(tid) > 5000))"
        );
    }

    #[test]
    fn split_conjuncts_flattens() {
        let c = |n: &str| AstExpr::Col {
            qualifier: None,
            name: n.into(),
        };
        let e = AstExpr::Bin(
            AstBinOp::And,
            Box::new(AstExpr::Bin(
                AstBinOp::And,
                Box::new(c("a")),
                Box::new(c("b")),
            )),
            Box::new(c("c")),
        );
        assert_eq!(split_conjuncts(&e).len(), 3);
        assert_eq!(split_conjuncts(&c("x")).len(), 1);
    }

    #[test]
    fn from_item_binding() {
        let f = FromItem {
            name: "readings".into(),
            alias: Some("r1".into()),
            window: None,
        };
        assert_eq!(f.binding(), "r1");
        let f = FromItem {
            name: "readings".into(),
            alias: None,
            window: None,
        };
        assert_eq!(f.binding(), "readings");
    }
}
