//! Name resolution: FROM bindings → relation indexes, column names →
//! `(rel, col)` pairs, function calls → registered UDFs.

use crate::ast::{AstBinOp, AstExpr};
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::expr::{BinOp, Expr, FunctionRegistry, LikePattern};
use eslev_dsms::schema::SchemaRef;

/// The relations visible to an expression, in evaluation-row order.
/// `search_order` lists relation indexes in name-resolution priority
/// (inner scope before outer scope for correlated sub-queries).
pub struct Scope {
    rels: Vec<(String, SchemaRef)>,
    search_order: Vec<usize>,
}

impl Scope {
    /// Scope over relations in evaluation-row order, resolved
    /// first-to-last for unqualified names.
    pub fn new(rels: Vec<(String, SchemaRef)>) -> Scope {
        let search_order = (0..rels.len()).collect();
        Scope { rels, search_order }
    }

    /// Override the unqualified-name search order (e.g. sub-query scope
    /// searches the inner relation before the correlated outer one).
    pub fn with_search_order(mut self, order: Vec<usize>) -> Scope {
        debug_assert_eq!(order.len(), self.rels.len());
        self.search_order = order;
        self
    }

    /// Relation index of a binding name.
    pub fn rel_of(&self, binding: &str) -> Option<usize> {
        let lower = binding.to_ascii_lowercase();
        self.rels.iter().position(|(n, _)| *n == lower)
    }

    /// Number of relations.
    pub fn arity(&self) -> usize {
        self.rels.len()
    }

    /// Schema of relation `i`.
    pub fn schema(&self, i: usize) -> &SchemaRef {
        &self.rels[i].1
    }

    /// Resolve a column reference to `(rel, col)`.
    pub fn resolve_column(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, usize)> {
        match qualifier {
            Some(q) => {
                let rel = self
                    .rel_of(q)
                    .ok_or_else(|| DsmsError::unknown(format!("relation alias `{q}`")))?;
                let col = self.rels[rel].1.require_column(name)?;
                Ok((rel, col))
            }
            None => {
                let mut found = None;
                for &rel in &self.search_order {
                    if let Some(col) = self.rels[rel].1.column_index(name) {
                        if found.is_some() {
                            // Inner-before-outer search: the first hit in
                            // priority order wins (SQL's correlated-name
                            // shadowing), so stop at one.
                            break;
                        }
                        found = Some((rel, col));
                    }
                }
                found.ok_or_else(|| DsmsError::unknown(format!("column `{name}`")))
            }
        }
    }
}

/// Compile a scalar AST expression against a scope. Rejects sub-queries,
/// SEQ terms, aggregates and star aggregates — those are structural and
/// handled by the planner before this is called.
pub fn compile_scalar(ast: &AstExpr, scope: &Scope, funcs: &FunctionRegistry) -> Result<Expr> {
    Ok(match ast {
        AstExpr::Lit(v) => Expr::Lit(v.clone()),
        AstExpr::Dur(d) => Expr::Dur(*d),
        AstExpr::Col { qualifier, name } => {
            let (rel, col) = scope.resolve_column(qualifier.as_deref(), name)?;
            Expr::qcol(rel, col)
        }
        AstExpr::Bin(op, a, b) => Expr::bin(
            compile_binop(*op),
            compile_scalar(a, scope, funcs)?,
            compile_scalar(b, scope, funcs)?,
        ),
        AstExpr::Not(e) => Expr::Not(Box::new(compile_scalar(e, scope, funcs)?)),
        AstExpr::IsNull { expr, negated } => {
            let inner = Expr::IsNull(Box::new(compile_scalar(expr, scope, funcs)?));
            if *negated {
                Expr::Not(Box::new(inner))
            } else {
                inner
            }
        }
        AstExpr::Like(e, pat) => Expr::Like(
            Box::new(compile_scalar(e, scope, funcs)?),
            LikePattern::compile(pat),
        ),
        AstExpr::Call { name, args } => {
            let func = funcs
                .get(name)
                .ok_or_else(|| DsmsError::unknown(format!("function `{name}`")))?
                .clone();
            let args = args
                .iter()
                .map(|a| compile_scalar(a, scope, funcs))
                .collect::<Result<Vec<_>>>()?;
            Expr::Call {
                name: name.clone(),
                func,
                args,
            }
        }
        AstExpr::PrevCol { .. } => {
            return Err(DsmsError::plan(
                "`previous` is only meaningful inside a star-sequence gap constraint",
            ))
        }
        AstExpr::StarAgg { .. } => {
            return Err(DsmsError::plan(
                "star aggregates (FIRST/LAST/COUNT over a*) are only valid in SEQ queries",
            ))
        }
        AstExpr::Agg { name, .. } => {
            return Err(DsmsError::plan(format!(
                "aggregate `{name}` not valid in a scalar context"
            )))
        }
        AstExpr::Exists { .. } => {
            return Err(DsmsError::plan(
                "EXISTS sub-queries are structural; this shape is not supported here",
            ))
        }
        AstExpr::Seq { .. } => {
            return Err(DsmsError::plan(
                "SEQ operators are structural; this shape is not supported here",
            ))
        }
    })
}

/// Map an AST binary operator to the runtime one.
pub fn compile_binop(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
        AstBinOp::Mod => BinOp::Mod,
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::Ne => BinOp::Ne,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::Le => BinOp::Le,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::Ge => BinOp::Ge,
        AstBinOp::And => BinOp::And,
        AstBinOp::Or => BinOp::Or,
    }
}

/// Which relations an expression mentions (by binding name); used by the
/// planner to classify conjuncts. Unqualified names are resolved through
/// the scope.
pub fn referenced_rels(ast: &AstExpr, scope: &Scope, out: &mut std::collections::BTreeSet<usize>) {
    match ast {
        AstExpr::Col { qualifier, name } => {
            if let Ok((rel, _)) = scope.resolve_column(qualifier.as_deref(), name) {
                out.insert(rel);
            }
        }
        AstExpr::PrevCol { qualifier, .. }
        | AstExpr::StarAgg {
            alias: qualifier, ..
        } => {
            if let Some(rel) = scope.rel_of(qualifier) {
                out.insert(rel);
            }
        }
        AstExpr::Bin(_, a, b) => {
            referenced_rels(a, scope, out);
            referenced_rels(b, scope, out);
        }
        AstExpr::Not(e) | AstExpr::IsNull { expr: e, .. } | AstExpr::Like(e, _) => {
            referenced_rels(e, scope, out)
        }
        AstExpr::Call { args, .. } => {
            for a in args {
                referenced_rels(a, scope, out);
            }
        }
        AstExpr::Agg { arg, .. } => referenced_rels(arg, scope, out),
        AstExpr::Lit(_) | AstExpr::Dur(_) | AstExpr::Exists { .. } | AstExpr::Seq { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslev_dsms::schema::Schema;
    use eslev_dsms::time::Timestamp;
    use eslev_dsms::tuple::Tuple;
    use eslev_dsms::value::Value;

    fn scope2() -> Scope {
        Scope::new(vec![
            ("r1".into(), Schema::readings("readings")),
            ("r2".into(), Schema::readings("readings")),
        ])
    }

    #[test]
    fn qualified_resolution() {
        let s = scope2();
        assert_eq!(s.resolve_column(Some("r2"), "tag_id").unwrap(), (1, 1));
        assert!(s.resolve_column(Some("zz"), "tag_id").is_err());
        assert!(s.resolve_column(Some("r1"), "nope").is_err());
    }

    #[test]
    fn unqualified_uses_search_order() {
        let s = scope2().with_search_order(vec![1, 0]);
        assert_eq!(s.resolve_column(None, "tag_id").unwrap(), (1, 1));
        let s = scope2();
        assert_eq!(s.resolve_column(None, "tag_id").unwrap(), (0, 1));
    }

    #[test]
    fn compile_and_eval() {
        let s = scope2();
        let funcs = FunctionRegistry::new();
        // r2.tag_id = r1.tag_id
        let ast = AstExpr::Bin(
            AstBinOp::Eq,
            Box::new(AstExpr::Col {
                qualifier: Some("r2".into()),
                name: "tag_id".into(),
            }),
            Box::new(AstExpr::Col {
                qualifier: Some("r1".into()),
                name: "tag_id".into(),
            }),
        );
        let e = compile_scalar(&ast, &s, &funcs).unwrap();
        let mk = |tag: &str| {
            Tuple::new(
                vec![Value::str("r"), Value::str(tag), Value::Ts(Timestamp::ZERO)],
                Timestamp::ZERO,
                0,
            )
        };
        let (a, b) = (mk("x"), mk("x"));
        assert!(e.eval_bool(&[&a, &b]).unwrap());
        let c = mk("y");
        assert!(!e.eval_bool(&[&a, &c]).unwrap());
    }

    #[test]
    fn structural_terms_rejected() {
        let s = scope2();
        let funcs = FunctionRegistry::new();
        let bad = AstExpr::StarAgg {
            kind: crate::ast::StarAggKind::Count,
            alias: "r1".into(),
            column: None,
        };
        assert!(compile_scalar(&bad, &s, &funcs).is_err());
    }

    #[test]
    fn referenced_rels_walks_tree() {
        let s = scope2();
        let ast = AstExpr::Bin(
            AstBinOp::Eq,
            Box::new(AstExpr::Col {
                qualifier: Some("r2".into()),
                name: "tag_id".into(),
            }),
            Box::new(AstExpr::Lit(Value::Int(1))),
        );
        let mut rels = std::collections::BTreeSet::new();
        referenced_rels(&ast, &s, &mut rels);
        assert_eq!(rels.into_iter().collect::<Vec<_>>(), vec![1]);
    }
}
