//! Canonical plan fingerprints for multi-query shared execution.
//!
//! Two continuous queries can execute one physical chain when their
//! optimized logical plans are structurally identical up to *naming
//! noise*: FROM-binding aliases, output-column aliases and letter case
//! carry no semantics, so `SELECT * FROM readings AS r1 WHERE ...` and
//! `SELECT * FROM readings AS rx WHERE ...` must land on the same chain.
//!
//! [`shared_fingerprint`] canonicalizes the plan — every FROM binding is
//! renamed to its positional `$i`, EXISTS sub-query bindings to `$sj`,
//! identifiers are lowercased, and annotation-only fields (pruned column
//! sets, SEQ state bounds) are stripped — renders it, and hashes the
//! rendering with FNV-1a 64. The canonical rendering travels with the
//! hash: the engine compares it on attach, so a 64-bit collision can
//! never fuse two different queries.
//!
//! The fingerprint covers exactly the *shared* part of the plan. Shapes
//! whose final projection lowers to a separate physical stage
//! (transducer, table EXISTS, windowed EXISTS) are fingerprinted with
//! the projection peeled off — the projection becomes the per-query
//! residual, so queries differing only in their select list still share
//! the stateful prefix. Shapes that fuse the projection into the
//! operator (dedup, aggregate, SEQ detectors) are fingerprinted whole,
//! select list included: they only share when the full query matches.

use crate::ast::*;
use crate::plan::{LogicalPlan, SeqElementPlan, SeqPlan};
use std::collections::HashMap;

/// A canonical plan fingerprint: the structural hash plus the canonical
/// rendering it was computed over (kept for collision-proof comparison).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// FNV-1a 64 over the canonical rendering.
    pub hash: u64,
    /// The canonical rendering itself.
    pub canon: String,
}

/// FNV-1a 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Positional alias map: FROM bindings become `$0..$n-1`, EXISTS
/// sub-query bindings `$s0..`, everything lowercased.
fn alias_map(sel: &SelectStmt) -> HashMap<String, String> {
    let mut m = HashMap::new();
    for (i, f) in sel.from.iter().enumerate() {
        m.insert(f.binding().to_ascii_lowercase(), format!("${i}"));
    }
    if let Some(w) = &sel.where_clause {
        for c in split_conjuncts(w) {
            if let AstExpr::Exists { subquery, .. } = c {
                for (j, f) in subquery.from.iter().enumerate() {
                    m.entry(f.binding().to_ascii_lowercase())
                        .or_insert_with(|| format!("$s{j}"));
                }
            }
        }
    }
    m
}

fn mapped(m: &HashMap<String, String>, alias: &str) -> String {
    let lower = alias.to_ascii_lowercase();
    m.get(&lower).cloned().unwrap_or(lower)
}

fn canon_window(w: &AstWindow, m: &HashMap<String, String>) -> AstWindow {
    AstWindow {
        length: w.length,
        kind: w.kind,
        anchor: w.anchor.as_ref().map(|a| mapped(m, a)),
    }
}

fn canon_expr(e: &AstExpr, m: &HashMap<String, String>) -> AstExpr {
    match e {
        AstExpr::Lit(_) | AstExpr::Dur(_) => e.clone(),
        AstExpr::Col { qualifier, name } => AstExpr::Col {
            qualifier: qualifier.as_ref().map(|q| mapped(m, q)),
            name: name.to_ascii_lowercase(),
        },
        AstExpr::PrevCol { qualifier, name } => AstExpr::PrevCol {
            qualifier: mapped(m, qualifier),
            name: name.to_ascii_lowercase(),
        },
        AstExpr::StarAgg {
            kind,
            alias,
            column,
        } => AstExpr::StarAgg {
            kind: *kind,
            alias: mapped(m, alias),
            column: column.as_ref().map(|c| c.to_ascii_lowercase()),
        },
        AstExpr::Agg { name, arg } => AstExpr::Agg {
            name: name.to_ascii_lowercase(),
            arg: Box::new(canon_expr(arg, m)),
        },
        AstExpr::Call { name, args } => AstExpr::Call {
            name: name.to_ascii_lowercase(),
            args: args.iter().map(|a| canon_expr(a, m)).collect(),
        },
        AstExpr::Bin(op, a, b) => {
            AstExpr::Bin(*op, Box::new(canon_expr(a, m)), Box::new(canon_expr(b, m)))
        }
        AstExpr::Not(e) => AstExpr::Not(Box::new(canon_expr(e, m))),
        AstExpr::IsNull { expr, negated } => AstExpr::IsNull {
            expr: Box::new(canon_expr(expr, m)),
            negated: *negated,
        },
        AstExpr::Like(e, p) => AstExpr::Like(Box::new(canon_expr(e, m)), p.clone()),
        AstExpr::Exists { negated, subquery } => AstExpr::Exists {
            negated: *negated,
            subquery: subquery.clone(),
        },
        AstExpr::Seq {
            kind,
            args,
            window,
            mode,
        } => AstExpr::Seq {
            kind: *kind,
            args: args
                .iter()
                .map(|a| SeqArg {
                    alias: mapped(m, &a.alias),
                    star: a.star,
                })
                .collect(),
            window: window.as_ref().map(|w| canon_window(w, m)),
            mode: *mode,
        },
    }
}

fn canon_exprs(es: &[AstExpr], m: &HashMap<String, String>) -> Vec<AstExpr> {
    es.iter().map(|e| canon_expr(e, m)).collect()
}

/// Deep-canonicalize a plan: positional aliases, lowercased identifiers,
/// annotation-only fields (pruned columns, state bounds) stripped.
fn canon_plan(p: &LogicalPlan, m: &HashMap<String, String>) -> LogicalPlan {
    match p {
        LogicalPlan::Source { stream, alias, .. } => LogicalPlan::Source {
            stream: stream.to_ascii_lowercase(),
            alias: mapped(m, alias),
            columns: None,
        },
        LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
            input: Box::new(canon_plan(input, m)),
            predicates: canon_exprs(predicates, m),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(canon_plan(input, m)),
            exprs: canon_exprs(exprs, m),
        },
        LogicalPlan::Window { input, window } => LogicalPlan::Window {
            input: Box::new(canon_plan(input, m)),
            window: canon_window(window, m),
        },
        LogicalPlan::Dedup {
            input,
            keys,
            window,
        } => LogicalPlan::Dedup {
            input: Box::new(canon_plan(input, m)),
            keys: keys
                .iter()
                .map(|(i, n)| (*i, n.to_ascii_lowercase()))
                .collect(),
            window: *window,
        },
        LogicalPlan::SemiJoin {
            outer,
            inner,
            negated,
            predicates,
        } => LogicalPlan::SemiJoin {
            outer: Box::new(canon_plan(outer, m)),
            inner: Box::new(canon_plan(inner, m)),
            negated: *negated,
            predicates: canon_exprs(predicates, m),
        },
        LogicalPlan::Lookup {
            input,
            table,
            negated,
            predicates,
            probe,
        } => LogicalPlan::Lookup {
            input: Box::new(canon_plan(input, m)),
            table: table.to_ascii_lowercase(),
            negated: *negated,
            predicates: canon_exprs(predicates, m),
            probe: probe
                .as_ref()
                .map(|(c, k)| (c.to_ascii_lowercase(), canon_expr(k, m))),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            window,
        } => LogicalPlan::Aggregate {
            input: Box::new(canon_plan(input, m)),
            group_by: canon_exprs(group_by, m),
            aggs: canon_exprs(aggs, m),
            window: window.as_ref().map(|w| canon_window(w, m)),
        },
        LogicalPlan::Seq(sp) => LogicalPlan::Seq(SeqPlan {
            kind: sp.kind,
            mode: sp.mode,
            elements: sp
                .elements
                .iter()
                .map(|e| SeqElementPlan {
                    alias: mapped(m, &e.alias),
                    stream: e.stream.to_ascii_lowercase(),
                    port: e.port,
                    star: e.star,
                    predicates: canon_exprs(&e.predicates, m),
                    max_gap_from_prev: e.max_gap_from_prev,
                    star_gap: e.star_gap,
                })
                .collect(),
            window: sp.window.as_ref().map(|w| canon_window(w, m)),
            residual: canon_exprs(&sp.residual, m),
            partition: sp.partition.as_ref().map(|keys| {
                keys.iter()
                    .map(|(i, n)| (*i, n.to_ascii_lowercase()))
                    .collect()
            }),
            level_cmp: sp.level_cmp,
            state_bound: None,
        }),
    }
}

/// Whether the lowering of this plan shape places the final projection
/// in a *separate* physical stage that can peel off into a per-query
/// residual. Mirrors the planner's shell peel: transducers, table
/// EXISTS and windowed EXISTS end in a standalone `Project`; dedup has
/// no projection and aggregates/SEQ detectors fuse theirs into the
/// operator.
pub fn splits_projection(plan: &LogicalPlan) -> bool {
    let mut core = plan;
    loop {
        match core {
            LogicalPlan::Project { input, .. } | LogicalPlan::Filter { input, .. } => {
                core = input;
            }
            LogicalPlan::Source { .. }
            | LogicalPlan::Window { .. }
            | LogicalPlan::Lookup { .. }
            | LogicalPlan::SemiJoin { .. } => return true,
            LogicalPlan::Dedup { .. } | LogicalPlan::Aggregate { .. } | LogicalPlan::Seq(_) => {
                return false
            }
        }
    }
}

/// Drop the shell `Project` nodes (keeping shell filters in place) —
/// the shared prefix of a splitting plan.
fn strip_shell_projects(p: &LogicalPlan) -> LogicalPlan {
    match p {
        LogicalPlan::Project { input, .. } => strip_shell_projects(input),
        LogicalPlan::Filter { input, predicates } => LogicalPlan::Filter {
            input: Box::new(strip_shell_projects(input)),
            predicates: predicates.clone(),
        },
        other => other.clone(),
    }
}

fn canon_items(sel: &SelectStmt, m: &HashMap<String, String>) -> String {
    let mut s = String::from("items=[");
    for (i, item) in sel.items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => s.push('*'),
            // Output aliases are cosmetic (rows carry no column names
            // past a projection), so only the expression participates.
            SelectItem::Expr { expr, .. } => s.push_str(&canon_expr(expr, m).to_string()),
        }
    }
    s.push(']');
    s
}

/// Fingerprint the *entire* optimized plan (projection included). Equal
/// full fingerprints mean the canonicalized plans are structurally
/// identical — the property the plan-IR tests check.
pub fn full_fingerprint(sel: &SelectStmt, plan: &LogicalPlan) -> Fingerprint {
    let m = alias_map(sel);
    let mut canon = canon_plan(plan, &m).render();
    canon.push_str(&canon_items(sel, &m));
    Fingerprint {
        hash: fnv1a(canon.as_bytes()),
        canon,
    }
}

/// Fingerprint the *shared* part of the plan: for splitting shapes the
/// shell projection is peeled (it becomes the per-query residual); for
/// fused shapes the whole plan plus the select list is covered, since
/// the projection is baked into the shared operator.
pub fn shared_fingerprint(sel: &SelectStmt, plan: &LogicalPlan) -> Fingerprint {
    let m = alias_map(sel);
    let canon = if splits_projection(plan) {
        canon_plan(&strip_shell_projects(plan), &m).render()
    } else {
        let mut c = canon_plan(plan, &m).render();
        c.push_str(&canon_items(sel, &m));
        c
    };
    Fingerprint {
        hash: fnv1a(canon.as_bytes()),
        canon,
    }
}
