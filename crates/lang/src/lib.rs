//! # eslev-lang — the ESL-EV query language front-end
//!
//! Parses and plans the SQL-based stream language of the paper: standard
//! continuous SQL (transducers, windowed aggregation, stream-DB spanning
//! queries) extended with the temporal event operators `SEQ`,
//! `EXCEPTION_SEQ` and `CLEVEL_SEQ`, star sequences with `FIRST` / `LAST`
//! / `COUNT` aggregates and the `previous` operator, `MODE` clauses, and
//! the §3.2 window extensions (`FOLLOWING`, `PRECEDING AND FOLLOWING`,
//! windows synchronized across sub-query boundaries).
//!
//! Every example query in the paper parses and runs verbatim (modulo
//! whitespace); see the crate tests and `tests/` at the workspace root.
//!
//! ```
//! use eslev_dsms::prelude::*;
//! use eslev_lang::execute_script;
//!
//! let mut engine = Engine::new();
//! let outcomes = execute_script(
//!     &mut engine,
//!     "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
//!      SELECT tag_id FROM readings WHERE reader_id = 'dock-1';",
//! )
//! .unwrap();
//! let rows = outcomes[1].collector().unwrap().clone();
//! engine
//!     .push(
//!         "readings",
//!         vec![Value::str("dock-1"), Value::str("tag-7"), Value::Ts(Timestamp::from_secs(1))],
//!     )
//!     .unwrap();
//! assert_eq!(rows.take()[0].value(0), &Value::str("tag-7"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adhoc;
pub mod ast;
pub mod fingerprint;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod scope;
pub mod token;

pub use adhoc::ad_hoc;
pub use fingerprint::{full_fingerprint, shared_fingerprint, Fingerprint};
pub use plan::{build_logical, rewrite_logical, LogicalPlan};
pub use planner::{
    execute, execute_script, explain, explain_analyze, register_with_sink, ExecOutcome,
};

/// One-stop imports for the language layer.
pub mod prelude {
    pub use crate::adhoc::ad_hoc;
    pub use crate::ast::{SelectStmt, Statement};
    pub use crate::fingerprint::{full_fingerprint, shared_fingerprint, Fingerprint};
    pub use crate::parser::{parse_script, parse_statement};
    pub use crate::planner::{
        execute, execute_script, explain, explain_analyze, register_with_sink, ExecOutcome,
    };
}
