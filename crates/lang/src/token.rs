//! Tokens and the lexer for ESL-EV query text.
//!
//! The token set is classic SQL plus the ESL-EV additions: bracketed
//! window specs (`OVER [30 MINUTES PRECEDING C4]`), the `MODE` clause,
//! star arguments inside `SEQ(...)`, and time-unit suffixed numbers.
//! Keywords are case-insensitive; identifiers are lower-cased at lexing
//! time (SQL folding).

use eslev_dsms::error::{DsmsError, Result};
use std::fmt;

/// One lexed token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub kind: TokenKind,
    /// Byte offset in the query text.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (lower-cased; keyword-ness is contextual).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=` (also accepts the paper's typeset `≤`)
    Le,
    /// `>`
    Gt,
    /// `>=` (also accepts `≥`)
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lex a full query text into tokens (with a trailing `Eof`).
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    // Track byte offset separately from char index for error reporting.
    let mut offset = 0usize;
    macro_rules! push {
        ($kind:expr, $start:expr) => {
            tokens.push(Token {
                kind: $kind,
                offset: $start,
            })
        };
    }
    while i < bytes.len() {
        let c = bytes[i];
        let start = offset;
        match c {
            c if c.is_whitespace() => {
                i += 1;
                offset += c.len_utf8();
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '-' => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != '\n' {
                    offset += bytes[i].len_utf8();
                    i += 1;
                }
            }
            '(' => {
                push!(TokenKind::LParen, start);
                i += 1;
                offset += 1;
            }
            ')' => {
                push!(TokenKind::RParen, start);
                i += 1;
                offset += 1;
            }
            '[' => {
                push!(TokenKind::LBracket, start);
                i += 1;
                offset += 1;
            }
            ']' => {
                push!(TokenKind::RBracket, start);
                i += 1;
                offset += 1;
            }
            ',' => {
                push!(TokenKind::Comma, start);
                i += 1;
                offset += 1;
            }
            '.' => {
                push!(TokenKind::Dot, start);
                i += 1;
                offset += 1;
            }
            ';' => {
                push!(TokenKind::Semi, start);
                i += 1;
                offset += 1;
            }
            '*' => {
                push!(TokenKind::Star, start);
                i += 1;
                offset += 1;
            }
            '+' => {
                push!(TokenKind::Plus, start);
                i += 1;
                offset += 1;
            }
            '-' => {
                push!(TokenKind::Minus, start);
                i += 1;
                offset += 1;
            }
            '/' => {
                push!(TokenKind::Slash, start);
                i += 1;
                offset += 1;
            }
            '%' => {
                push!(TokenKind::Percent, start);
                i += 1;
                offset += 1;
            }
            '=' => {
                push!(TokenKind::Eq, start);
                i += 1;
                offset += 1;
            }
            '≤' => {
                push!(TokenKind::Le, start);
                i += 1;
                offset += c.len_utf8();
            }
            '≥' => {
                push!(TokenKind::Ge, start);
                i += 1;
                offset += c.len_utf8();
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                push!(TokenKind::Ne, start);
                i += 2;
                offset += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push!(TokenKind::Le, start);
                    i += 2;
                    offset += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    push!(TokenKind::Ne, start);
                    i += 2;
                    offset += 2;
                } else {
                    push!(TokenKind::Lt, start);
                    i += 1;
                    offset += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                    push!(TokenKind::Ge, start);
                    i += 2;
                    offset += 2;
                } else {
                    push!(TokenKind::Gt, start);
                    i += 1;
                    offset += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                offset += 1;
                let mut closed = false;
                while i < bytes.len() {
                    if bytes[i] == '\'' {
                        // '' escapes a quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                            offset += 2;
                        } else {
                            i += 1;
                            offset += 1;
                            closed = true;
                            break;
                        }
                    } else {
                        s.push(bytes[i]);
                        offset += bytes[i].len_utf8();
                        i += 1;
                    }
                }
                if !closed {
                    return Err(DsmsError::parse(format!(
                        "unterminated string literal at offset {start}"
                    )));
                }
                push!(TokenKind::Str(s), start);
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    text.push(bytes[i]);
                    i += 1;
                    offset += 1;
                }
                // Float only when a digit follows the dot (so `20.%` and
                // EPC-ish literals lex as Int Dot ...).
                if i + 1 < bytes.len() && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                    text.push('.');
                    i += 1;
                    offset += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        text.push(bytes[i]);
                        i += 1;
                        offset += 1;
                    }
                    let v: f64 = text
                        .parse()
                        .map_err(|_| DsmsError::parse(format!("bad float `{text}`")))?;
                    push!(TokenKind::Float(v), start);
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| DsmsError::parse(format!("bad integer `{text}`")))?;
                    push!(TokenKind::Int(v), start);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    text.push(bytes[i]);
                    offset += bytes[i].len_utf8();
                    i += 1;
                }
                push!(TokenKind::Ident(text.to_ascii_lowercase()), start);
            }
            other => {
                return Err(DsmsError::parse(format!(
                    "unexpected character `{other}` at offset {start}"
                )));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select() {
        let k = kinds("SELECT * FROM readings;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Star,
                TokenKind::Ident("from".into()),
                TokenKind::Ident("readings".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_and_unicode_le() {
        let k = kinds("a <= b ≤ c <> d != e >= f ≥ g");
        let ops: Vec<&TokenKind> = k
            .iter()
            .filter(|t| matches!(t, TokenKind::Le | TokenKind::Ne | TokenKind::Ge))
            .collect();
        assert_eq!(ops.len(), 6);
    }

    #[test]
    fn string_literals_with_escape() {
        let k = kinds("'20.%.%' 'it''s'");
        assert_eq!(k[0], TokenKind::Str("20.%.%".into()));
        assert_eq!(k[1], TokenKind::Str("it's".into()));
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("4.25")[0], TokenKind::Float(4.25));
        // `1.%` is Int Dot Percent (EPC-pattern-ish), not a float.
        assert_eq!(
            kinds("1.%")[..3],
            [TokenKind::Int(1), TokenKind::Dot, TokenKind::Percent]
        );
    }

    #[test]
    fn window_brackets() {
        let k = kinds("OVER [30 MINUTES PRECEDING C4]");
        assert_eq!(k[1], TokenKind::LBracket);
        assert_eq!(k[2], TokenKind::Int(30));
        assert_eq!(k[3], TokenKind::Ident("minutes".into()));
        assert_eq!(k[6], TokenKind::RBracket);
    }

    #[test]
    fn identifiers_fold_case() {
        assert_eq!(kinds("SeQ")[0], TokenKind::Ident("seq".into()));
        assert_eq!(kinds("Tag_ID")[0], TokenKind::Ident("tag_id".into()));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT -- the whole row\n *");
        assert_eq!(k.len(), 3);
        assert_eq!(k[1], TokenKind::Star);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT @").is_err());
    }

    #[test]
    fn offsets_track_source() {
        let toks = lex("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }
}
