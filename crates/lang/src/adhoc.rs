//! Ad-hoc snapshot queries (§2.1 of the paper).
//!
//! A one-shot `SELECT` evaluated *now*, against a table or against a
//! stream's [materialized window] — the paper's example is a physician
//! querying a patient's current location directly from the location
//! stream, with no persistent store in the loop.
//!
//! Supported shape: single-relation `SELECT` with WHERE, projection,
//! GROUP BY and aggregates. The relation is a table, or a stream with a
//! materialized window registered via [`Engine::materialize`].
//!
//! [materialized window]: eslev_dsms::snapshot::MaterializedWindow

use crate::ast::{AstExpr, SelectItem, SelectStmt, Statement};
use crate::scope::{compile_scalar, Scope};
use eslev_dsms::agg::Accumulator;
use eslev_dsms::engine::Engine;
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::expr::Expr;
use eslev_dsms::tuple::Tuple;
use eslev_dsms::value::Value;
use std::collections::HashMap;

/// Parse and run an ad-hoc snapshot query; returns the result rows.
pub fn ad_hoc(engine: &Engine, sql: &str) -> Result<Vec<Tuple>> {
    let stmt = crate::parser::parse_statement(sql)?;
    let Statement::Select(sel) = stmt else {
        return Err(DsmsError::plan("ad-hoc queries are SELECT statements"));
    };
    run_select(engine, &sel)
}

fn source_rows(engine: &Engine, name: &str) -> Result<(Vec<Tuple>, eslev_dsms::schema::SchemaRef)> {
    if let Ok(table) = engine.table(name) {
        return Ok((table.scan(), table.schema().clone()));
    }
    if let Some(snap) = engine.snapshot_of(name) {
        return Ok((snap.snapshot(), snap.schema().clone()));
    }
    if engine.stream_schema(name).is_ok() {
        return Err(DsmsError::plan(format!(
            "stream `{name}` has no materialized window; call Engine::materialize first"
        )));
    }
    Err(DsmsError::unknown(format!("relation `{name}`")))
}

fn run_select(engine: &Engine, sel: &SelectStmt) -> Result<Vec<Tuple>> {
    if sel.from.len() != 1 {
        return Err(DsmsError::plan("ad-hoc queries read one relation"));
    }
    let mut rows = run_core(engine, sel)?;
    if !sel.order_by.is_empty() {
        let item = &sel.from[0];
        // ORDER BY keys are evaluated over the *output* rows when they
        // are plain positions in the select list, else over the source
        // schema — keep it simple and correct: order by output column
        // name resolution against the select aliases is out of scope;
        // we sort on expressions over the source rows only for `*`
        // projections, and on output column indexes (1-based integers)
        // otherwise, matching classic SQL positional ORDER BY.
        let positional: Option<Vec<(usize, bool)>> = sel
            .order_by
            .iter()
            .map(|(e, desc)| match e {
                AstExpr::Lit(Value::Int(i)) if *i >= 1 => Some((*i as usize - 1, *desc)),
                _ => None,
            })
            .collect();
        match positional {
            Some(keys) => {
                rows.sort_by(|a, b| {
                    for (i, desc) in &keys {
                        let ord = match (a.get(*i), b.get(*i)) {
                            (Some(x), Some(y)) => x.sql_cmp(y).unwrap_or(std::cmp::Ordering::Equal),
                            (None, None) => std::cmp::Ordering::Equal,
                            (None, Some(_)) => std::cmp::Ordering::Less,
                            (Some(_), None) => std::cmp::Ordering::Greater,
                        };
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
            }
            None => {
                // Expression keys over the source schema: only valid for
                // `SELECT *` (output row = source row).
                if !matches!(sel.items[..], [SelectItem::Wildcard]) {
                    return Err(DsmsError::plan(
                        "ORDER BY expressions require `SELECT *`; use positional ORDER BY (1, 2, ...) otherwise",
                    ));
                }
                let (_, schema) = source_rows(engine, &item.name)?;
                let scope = Scope::new(vec![(item.binding().to_string(), schema)]);
                let keys: Vec<(Expr, bool)> = sel
                    .order_by
                    .iter()
                    .map(|(e, d)| Ok((compile_scalar(e, &scope, engine.functions())?, *d)))
                    .collect::<Result<_>>()?;
                let mut err = None;
                rows.sort_by(|a, b| {
                    for (e, desc) in &keys {
                        let (x, y) = match (e.eval(&[a]), e.eval(&[b])) {
                            (Ok(x), Ok(y)) => (x, y),
                            (Err(e), _) | (_, Err(e)) => {
                                err.get_or_insert(e);
                                return std::cmp::Ordering::Equal;
                            }
                        };
                        let ord = x.sql_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
        }
    }
    if let Some(n) = sel.limit {
        rows.truncate(n);
    }
    Ok(rows)
}

fn run_core(engine: &Engine, sel: &SelectStmt) -> Result<Vec<Tuple>> {
    let item = &sel.from[0];
    let (rows, schema) = source_rows(engine, &item.name)?;
    let scope = Scope::new(vec![(item.binding().to_string(), schema)]);

    // Filter.
    let filtered: Vec<Tuple> = match &sel.where_clause {
        None => rows,
        Some(w) => {
            let pred = compile_scalar(w, &scope, engine.functions())?;
            let mut kept = Vec::new();
            for r in rows {
                if pred.eval_bool(&[&r])? {
                    kept.push(r);
                }
            }
            kept
        }
    };

    // Split the select list into group columns and aggregates.
    enum Col {
        Group(Expr),
        Agg(eslev_dsms::agg::AggregateRef, Expr),
    }
    let mut cols = Vec::new();
    let mut has_agg = false;
    for it in &sel.items {
        match it {
            SelectItem::Wildcard => {
                if sel.items.len() != 1 {
                    return Err(DsmsError::plan("mixed `*` and columns"));
                }
                return Ok(filtered);
            }
            SelectItem::Expr { expr, .. } => match expr {
                AstExpr::Call { name, args }
                    if engine.aggregates().get(name).is_some()
                        && engine.functions().get(name).is_none()
                        && args.len() == 1 =>
                {
                    has_agg = true;
                    cols.push(Col::Agg(
                        engine.aggregates().get(name).expect("checked"),
                        compile_scalar(&args[0], &scope, engine.functions())?,
                    ));
                }
                other => cols.push(Col::Group(compile_scalar(
                    other,
                    &scope,
                    engine.functions(),
                )?)),
            },
        }
    }

    if !has_agg {
        // Plain projection.
        let mut out = Vec::with_capacity(filtered.len());
        for r in &filtered {
            let mut vals = Vec::with_capacity(cols.len());
            for c in &cols {
                let Col::Group(e) = c else { unreachable!() };
                vals.push(e.eval(&[r])?);
            }
            out.push(Tuple::new(vals, r.ts(), r.seq()));
        }
        return Ok(out);
    }

    // Grouped (or scalar) aggregation over the snapshot.
    let group_compiled: Vec<Expr> = sel
        .group_by
        .iter()
        .map(|g| compile_scalar(g, &scope, engine.functions()))
        .collect::<Result<Vec<_>>>()?;
    // When GROUP BY is absent, non-aggregate select items act as the
    // grouping, matching the continuous planner's behaviour.
    let groups: Vec<&Expr> = if !sel.group_by.is_empty() {
        group_compiled.iter().collect()
    } else {
        cols.iter()
            .filter_map(|c| match c {
                Col::Group(e) => Some(e),
                Col::Agg(..) => None,
            })
            .collect()
    };

    type GroupAcc = (Vec<Box<dyn Accumulator>>, Tuple);
    let mut acc: HashMap<Vec<Value>, GroupAcc> = HashMap::new();
    for r in &filtered {
        let key: Vec<Value> = groups.iter().map(|e| e.eval(&[r])).collect::<Result<_>>()?;
        let entry = acc.entry(key).or_insert_with(|| {
            (
                cols.iter()
                    .filter_map(|c| match c {
                        Col::Agg(a, _) => Some(a.init()),
                        Col::Group(_) => None,
                    })
                    .collect(),
                r.clone(),
            )
        });
        let mut ai = 0;
        for c in &cols {
            if let Col::Agg(_, arg) = c {
                entry.0[ai].iterate(&arg.eval(&[r])?)?;
                ai += 1;
            }
        }
    }
    // Scalar aggregation over zero rows still yields one row.
    if acc.is_empty() && groups.is_empty() {
        let accs: Vec<Box<dyn Accumulator>> = cols
            .iter()
            .filter_map(|c| match c {
                Col::Agg(a, _) => Some(a.init()),
                Col::Group(_) => None,
            })
            .collect();
        let vals: Vec<Value> = accs.iter().map(|a| a.terminate()).collect();
        return Ok(vec![Tuple::new(vals, eslev_dsms::time::Timestamp::ZERO, 0)]);
    }
    let mut out: Vec<Tuple> = Vec::with_capacity(acc.len());
    for (_, (accs, repr)) in acc {
        let mut vals = Vec::with_capacity(cols.len());
        let mut ai = 0;
        for c in &cols {
            match c {
                Col::Group(e) => vals.push(e.eval(&[&repr])?),
                Col::Agg(..) => {
                    vals.push(accs[ai].terminate());
                    ai += 1;
                }
            }
        }
        out.push(Tuple::new(vals, repr.ts(), repr.seq()));
    }
    out.sort_by_key(|t| (t.ts(), t.seq()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslev_dsms::prelude::*;

    fn setup() -> Engine {
        let mut e = Engine::new();
        crate::planner::execute_script(
            &mut e,
            "CREATE STREAM tag_locations (readerid VARCHAR, tid VARCHAR, tagtime TIMESTAMP, loc VARCHAR)",
        )
        .unwrap();
        e.materialize(
            "tag_locations",
            WindowExtent::Preceding(Duration::from_mins(10)),
        )
        .unwrap();
        let row = |tid: &str, loc: &str, secs: u64| {
            vec![
                Value::str("r"),
                Value::str(tid),
                Value::Ts(Timestamp::from_secs(secs)),
                Value::str(loc),
            ]
        };
        let mut push = |tid, loc, secs| {
            e.push("tag_locations", row(tid, loc, secs)).unwrap();
        };
        push("patient-7", "ward-2", 10);
        push("patient-9", "icu", 30);
        push("patient-7", "radiology", 400);
        e
    }

    #[test]
    fn snapshot_filter_and_project() {
        let e = setup();
        // "Where is patient 7 right now?"
        let rows = ad_hoc(
            &e,
            "SELECT loc, tagtime FROM tag_locations WHERE tid = 'patient-7'",
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.last().unwrap().value(0), &Value::str("radiology"));
    }

    #[test]
    fn snapshot_respects_window_expiry() {
        let mut e = setup();
        // Advance far: the 10-minute window drops everything.
        e.advance_to(Timestamp::from_secs(10_000)).unwrap();
        let rows = ad_hoc(&e, "SELECT * FROM tag_locations").unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn scalar_and_grouped_aggregates() {
        let e = setup();
        let rows = ad_hoc(&e, "SELECT count(tid) FROM tag_locations").unwrap();
        assert_eq!(rows[0].value(0), &Value::Int(3));
        let rows = ad_hoc(&e, "SELECT tid, count(loc) FROM tag_locations GROUP BY tid").unwrap();
        assert_eq!(rows.len(), 2);
        let seven = rows
            .iter()
            .find(|r| r.value(0) == &Value::str("patient-7"))
            .unwrap();
        assert_eq!(seven.value(1), &Value::Int(2));
    }

    #[test]
    fn scalar_aggregate_over_empty_snapshot() {
        let mut e = Engine::new();
        crate::planner::execute_script(&mut e, "CREATE STREAM s (tid VARCHAR, t TIMESTAMP)")
            .unwrap();
        e.materialize("s", WindowExtent::Unbounded).unwrap();
        let rows = ad_hoc(&e, "SELECT count(tid) FROM s").unwrap();
        assert_eq!(rows[0].value(0), &Value::Int(0));
    }

    #[test]
    fn tables_are_queryable_too() {
        let mut e = Engine::new();
        crate::planner::execute_script(&mut e, "CREATE TABLE ctx (tagid VARCHAR, product VARCHAR)")
            .unwrap();
        e.table("ctx")
            .unwrap()
            .insert(vec![Value::str("t1"), Value::str("pump")])
            .unwrap();
        let rows = ad_hoc(&e, "SELECT product FROM ctx WHERE tagid = 't1'").unwrap();
        assert_eq!(rows[0].value(0), &Value::str("pump"));
    }

    #[test]
    fn unmaterialized_stream_is_a_clear_error() {
        let mut e = Engine::new();
        crate::planner::execute_script(&mut e, "CREATE STREAM s (tid VARCHAR, t TIMESTAMP)")
            .unwrap();
        let err = ad_hoc(&e, "SELECT * FROM s").unwrap_err();
        assert!(err.to_string().contains("materialize"));
        let err = ad_hoc(&e, "SELECT * FROM nothere").unwrap_err();
        assert!(err.to_string().contains("relation"));
    }
}

#[cfg(test)]
mod order_limit_tests {
    use super::*;
    use eslev_dsms::prelude::*;

    fn setup() -> Engine {
        let mut e = Engine::new();
        crate::planner::execute_script(
            &mut e,
            "CREATE STREAM vitals (patient VARCHAR, bp INT, t TIMESTAMP)",
        )
        .unwrap();
        e.materialize("vitals", WindowExtent::Unbounded).unwrap();
        for (i, (p, bp)) in [("a", 120i64), ("b", 180), ("a", 95), ("c", 140)]
            .iter()
            .enumerate()
        {
            e.push(
                "vitals",
                vec![
                    Value::str(*p),
                    Value::Int(*bp),
                    Value::Ts(Timestamp::from_secs(i as u64)),
                ],
            )
            .unwrap();
        }
        e
    }

    #[test]
    fn order_by_expression_with_wildcard() {
        let e = setup();
        // The physician's "latest reading first".
        let rows = ad_hoc(&e, "SELECT * FROM vitals ORDER BY bp DESC LIMIT 2").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].value(1), &Value::Int(180));
        assert_eq!(rows[1].value(1), &Value::Int(140));
    }

    #[test]
    fn positional_order_by_on_projection() {
        let e = setup();
        let rows = ad_hoc(&e, "SELECT patient, bp FROM vitals ORDER BY 2 DESC LIMIT 1").unwrap();
        assert_eq!(rows[0].value(0), &Value::str("b"));
        // Numeric, not lexicographic: 95 sorts below 140.
        let rows = ad_hoc(&e, "SELECT patient, bp FROM vitals ORDER BY 2").unwrap();
        assert_eq!(rows[0].value(1), &Value::Int(95));
    }

    #[test]
    fn expression_order_requires_wildcard() {
        let e = setup();
        let err = ad_hoc(&e, "SELECT patient FROM vitals ORDER BY bp").unwrap_err();
        assert!(err.to_string().contains("positional"));
    }

    #[test]
    fn continuous_queries_reject_order_by() {
        let mut e = setup();
        let err = crate::planner::execute(&mut e, "SELECT patient FROM vitals ORDER BY 1")
            .err()
            .expect("continuous ORDER BY must be rejected");
        assert!(err.to_string().contains("ad-hoc"));
    }
}
