//! The planner: compiles parsed ESL-EV statements into engine state —
//! schemas for DDL, operator pipelines + sinks for continuous queries.
//!
//! Continuous `SELECT`s compile in three phases:
//!
//! 1. **build** — [`crate::plan::build_logical`] lowers the statement to
//!    a naive [`LogicalPlan`] that names the query shape (transducer,
//!    aggregate, windowed/table EXISTS, SEQ detector) but leaves every
//!    `WHERE` conjunct in place;
//! 2. **rewrite** — [`crate::plan::rewrite_logical`] runs the named
//!    rewrite pass (predicate pushdown, SEQ conjunct classification,
//!    partition-key lifting, dedup specialization, index-probe lifting,
//!    projection pruning, state-bound annotation);
//! 3. **lower** — this module turns the *rewritten* tree into physical
//!    operators: a `SEQ` node becomes a [`DetectorOp`] whose element
//!    predicates / timing gaps / partition keys come straight off the
//!    IR, a `Dedup` node the dedicated [`Dedup`] operator (Example 1),
//!    `SemiJoin` a [`WindowExists`], `Lookup` a [`TableExists`]
//!    (Example 2), `Aggregate` a [`WindowAggregate`] (Example 3), and
//!    everything else a select/project transducer chain.
//!
//! `EXPLAIN` renders phases 1 and 2 (plus the physical summary), so what
//! it prints is exactly what runs.

use crate::ast::*;
use crate::plan::{build_logical, is_aggregate_item, rewrite_logical, LogicalPlan, SeqPlan};
use crate::scope::{compile_scalar, Scope};
use eslev_core::binding::DetectorOutput;
use eslev_core::detector::{Detector, DetectorConfig};
use eslev_core::op::DetectorOp;
use eslev_core::pattern::{Element, EventWindow, SeqPattern, WindowKind};
use eslev_dsms::engine::{Collector, Consistency, Engine, QueryId, Sink};
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::expr::Expr;
use eslev_dsms::lookup::TableExists;
use eslev_dsms::ops::{
    AggSpec, AggWindow, Chain, Dedup, Emission, OpReport, Operator, Project, Select, SemiJoinKind,
    WindowAggregate, WindowExists,
};
use eslev_dsms::schema::{Schema, SchemaRef};
use eslev_dsms::tuple::Tuple;
use eslev_dsms::value::{Value, ValueType};
use eslev_dsms::window::WindowExtent;
use std::sync::Arc;

/// Result of executing one statement.
pub enum ExecOutcome {
    /// DDL applied.
    Created,
    /// One-shot UPDATE/DELETE applied to this many rows.
    Modified(usize),
    /// Continuous query registered with a stream/table sink.
    Registered(QueryId),
    /// Bare SELECT registered; results accumulate in the collector.
    Collected(QueryId, Collector),
}

impl ExecOutcome {
    /// The collector, when this outcome has one.
    pub fn collector(&self) -> Option<&Collector> {
        match self {
            ExecOutcome::Collected(_, c) => Some(c),
            _ => None,
        }
    }
}

/// Parse and execute a whole `;`-separated script.
pub fn execute_script(engine: &mut Engine, sql: &str) -> Result<Vec<ExecOutcome>> {
    let stmts = crate::parser::parse_script(sql)?;
    let mut outcomes = Vec::with_capacity(stmts.len());
    for stmt in &stmts {
        outcomes.push(apply(engine, stmt)?);
    }
    Ok(outcomes)
}

/// Parse and execute exactly one statement.
pub fn execute(engine: &mut Engine, sql: &str) -> Result<ExecOutcome> {
    let stmt = crate::parser::parse_statement(sql)?;
    apply(engine, &stmt)
}

/// Plan a statement without registering it and describe the plan: the
/// naive logical tree, the rewrites that fired, the rewritten tree, and
/// the physical summary (operator + feeding streams). DDL statements
/// describe the schema they would create.
pub fn explain(engine: &Engine, sql: &str) -> Result<String> {
    let stmt = crate::parser::parse_statement(sql)?;
    Ok(match &stmt {
        Statement::CreateStream { name, columns } => {
            format!("CREATE STREAM {name} ({} columns)", columns.len())
        }
        Statement::CreateTable { name, columns } => {
            format!("CREATE TABLE {name} ({} columns)", columns.len())
        }
        Statement::InsertInto { target, select } => {
            explain_select(engine, select, &format!("INSERT INTO {target}"))?
        }
        Statement::Select(select) => explain_select(engine, select, "collect")?,
        Statement::Update { table, sets, .. } => {
            format!("UPDATE {table} ({} assignments)", sets.len())
        }
        Statement::Delete { table, .. } => format!("DELETE FROM {table}"),
    })
}

fn explain_select(engine: &Engine, sel: &SelectStmt, sink: &str) -> Result<String> {
    let (naive, optimized, applied) = plan_logical(engine, sel)?;
    let mut plan = lower(engine, sel, optimized.clone())?;
    // Freshly lowered operators default to a raw codec; bind the
    // engine's so capability reflects what registration would produce
    // (dedup's kernel needs the interned codec).
    plan.op.bind_interner(engine.key_codec());
    let mut s = String::from("logical:\n");
    s.push_str(&naive.render());
    if applied.is_empty() {
        s.push_str("rewrites: (none)\n");
    } else {
        s.push_str(&format!("rewrites: {}\n", applied.join(", ")));
        s.push_str("optimized:\n");
        s.push_str(&optimized.render());
    }
    s.push_str(&format!(
        "physical: {} <- [{}] {} -> {sink}",
        plan.name,
        plan.sources.join(", "),
        plan.op.name(),
    ));
    s.push_str(&format!(
        "\ncolumnar: {}",
        if engine.columnar() && plan.op.columnar_capable() {
            "yes"
        } else {
            "row"
        }
    ));
    if engine.shared_execution() {
        let fp = crate::fingerprint::shared_fingerprint(sel, &optimized);
        s.push_str(&format!("\nshared: fingerprint=0x{:016x}", fp.hash));
        if let Some(subs) = engine.shared_subscribers(fp.hash, &fp.canon) {
            s.push_str(&format!(" shared_by=[{}]", subs.join(", ")));
        }
    }
    Ok(s)
}

/// `EXPLAIN ANALYZE`: the optimized logical plan annotated per node with
/// the live runtime stats (rows in/out, batch count, sampled wall time,
/// state bytes) of the registered query the statement lowers to, plus
/// the raw per-operator report tree. `input` is either a SELECT /
/// INSERT statement — the query must already be registered, since the
/// analysis reads its counters — or the name of a registered query, in
/// which case only the runtime tree is rendered.
pub fn explain_analyze(engine: &Engine, input: &str) -> Result<String> {
    let input = input.trim();
    if let Some(r) = engine.query_report_by_name(input) {
        return Ok(format!("query: {input}\nruntime:\n{}", indent_report(&r)));
    }
    let stmt = crate::parser::parse_statement(input)?;
    let sel = match &stmt {
        Statement::Select(s) => s,
        Statement::InsertInto { select, .. } => select,
        _ => {
            return Err(DsmsError::plan(
                "EXPLAIN ANALYZE takes a SELECT/INSERT statement or a registered query name",
            ))
        }
    };
    let (_, optimized, applied) = plan_logical(engine, sel)?;
    let lowered = lower(engine, sel, optimized.clone())?;
    let report = engine.query_report_by_name(&lowered.name).ok_or_else(|| {
        DsmsError::unknown(format!(
            "registered query `{}` — EXPLAIN ANALYZE reads live runtime stats, \
             so register (execute) the query and feed it first",
            lowered.name
        ))
    })?;
    // Pre-order flatten; each logical node claims the first unclaimed
    // report whose operator name matches its shape (exact stage name
    // first, then a fused-operator head like `exists -> project`).
    let mut flat: Vec<&OpReport> = Vec::new();
    flatten_report(&report, &mut flat);
    let mut claimed = vec![false; flat.len()];
    let mut s = String::from("optimized:\n");
    s.push_str(&optimized.render_with(&mut |node| {
        let want = physical_name_of(node)?;
        let idx = flat
            .iter()
            .enumerate()
            .position(|(i, r)| !claimed[i] && r.name == want)
            .or_else(|| {
                flat.iter()
                    .enumerate()
                    .position(|(i, r)| !claimed[i] && r.name.split(" -> ").next() == Some(want))
            })?;
        claimed[idx] = true;
        Some(analyze_annotation(flat[idx], engine.columnar()))
    }));
    if !applied.is_empty() {
        s.push_str(&format!("rewrites: {}\n", applied.join(", ")));
    }
    if engine.shared_execution() {
        let fp = crate::fingerprint::shared_fingerprint(sel, &optimized);
        if let Some(subs) = engine.shared_subscribers(fp.hash, &fp.canon) {
            s.push_str(&format!(
                "shared: fingerprint=0x{:016x} shared_by=[{}]\n",
                fp.hash,
                subs.join(", ")
            ));
        }
    }
    s.push_str(&format!("runtime: query `{}`\n", lowered.name));
    s.push_str(&indent_report(&report));
    Ok(s)
}

fn flatten_report<'a>(r: &'a OpReport, out: &mut Vec<&'a OpReport>) {
    out.push(r);
    for c in &r.children {
        flatten_report(c, out);
    }
}

/// The physical operator name a logical node lowers to (`None` for
/// nodes with no operator of their own: sources, windows).
fn physical_name_of(node: &LogicalPlan) -> Option<&'static str> {
    Some(match node {
        LogicalPlan::Dedup { .. } => "dedup",
        LogicalPlan::Filter { .. } => "select",
        LogicalPlan::Project { .. } => "project",
        LogicalPlan::Lookup { negated, .. } => {
            if *negated {
                "table-not-exists"
            } else {
                "table-exists"
            }
        }
        LogicalPlan::SemiJoin { negated, .. } => {
            if *negated {
                "not-exists"
            } else {
                "exists"
            }
        }
        LogicalPlan::Aggregate { .. } => "aggregate",
        LogicalPlan::Seq(_) => "seq-detector",
        LogicalPlan::Source { .. } | LogicalPlan::Window { .. } => return None,
    })
}

/// The bracketed runtime annotation appended to a plan line.
/// `columnar_on` is the engine's effective columnar mode: a stage runs
/// its kernel only when the engine hands out columnar batches *and* the
/// operator declared a kernel for its configuration.
fn analyze_annotation(r: &OpReport, columnar_on: bool) -> String {
    let mut s = format!("  [rows {} -> {}", r.tuples_in, r.tuples_out);
    if r.batches > 0 {
        s.push_str(&format!(", batches {}", r.batches));
    }
    if let Some(w) = &r.wall_ns {
        if w.count > 0 {
            s.push_str(&format!(", wall p50 {}ns", w.quantile(0.5)));
        }
    }
    if r.state_bytes > 0 {
        s.push_str(&format!(", state {}B", r.state_bytes));
    }
    if let Some(capable) = r.columnar {
        s.push_str(&format!(
            ", columnar={}",
            if columnar_on && capable { "yes" } else { "row" }
        ));
    }
    s.push_str(&format!(", retained {}]", r.retained));
    s
}

fn indent_report(r: &OpReport) -> String {
    r.render().lines().map(|l| format!("  {l}\n")).collect()
}

fn apply(engine: &mut Engine, stmt: &Statement) -> Result<ExecOutcome> {
    match stmt {
        Statement::CreateStream { name, columns } => {
            let time_col = columns
                .iter()
                .find(|(_, ty)| *ty == ValueType::Ts)
                .map(|(n, _)| n.clone())
                .ok_or_else(|| {
                    DsmsError::schema(format!(
                        "stream `{name}` needs a TIMESTAMP column for event time"
                    ))
                })?;
            let cols: Vec<(&str, ValueType)> =
                columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let schema = Arc::new(Schema::new(name.clone(), cols, Some(&time_col))?);
            engine.create_stream(schema)?;
            Ok(ExecOutcome::Created)
        }
        Statement::CreateTable { name, columns } => {
            let cols: Vec<(&str, ValueType)> =
                columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let schema = Arc::new(Schema::new(name.clone(), cols, None)?);
            engine.create_table(schema)?;
            Ok(ExecOutcome::Created)
        }
        Statement::InsertInto { target, select } => {
            let sink = if engine.stream_schema(target).is_ok() {
                Sink::Stream(target.clone())
            } else if engine.table(target).is_ok() {
                Sink::Table(target.clone())
            } else {
                return Err(DsmsError::unknown(format!("insert target `{target}`")));
            };
            let id = register_select(engine, select, sink)?;
            Ok(ExecOutcome::Registered(id))
        }
        Statement::Select(select) => {
            let c = Collector::new();
            let id = register_select(engine, select, Sink::Collect(c.clone()))?;
            Ok(ExecOutcome::Collected(id, c))
        }
        Statement::Update {
            table,
            sets,
            where_clause,
        } => {
            let t = engine.table(table)?;
            let scope = Scope::new(vec![(table.clone(), t.schema().clone())]);
            let pred = match where_clause {
                None => Expr::lit(true),
                Some(w) => compile_scalar(w, &scope, engine.functions())?,
            };
            let mut total = 0;
            for (col, expr) in sets {
                let value = compile_scalar(expr, &scope, engine.functions())?;
                total = t.update_map(&pred, col, |row| value.eval(&[row]))?;
            }
            Ok(ExecOutcome::Modified(total))
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let t = engine.table(table)?;
            let scope = Scope::new(vec![(table.clone(), t.schema().clone())]);
            let pred = match where_clause {
                None => Expr::lit(true),
                Some(w) => compile_scalar(w, &scope, engine.functions())?,
            };
            Ok(ExecOutcome::Modified(t.delete(&pred)?))
        }
    }
}

struct Plan {
    name: String,
    sources: Vec<String>,
    op: Box<dyn Operator>,
}

/// A lowered plan split for shared execution: the (shareable) core and
/// the per-query residual stage, when the shape has one.
struct SplitPlan {
    core: Plan,
    residual: Option<Box<dyn Operator>>,
}

impl SplitPlan {
    fn unsplit(core: Plan) -> SplitPlan {
        SplitPlan {
            core,
            residual: None,
        }
    }
}

/// Register a continuous `SELECT` (or the select of an `INSERT INTO`)
/// with an explicit sink — the programmatic twin of [`execute`] for
/// harnesses that fan out many queries without wanting a collector per
/// query (pass [`Sink::Discard`]). Honors the engine's shared-execution
/// setting exactly like [`execute`].
pub fn register_with_sink(engine: &mut Engine, sql: &str, sink: Sink) -> Result<QueryId> {
    let stmt = crate::parser::parse_statement(sql)?;
    let sel = match &stmt {
        Statement::Select(s) => s,
        Statement::InsertInto { select, .. } => select,
        _ => {
            return Err(DsmsError::plan(
                "register_with_sink takes a SELECT or INSERT INTO statement",
            ))
        }
    };
    register_select(engine, sel, sink)
}

/// Register a planned SELECT, routing through the shared-subplan
/// registry when the engine has shared execution enabled.
fn register_select(engine: &mut Engine, sel: &SelectStmt, sink: Sink) -> Result<QueryId> {
    let (_, optimized, _) = plan_logical(engine, sel)?;
    let consistency = sel.consistency.unwrap_or_default();
    if consistency == Consistency::Fast {
        // A fast query's operator tree is wrapped in a speculative gate
        // whose retraction state is private to the query — it cannot
        // attach to a shared chain, whose core runs once for all
        // subscribers at the consistent level.
        let plan = lower(engine, sel, optimized)?;
        let sources: Vec<&str> = plan.sources.iter().map(|s| s.as_str()).collect();
        return engine.register_query_with(plan.name, sources, plan.op, sink, consistency);
    }
    if engine.shared_execution() {
        let fp = crate::fingerprint::shared_fingerprint(sel, &optimized);
        let split = lower_with(engine, sel, optimized, true)?;
        let sources: Vec<&str> = split.core.sources.iter().map(|s| s.as_str()).collect();
        let label = split.core.name.clone();
        // Later subscribers to the same chain get a `#n` suffix so each
        // query keeps a distinguishable name in stats / EXPLAIN output.
        let n = engine
            .shared_subscribers(fp.hash, &fp.canon)
            .map_or(0, |s| s.len());
        let name = if n == 0 {
            label.clone()
        } else {
            format!("{label}#{n}")
        };
        return engine.register_shared(
            name,
            sources,
            fp.hash,
            &fp.canon,
            &label,
            split.core.op,
            split.residual,
            sink,
        );
    }
    let plan = lower(engine, sel, optimized)?;
    let sources: Vec<&str> = plan.sources.iter().map(|s| s.as_str()).collect();
    engine.register_query(plan.name, sources, plan.op, sink)
}

/// Phases 1+2: naive logical plan, rewritten plan, applied rewrites.
fn plan_logical(
    engine: &Engine,
    sel: &SelectStmt,
) -> Result<(LogicalPlan, LogicalPlan, Vec<String>)> {
    if sel.from.is_empty() {
        return Err(DsmsError::plan("FROM clause is required"));
    }
    if !sel.order_by.is_empty() || sel.limit.is_some() {
        return Err(DsmsError::plan(
            "ORDER BY / LIMIT apply to ad-hoc snapshot queries (eslev_lang::ad_hoc),              not continuous ones — a stream has no final order",
        ));
    }
    let naive = build_logical(engine, sel)?;
    let (optimized, applied) = rewrite_logical(engine, sel, naive.clone())?;
    Ok((naive, optimized, applied))
}

/// Phase 3: lower the rewritten logical plan to physical operators.
fn lower(engine: &Engine, sel: &SelectStmt, plan: LogicalPlan) -> Result<Plan> {
    Ok(lower_with(engine, sel, plan, false)?.core)
}

/// Phase 3, split-aware: with `split`, shapes whose final stage is a
/// pure per-query projection return it separately as the residual, so
/// the stateful core can be shared across fingerprint-equal queries.
/// Fused shapes (dedup, aggregate, SEQ) never split — they share as a
/// whole when the full canonical form matches.
fn lower_with(
    engine: &Engine,
    sel: &SelectStmt,
    plan: LogicalPlan,
    split: bool,
) -> Result<SplitPlan> {
    // Peel the projection/filter shell: projections compile from the
    // select list (aliases and all), shell filters become the shape's
    // outer conjuncts.
    let mut outer: Vec<AstExpr> = Vec::new();
    let mut shell = plan;
    let core = loop {
        match shell {
            LogicalPlan::Project { input, .. } => shell = *input,
            LogicalPlan::Filter { input, predicates } => {
                outer.extend(predicates);
                shell = *input;
            }
            other => break other,
        }
    };
    match core {
        LogicalPlan::Seq(seq) => Ok(SplitPlan::unsplit(lower_seq(engine, sel, &seq)?)),
        LogicalPlan::Dedup { keys, window, .. } => {
            let stream = sel.from[0].name.clone();
            let key: Vec<Expr> = keys.iter().map(|(c, _)| Expr::col(*c)).collect();
            Ok(SplitPlan::unsplit(Plan {
                name: format!("dedup:{stream}"),
                sources: vec![stream],
                op: Box::new(Dedup::new(key, window)),
            }))
        }
        LogicalPlan::SemiJoin {
            outer: outer_branch,
            negated,
            ..
        } => {
            let (_, sub) = exists_parts(sel)
                .ok_or_else(|| DsmsError::plan("EXISTS sub-query missing from statement"))?;
            // Pushdown moved the outer conjuncts into the probe branch.
            let mut outer_preds: Vec<&AstExpr> = Vec::new();
            collect_filters(&outer_branch, &mut outer_preds);
            outer_preds.extend(outer.iter());
            plan_window_exists(engine, sel, negated, sub, &outer_preds, split)
        }
        LogicalPlan::Lookup {
            input,
            negated,
            probe,
            ..
        } => {
            let (_, sub) = exists_parts(sel)
                .ok_or_else(|| DsmsError::plan("EXISTS sub-query missing from statement"))?;
            let mut outer_preds: Vec<&AstExpr> = Vec::new();
            collect_filters(&input, &mut outer_preds);
            outer_preds.extend(outer.iter());
            plan_table_exists(engine, sel, negated, sub, &outer_preds, probe, split)
        }
        LogicalPlan::Aggregate { input, .. } => {
            let mut preds: Vec<&AstExpr> = Vec::new();
            collect_filters(&input, &mut preds);
            preds.extend(outer.iter());
            Ok(SplitPlan::unsplit(plan_aggregate(engine, sel, &preds)?))
        }
        LogicalPlan::Source { .. } | LogicalPlan::Window { .. } => {
            let refs: Vec<&AstExpr> = outer.iter().collect();
            plan_transducer(engine, sel, &refs, split)
        }
        LogicalPlan::Filter { .. } | LogicalPlan::Project { .. } => {
            unreachable!("shell peeling consumed filters and projections")
        }
    }
}

/// Compile the select list into a projection stage, unless it is `*`.
fn projection_stage(
    sel: &SelectStmt,
    scope: &Scope,
    engine: &Engine,
) -> Result<Option<Box<dyn Operator>>> {
    if matches!(sel.items[..], [SelectItem::Wildcard]) {
        return Ok(None);
    }
    let exprs = sel
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Wildcard => Err(DsmsError::plan("mixed `*` and columns")),
            SelectItem::Expr { expr, .. } => compile_scalar(expr, scope, engine.functions()),
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Some(Box::new(Project::new(exprs))))
}

/// Gather the predicates of every `Filter` on the chain below `plan`,
/// walking through windows, in top-down order.
fn collect_filters<'a>(plan: &'a LogicalPlan, out: &mut Vec<&'a AstExpr>) {
    match plan {
        LogicalPlan::Filter { input, predicates } => {
            out.extend(predicates.iter());
            collect_filters(input, out);
        }
        LogicalPlan::Window { input, .. } => collect_filters(input, out),
        _ => {}
    }
}

/// The statement's `[NOT] EXISTS` conjunct, when present.
fn exists_parts(sel: &SelectStmt) -> Option<(bool, &SelectStmt)> {
    sel.where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default()
        .into_iter()
        .find_map(|c| match c {
            AstExpr::Exists { negated, subquery } => Some((*negated, &**subquery)),
            _ => None,
        })
}

fn stream_schema_for(engine: &Engine, item: &FromItem) -> Result<SchemaRef> {
    engine.stream_schema(&item.name)
}

// --------------------------------------------------------- simple shapes

fn plan_transducer(
    engine: &Engine,
    sel: &SelectStmt,
    conjuncts: &[&AstExpr],
    split: bool,
) -> Result<SplitPlan> {
    if sel.from.len() != 1 {
        return Err(DsmsError::plan(
            "multi-stream FROM without SEQ is not supported (use SEQ or a sub-query)",
        ));
    }
    let schema = stream_schema_for(engine, &sel.from[0])?;
    let scope = Scope::new(vec![(sel.from[0].binding().to_string(), schema.clone())]);
    let mut stages: Vec<Box<dyn Operator>> = Vec::new();
    if !conjuncts.is_empty() {
        let pred = compile_conjunction(conjuncts, &scope, engine)?;
        stages.push(Box::new(Select::new(pred)));
    }
    let mut residual: Option<Box<dyn Operator>> = None;
    if let Some(project) = projection_stage(sel, &scope, engine)? {
        if split {
            residual = Some(Box::new(Chain::new(vec![project])));
        } else {
            stages.push(project);
        }
    }
    if stages.is_empty() {
        stages.push(Box::new(Select::new(Expr::lit(true))));
    }
    Ok(SplitPlan {
        core: Plan {
            name: format!("select:{}", sel.from[0].name),
            sources: vec![sel.from[0].name.clone()],
            op: Box::new(Chain::new(stages)),
        },
        residual,
    })
}

fn compile_conjunction(conjuncts: &[&AstExpr], scope: &Scope, engine: &Engine) -> Result<Expr> {
    let mut it = conjuncts.iter();
    let first = it
        .next()
        .ok_or_else(|| DsmsError::plan("empty conjunction"))?;
    let mut e = compile_scalar(first, scope, engine.functions())?;
    for c in it {
        e = Expr::and(e, compile_scalar(c, scope, engine.functions())?);
    }
    Ok(e)
}

fn plan_aggregate(engine: &Engine, sel: &SelectStmt, conjuncts: &[&AstExpr]) -> Result<Plan> {
    if sel.from.len() != 1 {
        return Err(DsmsError::plan("aggregation reads a single stream"));
    }
    let schema = stream_schema_for(engine, &sel.from[0])?;
    let scope = Scope::new(vec![(sel.from[0].binding().to_string(), schema)]);
    let mut stages: Vec<Box<dyn Operator>> = Vec::new();
    if !conjuncts.is_empty() {
        stages.push(Box::new(Select::new(compile_conjunction(
            conjuncts, &scope, engine,
        )?)));
    }
    // Grouping: explicit GROUP BY, else the non-aggregate select items.
    let mut group_by: Vec<Expr> = sel
        .group_by
        .iter()
        .map(|g| compile_scalar(g, &scope, engine.functions()))
        .collect::<Result<_>>()?;
    let mut specs = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Expr { expr, .. } if is_aggregate_item(engine, item) => {
                let AstExpr::Call { name, args } = expr else {
                    unreachable!()
                };
                let agg = engine
                    .aggregates()
                    .get(name)
                    .ok_or_else(|| DsmsError::unknown(format!("aggregate `{name}`")))?;
                let arg = compile_scalar(&args[0], &scope, engine.functions())?;
                specs.push(AggSpec { agg, arg });
            }
            SelectItem::Expr { expr, .. } => {
                if sel.group_by.is_empty() {
                    group_by.push(compile_scalar(expr, &scope, engine.functions())?);
                }
            }
            SelectItem::Wildcard => {
                return Err(DsmsError::plan("`*` is not valid with aggregates"));
            }
        }
    }
    // Sliding window from the FROM item's OVER clause.
    let window = match &sel.from[0].window {
        None => None,
        Some(w) if w.kind == AstWindowKind::Preceding && w.anchor.is_none() => {
            Some(match w.length {
                WindowLength::Time(d) => AggWindow::Range(d),
                WindowLength::Rows(n) => AggWindow::Rows(n),
            })
        }
        Some(_) => {
            return Err(DsmsError::plan(
                "aggregation windows must be `RANGE d|ROWS n PRECEDING CURRENT`",
            ))
        }
    };
    stages.push(Box::new(WindowAggregate::new(
        group_by,
        specs,
        window,
        Emission::PerArrival,
    )));
    Ok(Plan {
        name: format!("aggregate:{}", sel.from[0].name),
        sources: vec![sel.from[0].name.clone()],
        op: Box::new(Chain::new(stages)),
    })
}

// ---------------------------------------------------------------- EXISTS

#[allow(clippy::too_many_arguments)]
fn plan_table_exists(
    engine: &Engine,
    sel: &SelectStmt,
    negated: bool,
    sub: &SelectStmt,
    outer_conjuncts: &[&AstExpr],
    probe: Option<(String, AstExpr)>,
    split: bool,
) -> Result<SplitPlan> {
    if sel.from.len() != 1 || sub.from.len() != 1 {
        return Err(DsmsError::plan(
            "correlated EXISTS joins one stream to one table",
        ));
    }
    let outer_schema = stream_schema_for(engine, &sel.from[0])?;
    let table = engine.table(&sub.from[0].name)?;
    let outer_binding = sel.from[0].binding().to_string();
    let inner_binding = sub.from[0].binding().to_string();
    let outer_scope = Scope::new(vec![(outer_binding.clone(), outer_schema.clone())]);
    // Correlated scope: outer = rel 0, table = rel 1; unqualified names
    // resolve inner-first.
    let scope = Scope::new(vec![
        (outer_binding, outer_schema.clone()),
        (inner_binding, table.schema().clone()),
    ])
    .with_search_order(vec![1, 0]);

    let mut stages: Vec<Box<dyn Operator>> = Vec::new();
    if !outer_conjuncts.is_empty() {
        stages.push(Box::new(Select::new(compile_conjunction(
            outer_conjuncts,
            &outer_scope,
            engine,
        )?)));
    }
    let sub_conjuncts: Vec<&AstExpr> = sub
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default();
    let pred = if sub_conjuncts.is_empty() {
        Expr::lit(true)
    } else {
        compile_conjunction(&sub_conjuncts, &scope, engine)?
    };
    // Index probe: lifted by the rewriter (`table.col = outer-expr`).
    let probe = match probe {
        None => None,
        Some((col, key_ast)) => Some((
            col,
            compile_scalar(&key_ast, &outer_scope, engine.functions())?,
        )),
    };
    stages.push(Box::new(TableExists::new(table, pred, negated, probe)?));
    let mut residual: Option<Box<dyn Operator>> = None;
    if let Some(project) = projection_stage(sel, &outer_scope, engine)? {
        if split {
            residual = Some(Box::new(Chain::new(vec![project])));
        } else {
            stages.push(project);
        }
    }
    Ok(SplitPlan {
        core: Plan {
            name: format!("table-exists:{}", sel.from[0].name),
            sources: vec![sel.from[0].name.clone()],
            op: Box::new(Chain::new(stages)),
        },
        residual,
    })
}

fn to_extent(w: &AstWindow) -> Result<WindowExtent> {
    match w.length {
        WindowLength::Rows(n) => {
            if w.kind == AstWindowKind::Preceding {
                Ok(WindowExtent::Rows(n))
            } else {
                Err(DsmsError::plan("ROWS windows only support PRECEDING"))
            }
        }
        WindowLength::Time(d) => Ok(match w.kind {
            AstWindowKind::Preceding => WindowExtent::Preceding(d),
            AstWindowKind::Following => WindowExtent::Following(d),
            AstWindowKind::PrecedingAndFollowing => WindowExtent::PrecedingAndFollowing(d),
        }),
    }
}

fn plan_window_exists(
    engine: &Engine,
    sel: &SelectStmt,
    negated: bool,
    sub: &SelectStmt,
    outer_conjuncts: &[&AstExpr],
    split: bool,
) -> Result<SplitPlan> {
    if sel.from.len() != 1 || sub.from.len() != 1 {
        return Err(DsmsError::plan(
            "windowed EXISTS correlates one outer stream with one inner stream",
        ));
    }
    let outer_item = &sel.from[0];
    let inner_item = &sub.from[0];
    let outer_schema = stream_schema_for(engine, outer_item)?;
    let inner_schema = stream_schema_for(engine, inner_item)?;
    let window = inner_item
        .window
        .as_ref()
        .ok_or_else(|| DsmsError::plan("the EXISTS sub-query's stream needs an OVER window"))?;
    // The window must anchor at the outer tuple (CURRENT or its alias) —
    // that is exactly the §3.2 "window synchronized across the sub-query
    // boundary".
    if let Some(anchor) = &window.anchor {
        if anchor != outer_item.binding() {
            return Err(DsmsError::plan(format!(
                "sub-query window anchors at `{anchor}`, expected outer alias `{}`",
                outer_item.binding()
            )));
        }
    }
    let outer_binding = outer_item.binding().to_string();
    let inner_binding = inner_item.binding().to_string();
    let outer_scope = Scope::new(vec![(outer_binding.clone(), outer_schema.clone())]);
    let pair_scope = Scope::new(vec![
        (outer_binding, outer_schema.clone()),
        (inner_binding, inner_schema.clone()),
    ])
    .with_search_order(vec![1, 0]);

    let sub_conjuncts: Vec<&AstExpr> = sub
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default();

    // (Example 1's dedup specialization is a *rewrite* now: the IR pass
    // replaces the whole SemiJoin tree with a Dedup node, so this
    // lowering only sees genuine semi-joins.)
    let pred = if sub_conjuncts.is_empty() {
        Expr::lit(true)
    } else {
        compile_conjunction(&sub_conjuncts, &pair_scope, engine)?
    };
    let outer_filter = if outer_conjuncts.is_empty() {
        None
    } else {
        Some(compile_conjunction(outer_conjuncts, &outer_scope, engine)?)
    };
    let kind = if negated {
        SemiJoinKind::NotExists
    } else {
        SemiJoinKind::Exists
    };
    let exists = WindowExists::new(kind, to_extent(window)?, pred, outer_filter);
    let project = projection_stage(sel, &outer_scope, engine)?;
    let name = format!("window-exists:{}", outer_item.name);
    let sources = vec![outer_item.name.clone(), inner_item.name.clone()];
    let (op, residual): (Box<dyn Operator>, Option<Box<dyn Operator>>) = match project {
        None => (Box::new(exists), None),
        Some(p) if split => (
            Box::new(exists),
            Some(Box::new(Chain::new(vec![p])) as Box<dyn Operator>),
        ),
        Some(p) => (
            Box::new(TwoPortChain::new(Box::new(exists), Chain::new(vec![p]))),
            None,
        ),
    };
    Ok(SplitPlan {
        core: Plan { name, sources, op },
        residual,
    })
}

/// A two-input head operator followed by a single-input chain; needed
/// because [`Chain`] itself is single-input.
struct TwoPortChain {
    head: Box<dyn Operator>,
    tail: Chain,
    name: String,
}

impl TwoPortChain {
    fn new(head: Box<dyn Operator>, tail: Chain) -> TwoPortChain {
        let name = format!("{} -> {}", head.name(), tail.name());
        TwoPortChain { head, tail, name }
    }

    fn run_tail(&mut self, produced: Vec<Tuple>, out: &mut Vec<Tuple>) -> Result<()> {
        for t in produced {
            self.tail.on_tuple(0, &t, out)?;
        }
        Ok(())
    }
}

impl Operator for TwoPortChain {
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let mut produced = Vec::new();
        self.head.on_tuple(port, t, &mut produced)?;
        self.run_tail(produced, out)
    }

    fn on_punctuation(
        &mut self,
        ts: eslev_dsms::time::Timestamp,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        let mut produced = Vec::new();
        self.head.on_punctuation(ts, &mut produced)?;
        self.run_tail(produced, out)?;
        self.tail.on_punctuation(ts, out)
    }

    fn num_ports(&self) -> usize {
        self.head.num_ports()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn retained(&self) -> usize {
        self.head.retained() + self.tail.retained()
    }
}

// ------------------------------------------------------------------- SEQ

/// Projection instructions for SEQ-query outputs.
enum ProjItem {
    /// `alias.col` for a non-star element (last = only tuple).
    LastCol { elem: usize, col: usize },
    /// `FIRST(a*).col`.
    FirstCol { elem: usize, col: usize },
    /// `COUNT(a*)`.
    Count { elem: usize },
    /// `alias.col` on a star element: expands to one row per group tuple
    /// (footnote 4's multi-return).
    PerStar { elem: usize, col: usize },
}

fn lower_seq(engine: &Engine, sel: &SelectStmt, seq: &SeqPlan) -> Result<Plan> {
    // Element-ordered scope: rel i = element i (aliases in SEQ order).
    let rels: Vec<(String, SchemaRef)> = seq
        .elements
        .iter()
        .map(|e| Ok((e.alias.clone(), engine.stream_schema(&e.stream)?)))
        .collect::<Result<_>>()?;
    let elem_scope = Scope::new(rels);
    let elem_alias: Vec<String> = seq.elements.iter().map(|e| e.alias.clone()).collect();
    let elem_of = |alias: &str| elem_alias.iter().position(|a| a == alias);

    // Elements carry the rewriter's classification: pushed-down
    // predicates and folded timing gaps.
    let mut elements = Vec::with_capacity(seq.elements.len());
    for (i, e) in seq.elements.iter().enumerate() {
        let mut el = if e.star {
            Element::star(e.port)
        } else {
            Element::new(e.port)
        };
        el.max_gap_from_prev = e.max_gap_from_prev;
        el.star_gap = e.star_gap;
        if !e.predicates.is_empty() {
            let single = Scope::new(vec![(e.alias.clone(), elem_scope.schema(i).clone())]);
            let refs: Vec<&AstExpr> = e.predicates.iter().collect();
            el.predicate = Some(compile_conjunction(&refs, &single, engine)?);
        }
        elements.push(el);
    }

    // Event window (shape validated at build; re-derived here).
    let ev_window = match &seq.window {
        None => None,
        Some(w) => {
            let anchor_alias = w.anchor.as_ref().ok_or_else(|| {
                DsmsError::plan("SEQ windows anchor at a sequence argument, not CURRENT")
            })?;
            let anchor = elem_of(anchor_alias)
                .ok_or_else(|| DsmsError::unknown(format!("window anchor `{anchor_alias}`")))?;
            let kind = match w.kind {
                AstWindowKind::Preceding => WindowKind::Preceding,
                AstWindowKind::Following => WindowKind::Following,
                AstWindowKind::PrecedingAndFollowing => {
                    return Err(DsmsError::plan(
                        "PRECEDING AND FOLLOWING applies to sub-query windows, not SEQ",
                    ))
                }
            };
            let dur = w.dur().ok_or_else(|| {
                DsmsError::plan("SEQ operator windows are time-based (RANGE), not ROWS")
            })?;
            Some(EventWindow { dur, anchor, kind })
        }
    };

    // Residual match filter over the last-tuple row (everything the
    // rewriter could not classify into elements/partition/gaps).
    let residual_filter = if seq.residual.is_empty() {
        None
    } else {
        // Residuals evaluate over the last-tuple row; rewrite LAST(a*).c
        // to a plain column first.
        let rewritten: Vec<AstExpr> = seq
            .residual
            .iter()
            .map(rewrite_last_to_col)
            .collect::<Result<Vec<_>>>()?;
        let refs: Vec<&AstExpr> = rewritten.iter().collect();
        let expr = compile_conjunction(&refs, &elem_scope, engine)?;
        Some(
            Arc::new(move |m: &eslev_core::binding::SeqMatch| expr.eval_bool(&m.row_last()))
                as eslev_core::detector::MatchFilter,
        )
    };

    let pattern = SeqPattern::new(elements, ev_window, seq.mode)?;
    let n = pattern.len();
    let star_count = pattern.star_count();

    // Projection.
    let mut proj: Vec<ProjItem> = Vec::new();
    for item in &sel.items {
        let SelectItem::Expr { expr, .. } = item else {
            return Err(DsmsError::plan("`SELECT *` is not supported with SEQ"));
        };
        match expr {
            AstExpr::Col { qualifier, name } => {
                let (elem, col) = resolve_seq_col(qualifier.as_deref(), name, &elem_scope)?;
                if pattern.elements[elem].star {
                    if star_count > 1 {
                        return Err(DsmsError::plan(
                            "per-tuple star columns need a single star argument (footnote 4)",
                        ));
                    }
                    proj.push(ProjItem::PerStar { elem, col });
                } else {
                    proj.push(ProjItem::LastCol { elem, col });
                }
            }
            AstExpr::StarAgg {
                kind: agg,
                alias,
                column,
            } => {
                let elem = elem_of(alias).ok_or_else(|| {
                    DsmsError::unknown(format!("star aggregate over unknown `{alias}`"))
                })?;
                if !pattern.elements[elem].star {
                    return Err(DsmsError::plan(format!("`{alias}` is not a star argument")));
                }
                match agg {
                    StarAggKind::Count => proj.push(ProjItem::Count { elem }),
                    StarAggKind::First | StarAggKind::Last => {
                        let col_name = column.as_ref().expect("enforced by parser");
                        let col = elem_scope.schema(elem).require_column(col_name)?;
                        proj.push(if *agg == StarAggKind::First {
                            ProjItem::FirstCol { elem, col }
                        } else {
                            ProjItem::LastCol { elem, col }
                        });
                    }
                }
            }
            other => {
                return Err(DsmsError::plan(format!(
                    "unsupported SEQ select item `{other}`"
                )))
            }
        }
    }

    let mut config = match seq.kind {
        SeqKind::Seq => DetectorConfig::seq(pattern),
        SeqKind::ExceptionSeq | SeqKind::ClevelSeq => DetectorConfig::exception(pattern),
    };
    if let Some(keys) = &seq.partition {
        let key_exprs: Vec<Expr> = keys.iter().map(|(c, _)| Expr::col(*c)).collect();
        config = config.with_partition(key_exprs);
    }
    if let Some(f) = residual_filter {
        config = config.with_filter(f);
    }
    let detector = Detector::new(config)?;
    let stmt_kind = seq.kind;
    let level_cmp = seq.level_cmp;
    let project: eslev_core::op::OutputProjection = Box::new(move |o: &DetectorOutput| {
        let rows = match (o, stmt_kind) {
            // SEQ emits completed matches only (exceptions never reach
            // here: the detector runs in Seq kind).
            (DetectorOutput::Match(m), SeqKind::Seq) => {
                project_bindings(&proj, Some(&m.bindings), m.ts())
            }
            // EXCEPTION_SEQ is true exactly when a violation occurred.
            (DetectorOutput::Match(_), SeqKind::ExceptionSeq) => Vec::new(),
            (DetectorOutput::Exception(e), SeqKind::ExceptionSeq) => {
                project_bindings(&proj, Some(&e.partial), e.ts)
            }
            // CLEVEL_SEQ filters both by the level comparison: a
            // completed sequence has level n, a stalled one its
            // completion level.
            (DetectorOutput::Match(m), SeqKind::ClevelSeq) => match level_cmp {
                Some((op, lit)) if level_passes(op, n as i64, lit) => {
                    project_bindings(&proj, Some(&m.bindings), m.ts())
                }
                _ => Vec::new(),
            },
            (DetectorOutput::Exception(e), SeqKind::ClevelSeq) => match level_cmp {
                Some((op, lit)) if level_passes(op, e.completion_level() as i64, lit) => {
                    project_bindings(&proj, Some(&e.partial), e.ts)
                }
                _ => Vec::new(),
            },
            (DetectorOutput::Exception(_), SeqKind::Seq) => Vec::new(),
        };
        Ok(rows)
    });
    let op = DetectorOp::new(detector, project);
    Ok(Plan {
        name: format!("seq:{}", elem_alias.join(",")),
        sources: sel.from.iter().map(|f| f.name.clone()).collect(),
        op: Box::new(op),
    })
}

fn level_passes(op: AstBinOp, level: i64, lit: i64) -> bool {
    match op {
        AstBinOp::Lt => level < lit,
        AstBinOp::Le => level <= lit,
        AstBinOp::Gt => level > lit,
        AstBinOp::Ge => level >= lit,
        AstBinOp::Eq => level == lit,
        AstBinOp::Ne => level != lit,
        _ => false,
    }
}

fn project_bindings(
    proj: &[ProjItem],
    bindings: Option<&[eslev_core::binding::Binding]>,
    ts: eslev_dsms::time::Timestamp,
) -> Vec<Tuple> {
    let bindings = bindings.unwrap_or(&[]);
    let value_of = |item: &ProjItem, star_idx: Option<usize>| -> Value {
        match item {
            ProjItem::LastCol { elem, col } => bindings
                .get(*elem)
                .map(|b| b.last().value(*col).clone())
                .unwrap_or(Value::Null),
            ProjItem::FirstCol { elem, col } => bindings
                .get(*elem)
                .map(|b| b.first().value(*col).clone())
                .unwrap_or(Value::Null),
            ProjItem::Count { elem } => bindings
                .get(*elem)
                .map(|b| Value::Int(b.count() as i64))
                .unwrap_or(Value::Null),
            ProjItem::PerStar { elem, col } => match (bindings.get(*elem), star_idx) {
                (Some(b), Some(i)) => b.tuples()[i].value(*col).clone(),
                (Some(b), None) => b.last().value(*col).clone(),
                (None, _) => Value::Null,
            },
        }
    };
    // Multi-return expansion when a PerStar item exists and the star
    // element is bound.
    let star_elem = proj.iter().find_map(|p| match p {
        ProjItem::PerStar { elem, .. } => Some(*elem),
        _ => None,
    });
    let rows: Vec<Option<usize>> = match star_elem.and_then(|e| bindings.get(e)) {
        Some(b) => (0..b.count()).map(Some).collect(),
        None => vec![None],
    };
    rows.into_iter()
        .map(|idx| {
            let vals: Vec<Value> = proj.iter().map(|p| value_of(p, idx)).collect();
            Tuple::new(vals, ts, 0)
        })
        .collect()
}

fn resolve_seq_col(
    qualifier: Option<&str>,
    name: &str,
    elem_scope: &Scope,
) -> Result<(usize, usize)> {
    elem_scope.resolve_column(qualifier, name)
}

/// Rewrite `LAST(a*).col` to `a.col` (the last-tuple row convention used
/// by residual filters); rejects FIRST/COUNT, which have no row-level
/// equivalent.
fn rewrite_last_to_col(c: &AstExpr) -> Result<AstExpr> {
    Ok(match c {
        AstExpr::StarAgg {
            kind: StarAggKind::Last,
            alias,
            column,
        } => AstExpr::Col {
            qualifier: Some(alias.clone()),
            name: column.clone().expect("parser enforces projection"),
        },
        AstExpr::StarAgg { .. } => {
            return Err(DsmsError::plan(
                "FIRST/COUNT star aggregates are not supported in residual predicates",
            ))
        }
        AstExpr::Bin(op, a, b) => AstExpr::Bin(
            *op,
            Box::new(rewrite_last_to_col(a)?),
            Box::new(rewrite_last_to_col(b)?),
        ),
        AstExpr::Not(e) => AstExpr::Not(Box::new(rewrite_last_to_col(e)?)),
        AstExpr::IsNull { expr, negated } => AstExpr::IsNull {
            expr: Box::new(rewrite_last_to_col(expr)?),
            negated: *negated,
        },
        AstExpr::Like(e, p) => AstExpr::Like(Box::new(rewrite_last_to_col(e)?), p.clone()),
        AstExpr::Call { name, args } => AstExpr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(rewrite_last_to_col)
                .collect::<Result<Vec<_>>>()?,
        },
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eslev_dsms::time::Timestamp;

    /// Deterministic LCG so the property test needs no external crates.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn setup() -> Engine {
        let mut e = Engine::new();
        execute_script(
            &mut e,
            "CREATE STREAM sa (tagid VARCHAR, val INT, t TIMESTAMP);
             CREATE STREAM sb (tagid VARCHAR, val INT, t TIMESTAMP)",
        )
        .unwrap();
        e
    }

    #[test]
    fn explain_analyze_annotates_optimized_plan() {
        let mut e = Engine::new();
        execute_script(
            &mut e,
            "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP)",
        )
        .unwrap();
        let dedup_sql = "SELECT * FROM readings AS r1 WHERE NOT EXISTS \
            (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2 \
             WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)";
        // Not registered yet: there are no live counters to read.
        assert!(explain_analyze(&e, dedup_sql).is_err());
        execute(&mut e, dedup_sql).unwrap();
        for i in 0..10u64 {
            e.push(
                "readings",
                vec![
                    Value::str("r1"),
                    Value::str(if i % 2 == 0 { "a" } else { "b" }),
                    Value::Ts(Timestamp::from_secs(i)),
                ],
            )
            .unwrap();
        }
        let s = explain_analyze(&e, dedup_sql).unwrap();
        assert!(s.contains("Dedup key=[reader_id, tag_id]"), "{s}");
        assert!(s.contains("[rows 10 -> "), "{s}");
        assert!(s.contains("runtime: query `dedup:readings`"), "{s}");
        // A registered name alone renders the raw runtime tree.
        let by_name = explain_analyze(&e, "dedup:readings").unwrap();
        assert!(by_name.contains("runtime:"), "{by_name}");
        assert!(by_name.contains("dedup"), "{by_name}");
    }

    #[test]
    fn explain_analyze_covers_seq_detectors() {
        let mut e = setup();
        let sql = "SELECT a.tagid, b.val FROM sa AS a, sb AS b \
                   WHERE SEQ(a, b) AND a.tagid = b.tagid";
        execute(&mut e, sql).unwrap();
        for i in 0..6u64 {
            let stream = if i % 2 == 0 { "sa" } else { "sb" };
            e.push(
                stream,
                vec![
                    Value::str("t1"),
                    Value::Int(i as i64),
                    Value::Ts(Timestamp::from_secs(i)),
                ],
            )
            .unwrap();
        }
        let s = explain_analyze(&e, sql).unwrap();
        assert!(s.contains("Seq mode="), "{s}");
        assert!(s.contains("batches 6"), "{s}");
        assert!(s.contains("wall p50"), "{s}");
        assert!(s.contains("seq-detector"), "{s}");
    }

    /// The rewrite pass is an *optimization*: for UNRESTRICTED pairing
    /// (no tuple consumption), classifying conjuncts into element
    /// predicates / partition keys must not change which matches a SEQ
    /// query emits. Lower the naive plan (everything residual) and the
    /// rewritten plan (classified) side by side on randomized predicates
    /// and identical data, and require byte-identical output.
    #[test]
    fn rewrites_preserve_semantics_on_random_predicates() {
        let mut rng = Lcg(0x5eed_cafe);
        for trial in 0..25 {
            let mut preds: Vec<String> = Vec::new();
            if rng.below(3) > 0 {
                preds.push("a.tagid = b.tagid".to_string());
            }
            for alias in ["a", "b"] {
                match rng.below(4) {
                    0 => preds.push(format!("{alias}.val < {}", rng.below(40))),
                    1 => preds.push(format!("{alias}.val >= {}", rng.below(40))),
                    2 => preds.push(format!("{alias}.val = {}", rng.below(6))),
                    _ => {}
                }
            }
            let mut sql = String::from(
                "SELECT a.tagid, b.val FROM sa AS a, sb AS b \
                 WHERE SEQ(a, b) MODE UNRESTRICTED",
            );
            for p in &preds {
                sql.push_str(" AND ");
                sql.push_str(p);
            }

            // Engine 1: the naive logical plan lowered with no rewrites —
            // every conjunct lands in the detector's residual filter.
            let mut e1 = setup();
            let stmt = crate::parser::parse_statement(&sql).unwrap();
            let Statement::Select(sel) = &stmt else {
                unreachable!()
            };
            let naive = build_logical(&e1, sel).unwrap();
            let plan = lower(&e1, sel, naive).unwrap();
            let sources: Vec<&str> = plan.sources.iter().map(|s| s.as_str()).collect();
            let (_, c1) = e1.register_collected(plan.name, sources, plan.op).unwrap();

            // Engine 2: the full build → rewrite → lower pipeline.
            let mut e2 = setup();
            let ExecOutcome::Collected(_, c2) = execute(&mut e2, &sql).unwrap() else {
                unreachable!()
            };

            let rows: Vec<(&str, String, i64, u64)> = (0..120)
                .map(|i| {
                    let stream = if rng.below(2) == 0 { "sa" } else { "sb" };
                    let tag = format!("tag{}", rng.below(5));
                    (stream, tag, rng.below(40) as i64, i)
                })
                .collect();
            for (stream, tag, val, i) in &rows {
                for e in [&mut e1, &mut e2] {
                    e.push(
                        stream,
                        vec![
                            Value::str(tag.as_str()),
                            Value::Int(*val),
                            Value::Ts(Timestamp::from_secs(*i)),
                        ],
                    )
                    .unwrap();
                }
            }
            let out1: Vec<_> = c1
                .take()
                .iter()
                .map(|t| (t.values().to_vec(), t.ts()))
                .collect();
            let out2: Vec<_> = c2
                .take()
                .iter()
                .map(|t| (t.values().to_vec(), t.ts()))
                .collect();
            assert_eq!(out1, out2, "trial {trial} diverged for `{sql}`");
            assert!(
                trial > 3 || !out1.is_empty() || preds.iter().any(|p| p.contains("= ")),
                "sanity: early trials should usually produce output"
            );
        }
    }
}
