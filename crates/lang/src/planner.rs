//! The planner: compiles parsed ESL-EV statements into engine state —
//! schemas for DDL, operator pipelines + sinks for continuous queries.
//!
//! Planning is pattern-directed, mirroring how the paper's examples use
//! the language:
//!
//! * a `WHERE` containing a `SEQ` / `EXCEPTION_SEQ` / `CLEVEL_SEQ` term
//!   becomes a [`DetectorOp`]; equality conjuncts spanning all arguments
//!   are lifted into the detector's partition key, gap conjuncts
//!   (`b.t − LAST(a*).t ≤ d`, `a.t − a.previous.t ≤ d`) into the
//!   pattern's timing constraints, per-argument conjuncts into element
//!   predicates, and anything left into a residual match filter;
//! * `NOT EXISTS` over a *windowed stream* sub-query becomes a
//!   [`WindowExists`] (or the dedicated [`Dedup`] when it has Example 1's
//!   self-stream equality shape);
//! * `NOT EXISTS` over a *table* sub-query becomes a [`TableExists`]
//!   (Example 2);
//! * aggregate select lists become [`WindowAggregate`]s (Example 3);
//! * everything else is a select/project transducer.

use crate::ast::*;
use crate::scope::{compile_scalar, referenced_rels, Scope};
use eslev_core::binding::DetectorOutput;
use eslev_core::detector::{Detector, DetectorConfig};
use eslev_core::mode::PairingMode;
use eslev_core::op::DetectorOp;
use eslev_core::pattern::{Element, EventWindow, SeqPattern, WindowKind};
use eslev_dsms::engine::{Collector, Engine, QueryId, Sink};
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::expr::Expr;
use eslev_dsms::lookup::TableExists;
use eslev_dsms::ops::{
    AggSpec, AggWindow, Chain, Dedup, Emission, Operator, Project, Select, SemiJoinKind,
    WindowAggregate, WindowExists,
};
use eslev_dsms::schema::{Schema, SchemaRef};
use eslev_dsms::tuple::Tuple;
use eslev_dsms::value::{Value, ValueType};
use eslev_dsms::window::WindowExtent;
use std::sync::Arc;

/// Result of executing one statement.
pub enum ExecOutcome {
    /// DDL applied.
    Created,
    /// One-shot UPDATE/DELETE applied to this many rows.
    Modified(usize),
    /// Continuous query registered with a stream/table sink.
    Registered(QueryId),
    /// Bare SELECT registered; results accumulate in the collector.
    Collected(QueryId, Collector),
}

impl ExecOutcome {
    /// The collector, when this outcome has one.
    pub fn collector(&self) -> Option<&Collector> {
        match self {
            ExecOutcome::Collected(_, c) => Some(c),
            _ => None,
        }
    }
}

/// Parse and execute a whole `;`-separated script.
pub fn execute_script(engine: &mut Engine, sql: &str) -> Result<Vec<ExecOutcome>> {
    let stmts = crate::parser::parse_script(sql)?;
    let mut outcomes = Vec::with_capacity(stmts.len());
    for stmt in &stmts {
        outcomes.push(apply(engine, stmt)?);
    }
    Ok(outcomes)
}

/// Parse and execute exactly one statement.
pub fn execute(engine: &mut Engine, sql: &str) -> Result<ExecOutcome> {
    let stmt = crate::parser::parse_statement(sql)?;
    apply(engine, &stmt)
}

/// Plan a statement without registering it and describe the physical
/// plan — which operators the planner chose and which streams feed them.
/// DDL statements describe the schema they would create.
pub fn explain(engine: &Engine, sql: &str) -> Result<String> {
    let stmt = crate::parser::parse_statement(sql)?;
    Ok(match &stmt {
        Statement::CreateStream { name, columns } => {
            format!("CREATE STREAM {name} ({} columns)", columns.len())
        }
        Statement::CreateTable { name, columns } => {
            format!("CREATE TABLE {name} ({} columns)", columns.len())
        }
        Statement::InsertInto { target, select } => {
            let plan = plan_select(engine, select)?;
            format!(
                "{} <- [{}] {} -> INSERT INTO {target}",
                plan.name,
                plan.sources.join(", "),
                plan.op.name(),
            )
        }
        Statement::Select(select) => {
            let plan = plan_select(engine, select)?;
            format!(
                "{} <- [{}] {} -> collect",
                plan.name,
                plan.sources.join(", "),
                plan.op.name(),
            )
        }
        Statement::Update { table, sets, .. } => {
            format!("UPDATE {table} ({} assignments)", sets.len())
        }
        Statement::Delete { table, .. } => format!("DELETE FROM {table}"),
    })
}

fn apply(engine: &mut Engine, stmt: &Statement) -> Result<ExecOutcome> {
    match stmt {
        Statement::CreateStream { name, columns } => {
            let time_col = columns
                .iter()
                .find(|(_, ty)| *ty == ValueType::Ts)
                .map(|(n, _)| n.clone())
                .ok_or_else(|| {
                    DsmsError::schema(format!(
                        "stream `{name}` needs a TIMESTAMP column for event time"
                    ))
                })?;
            let cols: Vec<(&str, ValueType)> =
                columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let schema = Arc::new(Schema::new(name.clone(), cols, Some(&time_col))?);
            engine.create_stream(schema)?;
            Ok(ExecOutcome::Created)
        }
        Statement::CreateTable { name, columns } => {
            let cols: Vec<(&str, ValueType)> =
                columns.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let schema = Arc::new(Schema::new(name.clone(), cols, None)?);
            engine.create_table(schema)?;
            Ok(ExecOutcome::Created)
        }
        Statement::InsertInto { target, select } => {
            let plan = plan_select(engine, select)?;
            let sink = if engine.stream_schema(target).is_ok() {
                Sink::Stream(target.clone())
            } else if engine.table(target).is_ok() {
                Sink::Table(target.clone())
            } else {
                return Err(DsmsError::unknown(format!("insert target `{target}`")));
            };
            let sources: Vec<&str> = plan.sources.iter().map(|s| s.as_str()).collect();
            let id = engine.register_query(plan.name, sources, plan.op, sink)?;
            Ok(ExecOutcome::Registered(id))
        }
        Statement::Select(select) => {
            let plan = plan_select(engine, select)?;
            let sources: Vec<&str> = plan.sources.iter().map(|s| s.as_str()).collect();
            let (id, c) = engine.register_collected(plan.name, sources, plan.op)?;
            Ok(ExecOutcome::Collected(id, c))
        }
        Statement::Update {
            table,
            sets,
            where_clause,
        } => {
            let t = engine.table(table)?;
            let scope = Scope::new(vec![(table.clone(), t.schema().clone())]);
            let pred = match where_clause {
                None => Expr::lit(true),
                Some(w) => compile_scalar(w, &scope, engine.functions())?,
            };
            let mut total = 0;
            for (col, expr) in sets {
                let value = compile_scalar(expr, &scope, engine.functions())?;
                total = t.update_map(&pred, col, |row| value.eval(&[row]))?;
            }
            Ok(ExecOutcome::Modified(total))
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let t = engine.table(table)?;
            let scope = Scope::new(vec![(table.clone(), t.schema().clone())]);
            let pred = match where_clause {
                None => Expr::lit(true),
                Some(w) => compile_scalar(w, &scope, engine.functions())?,
            };
            Ok(ExecOutcome::Modified(t.delete(&pred)?))
        }
    }
}

struct Plan {
    name: String,
    sources: Vec<String>,
    op: Box<dyn Operator>,
}

fn plan_select(engine: &Engine, sel: &SelectStmt) -> Result<Plan> {
    if sel.from.is_empty() {
        return Err(DsmsError::plan("FROM clause is required"));
    }
    if !sel.order_by.is_empty() || sel.limit.is_some() {
        return Err(DsmsError::plan(
            "ORDER BY / LIMIT apply to ad-hoc snapshot queries (eslev_lang::ad_hoc),              not continuous ones — a stream has no final order",
        ));
    }
    let conjuncts: Vec<&AstExpr> = sel
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default();

    // SEQ-family term anywhere in the conjuncts?
    if conjuncts.iter().any(|c| contains_seq(c)) {
        return plan_seq(engine, sel, &conjuncts);
    }
    // EXISTS sub-query?
    if let Some(pos) = conjuncts
        .iter()
        .position(|c| matches!(c, AstExpr::Exists { .. }))
    {
        let AstExpr::Exists { negated, subquery } = conjuncts[pos] else {
            unreachable!()
        };
        let rest: Vec<&AstExpr> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != pos)
            .map(|(_, c)| *c)
            .collect();
        let inner = &subquery.from[0];
        if engine.table(&inner.name).is_ok() {
            return plan_table_exists(engine, sel, *negated, subquery, &rest);
        }
        return plan_window_exists(engine, sel, *negated, subquery, &rest);
    }
    // Aggregation?
    if sel.items.iter().any(|i| is_aggregate_item(engine, i)) {
        return plan_aggregate(engine, sel, &conjuncts);
    }
    plan_transducer(engine, sel, &conjuncts)
}

fn contains_seq(e: &AstExpr) -> bool {
    match e {
        AstExpr::Seq { .. } => true,
        AstExpr::Bin(_, a, b) => contains_seq(a) || contains_seq(b),
        AstExpr::Not(i) => contains_seq(i),
        _ => false,
    }
}

fn is_aggregate_item(engine: &Engine, item: &SelectItem) -> bool {
    match item {
        SelectItem::Expr {
            expr: AstExpr::Call { name, args },
            ..
        } => {
            // A name registered as an aggregate and not shadowed by a UDF.
            engine.aggregates().get(name).is_some()
                && engine.functions().get(name).is_none()
                && args.len() == 1
        }
        _ => false,
    }
}

fn stream_schema_for(engine: &Engine, item: &FromItem) -> Result<SchemaRef> {
    engine.stream_schema(&item.name)
}

// --------------------------------------------------------- simple shapes

fn plan_transducer(engine: &Engine, sel: &SelectStmt, conjuncts: &[&AstExpr]) -> Result<Plan> {
    if sel.from.len() != 1 {
        return Err(DsmsError::plan(
            "multi-stream FROM without SEQ is not supported (use SEQ or a sub-query)",
        ));
    }
    let schema = stream_schema_for(engine, &sel.from[0])?;
    let scope = Scope::new(vec![(sel.from[0].binding().to_string(), schema.clone())]);
    let mut stages: Vec<Box<dyn Operator>> = Vec::new();
    if !conjuncts.is_empty() {
        let pred = compile_conjunction(conjuncts, &scope, engine)?;
        stages.push(Box::new(Select::new(pred)));
    }
    if !matches!(sel.items[..], [SelectItem::Wildcard]) {
        let exprs = sel
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => Err(DsmsError::plan("mixed `*` and columns")),
                SelectItem::Expr { expr, .. } => compile_scalar(expr, &scope, engine.functions()),
            })
            .collect::<Result<Vec<_>>>()?;
        stages.push(Box::new(Project::new(exprs)));
    }
    if stages.is_empty() {
        stages.push(Box::new(Select::new(Expr::lit(true))));
    }
    Ok(Plan {
        name: format!("select:{}", sel.from[0].name),
        sources: vec![sel.from[0].name.clone()],
        op: Box::new(Chain::new(stages)),
    })
}

fn compile_conjunction(conjuncts: &[&AstExpr], scope: &Scope, engine: &Engine) -> Result<Expr> {
    let mut it = conjuncts.iter();
    let first = it
        .next()
        .ok_or_else(|| DsmsError::plan("empty conjunction"))?;
    let mut e = compile_scalar(first, scope, engine.functions())?;
    for c in it {
        e = Expr::and(e, compile_scalar(c, scope, engine.functions())?);
    }
    Ok(e)
}

fn plan_aggregate(engine: &Engine, sel: &SelectStmt, conjuncts: &[&AstExpr]) -> Result<Plan> {
    if sel.from.len() != 1 {
        return Err(DsmsError::plan("aggregation reads a single stream"));
    }
    let schema = stream_schema_for(engine, &sel.from[0])?;
    let scope = Scope::new(vec![(sel.from[0].binding().to_string(), schema)]);
    let mut stages: Vec<Box<dyn Operator>> = Vec::new();
    if !conjuncts.is_empty() {
        stages.push(Box::new(Select::new(compile_conjunction(
            conjuncts, &scope, engine,
        )?)));
    }
    // Grouping: explicit GROUP BY, else the non-aggregate select items.
    let mut group_by: Vec<Expr> = sel
        .group_by
        .iter()
        .map(|g| compile_scalar(g, &scope, engine.functions()))
        .collect::<Result<_>>()?;
    let mut specs = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Expr { expr, .. } if is_aggregate_item(engine, item) => {
                let AstExpr::Call { name, args } = expr else {
                    unreachable!()
                };
                let agg = engine
                    .aggregates()
                    .get(name)
                    .ok_or_else(|| DsmsError::unknown(format!("aggregate `{name}`")))?;
                let arg = compile_scalar(&args[0], &scope, engine.functions())?;
                specs.push(AggSpec { agg, arg });
            }
            SelectItem::Expr { expr, .. } => {
                if sel.group_by.is_empty() {
                    group_by.push(compile_scalar(expr, &scope, engine.functions())?);
                }
            }
            SelectItem::Wildcard => {
                return Err(DsmsError::plan("`*` is not valid with aggregates"));
            }
        }
    }
    // Sliding window from the FROM item's OVER clause.
    let window = match &sel.from[0].window {
        None => None,
        Some(w) if w.kind == AstWindowKind::Preceding && w.anchor.is_none() => {
            Some(match w.length {
                WindowLength::Time(d) => AggWindow::Range(d),
                WindowLength::Rows(n) => AggWindow::Rows(n),
            })
        }
        Some(_) => {
            return Err(DsmsError::plan(
                "aggregation windows must be `RANGE d|ROWS n PRECEDING CURRENT`",
            ))
        }
    };
    stages.push(Box::new(WindowAggregate::new(
        group_by,
        specs,
        window,
        Emission::PerArrival,
    )));
    Ok(Plan {
        name: format!("aggregate:{}", sel.from[0].name),
        sources: vec![sel.from[0].name.clone()],
        op: Box::new(Chain::new(stages)),
    })
}

// ---------------------------------------------------------------- EXISTS

fn plan_table_exists(
    engine: &Engine,
    sel: &SelectStmt,
    negated: bool,
    sub: &SelectStmt,
    outer_conjuncts: &[&AstExpr],
) -> Result<Plan> {
    if sel.from.len() != 1 || sub.from.len() != 1 {
        return Err(DsmsError::plan(
            "correlated EXISTS joins one stream to one table",
        ));
    }
    let outer_schema = stream_schema_for(engine, &sel.from[0])?;
    let table = engine.table(&sub.from[0].name)?;
    let outer_binding = sel.from[0].binding().to_string();
    let inner_binding = sub.from[0].binding().to_string();
    let outer_scope = Scope::new(vec![(outer_binding.clone(), outer_schema.clone())]);
    // Correlated scope: outer = rel 0, table = rel 1; unqualified names
    // resolve inner-first.
    let scope = Scope::new(vec![
        (outer_binding, outer_schema.clone()),
        (inner_binding, table.schema().clone()),
    ])
    .with_search_order(vec![1, 0]);

    let mut stages: Vec<Box<dyn Operator>> = Vec::new();
    if !outer_conjuncts.is_empty() {
        stages.push(Box::new(Select::new(compile_conjunction(
            outer_conjuncts,
            &outer_scope,
            engine,
        )?)));
    }
    let sub_conjuncts: Vec<&AstExpr> = sub
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default();
    let pred = if sub_conjuncts.is_empty() {
        Expr::lit(true)
    } else {
        compile_conjunction(&sub_conjuncts, &scope, engine)?
    };
    // Index probe: an equality `table.col = outer-expr` conjunct.
    let mut probe = None;
    for c in &sub_conjuncts {
        if let AstExpr::Bin(AstBinOp::Eq, a, b) = c {
            for (x, y) in [(a, b), (b, a)] {
                let mut xr = std::collections::BTreeSet::new();
                referenced_rels(x, &scope, &mut xr);
                let mut yr = std::collections::BTreeSet::new();
                referenced_rels(y, &scope, &mut yr);
                if xr.iter().eq([&1]) && yr.iter().all(|r| *r == 0) {
                    if let AstExpr::Col { qualifier, name } = &**x {
                        if scope.resolve_column(qualifier.as_deref(), name)?.0 == 1 {
                            let key = compile_scalar(y, &outer_scope, engine.functions())?;
                            probe = Some((name.clone(), key));
                        }
                    }
                }
            }
        }
        if probe.is_some() {
            break;
        }
    }
    stages.push(Box::new(TableExists::new(table, pred, negated, probe)?));
    if !matches!(sel.items[..], [SelectItem::Wildcard]) {
        let exprs = sel
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => Err(DsmsError::plan("mixed `*` and columns")),
                SelectItem::Expr { expr, .. } => {
                    compile_scalar(expr, &outer_scope, engine.functions())
                }
            })
            .collect::<Result<Vec<_>>>()?;
        stages.push(Box::new(Project::new(exprs)));
    }
    Ok(Plan {
        name: format!("table-exists:{}", sel.from[0].name),
        sources: vec![sel.from[0].name.clone()],
        op: Box::new(Chain::new(stages)),
    })
}

fn to_extent(w: &AstWindow) -> Result<WindowExtent> {
    match w.length {
        WindowLength::Rows(n) => {
            if w.kind == AstWindowKind::Preceding {
                Ok(WindowExtent::Rows(n))
            } else {
                Err(DsmsError::plan("ROWS windows only support PRECEDING"))
            }
        }
        WindowLength::Time(d) => Ok(match w.kind {
            AstWindowKind::Preceding => WindowExtent::Preceding(d),
            AstWindowKind::Following => WindowExtent::Following(d),
            AstWindowKind::PrecedingAndFollowing => WindowExtent::PrecedingAndFollowing(d),
        }),
    }
}

fn plan_window_exists(
    engine: &Engine,
    sel: &SelectStmt,
    negated: bool,
    sub: &SelectStmt,
    outer_conjuncts: &[&AstExpr],
) -> Result<Plan> {
    if sel.from.len() != 1 || sub.from.len() != 1 {
        return Err(DsmsError::plan(
            "windowed EXISTS correlates one outer stream with one inner stream",
        ));
    }
    let outer_item = &sel.from[0];
    let inner_item = &sub.from[0];
    let outer_schema = stream_schema_for(engine, outer_item)?;
    let inner_schema = stream_schema_for(engine, inner_item)?;
    let window = inner_item
        .window
        .as_ref()
        .ok_or_else(|| DsmsError::plan("the EXISTS sub-query's stream needs an OVER window"))?;
    // The window must anchor at the outer tuple (CURRENT or its alias) —
    // that is exactly the §3.2 "window synchronized across the sub-query
    // boundary".
    if let Some(anchor) = &window.anchor {
        if anchor != outer_item.binding() {
            return Err(DsmsError::plan(format!(
                "sub-query window anchors at `{anchor}`, expected outer alias `{}`",
                outer_item.binding()
            )));
        }
    }
    let outer_binding = outer_item.binding().to_string();
    let inner_binding = inner_item.binding().to_string();
    let outer_scope = Scope::new(vec![(outer_binding.clone(), outer_schema.clone())]);
    let pair_scope = Scope::new(vec![
        (outer_binding, outer_schema.clone()),
        (inner_binding, inner_schema.clone()),
    ])
    .with_search_order(vec![1, 0]);

    let sub_conjuncts: Vec<&AstExpr> = sub
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default();

    // Example 1 specialization: same stream, NOT EXISTS, PRECEDING
    // CURRENT, equality conjuncts, SELECT * → the dedicated Dedup
    // operator (O(1) state per key instead of pending-outer probing).
    if negated
        && outer_item.name == inner_item.name
        && window.kind == AstWindowKind::Preceding
        && matches!(sel.items[..], [SelectItem::Wildcard])
        && outer_conjuncts.is_empty()
    {
        if let (Some(key), Some(dur)) = (dedup_key(&sub_conjuncts, &pair_scope)?, window.dur()) {
            let dedup = Dedup::new(key, dur);
            return Ok(Plan {
                name: format!("dedup:{}", outer_item.name),
                sources: vec![outer_item.name.clone()],
                op: Box::new(dedup),
            });
        }
    }

    let pred = if sub_conjuncts.is_empty() {
        Expr::lit(true)
    } else {
        compile_conjunction(&sub_conjuncts, &pair_scope, engine)?
    };
    let outer_filter = if outer_conjuncts.is_empty() {
        None
    } else {
        Some(compile_conjunction(outer_conjuncts, &outer_scope, engine)?)
    };
    let kind = if negated {
        SemiJoinKind::NotExists
    } else {
        SemiJoinKind::Exists
    };
    let exists = WindowExists::new(kind, to_extent(window)?, pred, outer_filter);
    let mut stages: Vec<Box<dyn Operator>> = Vec::new();
    if !matches!(sel.items[..], [SelectItem::Wildcard]) {
        let exprs = sel
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => Err(DsmsError::plan("mixed `*` and columns")),
                SelectItem::Expr { expr, .. } => {
                    compile_scalar(expr, &outer_scope, engine.functions())
                }
            })
            .collect::<Result<Vec<_>>>()?;
        stages.push(Box::new(Project::new(exprs)));
    }
    let op: Box<dyn Operator> = if stages.is_empty() {
        Box::new(exists)
    } else {
        Box::new(TwoPortChain::new(Box::new(exists), Chain::new(stages)))
    };
    Ok(Plan {
        name: format!("window-exists:{}", outer_item.name),
        sources: vec![outer_item.name.clone(), inner_item.name.clone()],
        op,
    })
}

/// Detect Example 1's key shape: every sub-query conjunct is
/// `inner.col = outer.col` for the *same* column; returns the key
/// expressions over the (single) stream.
fn dedup_key(conjuncts: &[&AstExpr], pair_scope: &Scope) -> Result<Option<Vec<Expr>>> {
    if conjuncts.is_empty() {
        return Ok(None);
    }
    let mut keys = Vec::new();
    for c in conjuncts {
        let AstExpr::Bin(AstBinOp::Eq, a, b) = c else {
            return Ok(None);
        };
        let (
            AstExpr::Col {
                qualifier: qa,
                name: na,
            },
            AstExpr::Col {
                qualifier: qb,
                name: nb,
            },
        ) = (&**a, &**b)
        else {
            return Ok(None);
        };
        let (ra, ca) = pair_scope.resolve_column(qa.as_deref(), na)?;
        let (rb, cb) = pair_scope.resolve_column(qb.as_deref(), nb)?;
        if ra == rb || ca != cb {
            return Ok(None);
        }
        keys.push(Expr::col(ca));
    }
    Ok(Some(keys))
}

/// A two-input head operator followed by a single-input chain; needed
/// because [`Chain`] itself is single-input.
struct TwoPortChain {
    head: Box<dyn Operator>,
    tail: Chain,
    name: String,
}

impl TwoPortChain {
    fn new(head: Box<dyn Operator>, tail: Chain) -> TwoPortChain {
        let name = format!("{} -> {}", head.name(), tail.name());
        TwoPortChain { head, tail, name }
    }

    fn run_tail(&mut self, produced: Vec<Tuple>, out: &mut Vec<Tuple>) -> Result<()> {
        for t in produced {
            self.tail.on_tuple(0, &t, out)?;
        }
        Ok(())
    }
}

impl Operator for TwoPortChain {
    fn on_tuple(&mut self, port: usize, t: &Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        let mut produced = Vec::new();
        self.head.on_tuple(port, t, &mut produced)?;
        self.run_tail(produced, out)
    }

    fn on_punctuation(
        &mut self,
        ts: eslev_dsms::time::Timestamp,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        let mut produced = Vec::new();
        self.head.on_punctuation(ts, &mut produced)?;
        self.run_tail(produced, out)?;
        self.tail.on_punctuation(ts, out)
    }

    fn num_ports(&self) -> usize {
        self.head.num_ports()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn retained(&self) -> usize {
        self.head.retained() + self.tail.retained()
    }
}

// ------------------------------------------------------------------- SEQ

/// Projection instructions for SEQ-query outputs.
enum ProjItem {
    /// `alias.col` for a non-star element (last = only tuple).
    LastCol { elem: usize, col: usize },
    /// `FIRST(a*).col`.
    FirstCol { elem: usize, col: usize },
    /// `COUNT(a*)`.
    Count { elem: usize },
    /// `alias.col` on a star element: expands to one row per group tuple
    /// (footnote 4's multi-return).
    PerStar { elem: usize, col: usize },
}

fn plan_seq(engine: &Engine, sel: &SelectStmt, conjuncts: &[&AstExpr]) -> Result<Plan> {
    // Locate the SEQ term (possibly inside a CLEVEL comparison).
    let mut seq_term: Option<&AstExpr> = None;
    let mut level_cmp: Option<(AstBinOp, i64)> = None;
    let mut rest: Vec<&AstExpr> = Vec::new();
    for c in conjuncts {
        match c {
            AstExpr::Seq { .. } => {
                if seq_term.replace(c).is_some() {
                    return Err(DsmsError::plan("one SEQ term per query"));
                }
            }
            AstExpr::Bin(op, lhs, rhs)
                if matches!(
                    &**lhs,
                    AstExpr::Seq {
                        kind: SeqKind::ClevelSeq,
                        ..
                    }
                ) =>
            {
                let AstExpr::Lit(Value::Int(n)) = &**rhs else {
                    return Err(DsmsError::plan("CLEVEL_SEQ compares against an integer"));
                };
                if seq_term.replace(lhs).is_some() {
                    return Err(DsmsError::plan("one SEQ term per query"));
                }
                level_cmp = Some((*op, *n));
            }
            other => rest.push(other),
        }
    }
    let Some(AstExpr::Seq {
        kind,
        args,
        window,
        mode,
    }) = seq_term
    else {
        return Err(DsmsError::plan("SEQ term must be a top-level conjunct"));
    };

    // FROM bindings: each SEQ argument names a distinct FROM item; the
    // detector's port i = FROM position i.
    let mut rels = Vec::new();
    for f in &sel.from {
        rels.push((f.binding().to_string(), stream_schema_for(engine, f)?));
    }
    let from_scope = Scope::new(rels.clone());
    let mut elements = Vec::new();
    let mut elem_alias: Vec<String> = Vec::new();
    for a in args {
        let port = from_scope.rel_of(&a.alias).ok_or_else(|| {
            DsmsError::unknown(format!("SEQ argument `{}` is not in FROM", a.alias))
        })?;
        if elem_alias.contains(&a.alias) {
            return Err(DsmsError::plan(format!(
                "SEQ argument `{}` used twice; alias the stream instead",
                a.alias
            )));
        }
        elements.push(if a.star {
            Element::star(port)
        } else {
            Element::new(port)
        });
        elem_alias.push(a.alias.clone());
    }
    if elem_alias.len() != sel.from.len() {
        return Err(DsmsError::plan(
            "every FROM item must appear exactly once as a SEQ argument",
        ));
    }
    // Element-ordered scope for residuals/projections: rel i = element i.
    let elem_scope = Scope::new(
        elem_alias
            .iter()
            .map(|a| {
                let port = from_scope.rel_of(a).expect("validated above");
                (a.clone(), rels[port].1.clone())
            })
            .collect(),
    );
    let elem_of = |alias: &str| elem_alias.iter().position(|a| a == alias);

    // Event window.
    let ev_window = match window {
        None => None,
        Some(w) => {
            let anchor_alias = w.anchor.as_ref().ok_or_else(|| {
                DsmsError::plan("SEQ windows anchor at a sequence argument, not CURRENT")
            })?;
            let anchor = elem_of(anchor_alias)
                .ok_or_else(|| DsmsError::unknown(format!("window anchor `{anchor_alias}`")))?;
            let kind = match w.kind {
                AstWindowKind::Preceding => WindowKind::Preceding,
                AstWindowKind::Following => WindowKind::Following,
                AstWindowKind::PrecedingAndFollowing => {
                    return Err(DsmsError::plan(
                        "PRECEDING AND FOLLOWING applies to sub-query windows, not SEQ",
                    ))
                }
            };
            let dur = w.dur().ok_or_else(|| {
                DsmsError::plan("SEQ operator windows are time-based (RANGE), not ROWS")
            })?;
            Some(EventWindow { dur, anchor, kind })
        }
    };

    // Classify the remaining conjuncts.
    type ElemCol = (usize, usize);
    let mut equalities: Vec<((ElemCol, ElemCol), &AstExpr)> = Vec::new();
    let mut residual: Vec<&AstExpr> = Vec::new();
    for c in rest {
        if let Some(pair) = as_equality(c, &elem_scope) {
            equalities.push((pair, c));
            continue;
        }
        if apply_gap_constraint(c, &elem_scope, &elem_alias, &mut elements)? {
            continue;
        }
        // Single-element predicate?
        let mut rels_used = std::collections::BTreeSet::new();
        referenced_rels(c, &elem_scope, &mut rels_used);
        if rels_used.len() == 1 && !matches!(c, AstExpr::Exists { .. }) {
            let elem = *rels_used.iter().next().expect("len 1");
            let single = Scope::new(vec![(
                elem_alias[elem].clone(),
                elem_scope.schema(elem).clone(),
            )]);
            if let Ok(p) = compile_scalar(c, &single, engine.functions()) {
                let existing = elements[elem].predicate.take();
                elements[elem].predicate = Some(match existing {
                    None => p,
                    Some(prev) => Expr::and(prev, p),
                });
                continue;
            }
        }
        residual.push(c);
    }

    // Partition keys: one equality class covering every element on a
    // single column each. Unlifted equalities fall back to the residual
    // filter so nothing is silently dropped.
    let pairs: Vec<ElemColPair> = equalities.iter().map(|(p, _)| *p).collect();
    let partition = partition_by_port(&pairs, &elements);
    if partition.is_none() {
        residual.extend(equalities.iter().map(|(_, c)| *c));
    }
    let residual_filter = if residual.is_empty() {
        None
    } else {
        // Residuals evaluate over the last-tuple row; rewrite LAST(a*).c
        // to a plain column first.
        let rewritten: Vec<AstExpr> = residual
            .iter()
            .map(|c| rewrite_last_to_col(c))
            .collect::<Result<Vec<_>>>()?;
        let refs: Vec<&AstExpr> = rewritten.iter().collect();
        let expr = compile_conjunction(&refs, &elem_scope, engine)?;
        Some(
            Arc::new(move |m: &eslev_core::binding::SeqMatch| expr.eval_bool(&m.row_last()))
                as eslev_core::detector::MatchFilter,
        )
    };

    let pairing = mode.unwrap_or(match kind {
        SeqKind::Seq => PairingMode::Unrestricted,
        // Completion levels are defined against the single-run reading.
        _ => PairingMode::Consecutive,
    });
    let pattern = SeqPattern::new(elements, ev_window, pairing)?;
    let n = pattern.len();
    let star_count = pattern.star_count();

    // Projection.
    let mut proj: Vec<ProjItem> = Vec::new();
    for item in &sel.items {
        let SelectItem::Expr { expr, .. } = item else {
            return Err(DsmsError::plan("`SELECT *` is not supported with SEQ"));
        };
        match expr {
            AstExpr::Col { qualifier, name } => {
                let (elem, col) = resolve_seq_col(qualifier.as_deref(), name, &elem_scope)?;
                if pattern.elements[elem].star {
                    if star_count > 1 {
                        return Err(DsmsError::plan(
                            "per-tuple star columns need a single star argument (footnote 4)",
                        ));
                    }
                    proj.push(ProjItem::PerStar { elem, col });
                } else {
                    proj.push(ProjItem::LastCol { elem, col });
                }
            }
            AstExpr::StarAgg {
                kind: agg,
                alias,
                column,
            } => {
                let elem = elem_of(alias).ok_or_else(|| {
                    DsmsError::unknown(format!("star aggregate over unknown `{alias}`"))
                })?;
                if !pattern.elements[elem].star {
                    return Err(DsmsError::plan(format!("`{alias}` is not a star argument")));
                }
                match agg {
                    StarAggKind::Count => proj.push(ProjItem::Count { elem }),
                    StarAggKind::First | StarAggKind::Last => {
                        let col_name = column.as_ref().expect("enforced by parser");
                        let col = elem_scope.schema(elem).require_column(col_name)?;
                        proj.push(if *agg == StarAggKind::First {
                            ProjItem::FirstCol { elem, col }
                        } else {
                            ProjItem::LastCol { elem, col }
                        });
                    }
                }
            }
            other => {
                return Err(DsmsError::plan(format!(
                    "unsupported SEQ select item `{other}`"
                )))
            }
        }
    }

    let mut config = match kind {
        SeqKind::Seq => DetectorConfig::seq(pattern),
        SeqKind::ExceptionSeq | SeqKind::ClevelSeq => DetectorConfig::exception(pattern),
    };
    if let Some(keys) = partition {
        config = config.with_partition(keys);
    }
    if let Some(f) = residual_filter {
        config = config.with_filter(f);
    }
    let detector = Detector::new(config)?;
    let stmt_kind = *kind;
    let project: eslev_core::op::OutputProjection = Box::new(move |o: &DetectorOutput| {
        let rows = match (o, stmt_kind) {
            // SEQ emits completed matches only (exceptions never reach
            // here: the detector runs in Seq kind).
            (DetectorOutput::Match(m), SeqKind::Seq) => {
                project_bindings(&proj, Some(&m.bindings), m.ts())
            }
            // EXCEPTION_SEQ is true exactly when a violation occurred.
            (DetectorOutput::Match(_), SeqKind::ExceptionSeq) => Vec::new(),
            (DetectorOutput::Exception(e), SeqKind::ExceptionSeq) => {
                project_bindings(&proj, Some(&e.partial), e.ts)
            }
            // CLEVEL_SEQ filters both by the level comparison: a
            // completed sequence has level n, a stalled one its
            // completion level.
            (DetectorOutput::Match(m), SeqKind::ClevelSeq) => match level_cmp {
                Some((op, lit)) if level_passes(op, n as i64, lit) => {
                    project_bindings(&proj, Some(&m.bindings), m.ts())
                }
                _ => Vec::new(),
            },
            (DetectorOutput::Exception(e), SeqKind::ClevelSeq) => match level_cmp {
                Some((op, lit)) if level_passes(op, e.completion_level() as i64, lit) => {
                    project_bindings(&proj, Some(&e.partial), e.ts)
                }
                _ => Vec::new(),
            },
            (DetectorOutput::Exception(_), SeqKind::Seq) => Vec::new(),
        };
        Ok(rows)
    });
    let op = DetectorOp::new(detector, project);
    Ok(Plan {
        name: format!("seq:{}", elem_alias.join(",")),
        sources: sel.from.iter().map(|f| f.name.clone()).collect(),
        op: Box::new(op),
    })
}

fn level_passes(op: AstBinOp, level: i64, lit: i64) -> bool {
    match op {
        AstBinOp::Lt => level < lit,
        AstBinOp::Le => level <= lit,
        AstBinOp::Gt => level > lit,
        AstBinOp::Ge => level >= lit,
        AstBinOp::Eq => level == lit,
        AstBinOp::Ne => level != lit,
        _ => false,
    }
}

fn project_bindings(
    proj: &[ProjItem],
    bindings: Option<&[eslev_core::binding::Binding]>,
    ts: eslev_dsms::time::Timestamp,
) -> Vec<Tuple> {
    let bindings = bindings.unwrap_or(&[]);
    let value_of = |item: &ProjItem, star_idx: Option<usize>| -> Value {
        match item {
            ProjItem::LastCol { elem, col } => bindings
                .get(*elem)
                .map(|b| b.last().value(*col).clone())
                .unwrap_or(Value::Null),
            ProjItem::FirstCol { elem, col } => bindings
                .get(*elem)
                .map(|b| b.first().value(*col).clone())
                .unwrap_or(Value::Null),
            ProjItem::Count { elem } => bindings
                .get(*elem)
                .map(|b| Value::Int(b.count() as i64))
                .unwrap_or(Value::Null),
            ProjItem::PerStar { elem, col } => match (bindings.get(*elem), star_idx) {
                (Some(b), Some(i)) => b.tuples()[i].value(*col).clone(),
                (Some(b), None) => b.last().value(*col).clone(),
                (None, _) => Value::Null,
            },
        }
    };
    // Multi-return expansion when a PerStar item exists and the star
    // element is bound.
    let star_elem = proj.iter().find_map(|p| match p {
        ProjItem::PerStar { elem, .. } => Some(*elem),
        _ => None,
    });
    let rows: Vec<Option<usize>> = match star_elem.and_then(|e| bindings.get(e)) {
        Some(b) => (0..b.count()).map(Some).collect(),
        None => vec![None],
    };
    rows.into_iter()
        .map(|idx| {
            let vals: Vec<Value> = proj.iter().map(|p| value_of(p, idx)).collect();
            Tuple::new(vals, ts, 0)
        })
        .collect()
}

fn resolve_seq_col(
    qualifier: Option<&str>,
    name: &str,
    elem_scope: &Scope,
) -> Result<(usize, usize)> {
    elem_scope.resolve_column(qualifier, name)
}

/// `X.col = Y.col` between two different elements.
fn as_equality(c: &AstExpr, elem_scope: &Scope) -> Option<((usize, usize), (usize, usize))> {
    let AstExpr::Bin(AstBinOp::Eq, a, b) = c else {
        return None;
    };
    let col = |e: &AstExpr| -> Option<(usize, usize)> {
        let AstExpr::Col { qualifier, name } = e else {
            return None;
        };
        elem_scope.resolve_column(qualifier.as_deref(), name).ok()
    };
    let (x, y) = (col(a)?, col(b)?);
    if x.0 == y.0 {
        return None;
    }
    Some((x, y))
}

/// Recognize the two gap-constraint shapes and fold them into the
/// elements; returns whether the conjunct was consumed.
fn apply_gap_constraint(
    c: &AstExpr,
    elem_scope: &Scope,
    elem_alias: &[String],
    elements: &mut [Element],
) -> Result<bool> {
    let AstExpr::Bin(op, lhs, rhs) = c else {
        return Ok(false);
    };
    if !matches!(op, AstBinOp::Le | AstBinOp::Lt) {
        return Ok(false);
    }
    let AstExpr::Dur(d) = &**rhs else {
        return Ok(false);
    };
    let AstExpr::Bin(AstBinOp::Sub, newer, older) = &**lhs else {
        return Ok(false);
    };
    let elem_of = |alias: &str| elem_alias.iter().position(|a| a == alias);
    // b.t − a.previous.t is nonsense; a.t − a.previous.t ≤ d → star gap.
    if let (
        AstExpr::Col {
            qualifier: Some(q), ..
        },
        AstExpr::PrevCol { qualifier: pq, .. },
    ) = (&**newer, &**older)
    {
        if q == pq {
            let elem =
                elem_of(q).ok_or_else(|| DsmsError::unknown(format!("`{q}` in gap constraint")))?;
            if !elements[elem].star {
                return Err(DsmsError::plan(format!(
                    "`{q}.previous` needs `{q}` to be a star argument"
                )));
            }
            elements[elem].star_gap = Some(*d);
            return Ok(true);
        }
    }
    // b.t − LAST(a*).t ≤ d or b.t − a.t ≤ d with a immediately before b.
    let newer_elem = match &**newer {
        AstExpr::Col {
            qualifier: Some(q), ..
        } => elem_of(q),
        _ => None,
    };
    let older_elem = match &**older {
        AstExpr::StarAgg {
            kind: StarAggKind::Last,
            alias,
            ..
        } => elem_of(alias),
        AstExpr::Col {
            qualifier: Some(q), ..
        } => elem_of(q),
        _ => None,
    };
    if let (Some(b), Some(a)) = (newer_elem, older_elem) {
        if a + 1 == b {
            // Sanity: the subtraction should be over timestamp columns.
            let _ = elem_scope; // columns validated at residual compile otherwise
            elements[b].max_gap_from_prev = Some(*d);
            return Ok(true);
        }
    }
    Ok(false)
}

/// Lift a single equality class covering every element (one column per
/// element) into per-port partition keys; `None` when no class covers
/// the whole pattern (the caller keeps the equalities as residuals).
type ElemColPair = ((usize, usize), (usize, usize));

fn partition_by_port(equalities: &[ElemColPair], elements: &[Element]) -> Option<Vec<Expr>> {
    if equalities.is_empty() {
        return None;
    }
    let n = elements.len();
    // Union-find over (elem, col).
    let mut groups: Vec<std::collections::BTreeSet<(usize, usize)>> = Vec::new();
    for (x, y) in equalities {
        let gx = groups.iter().position(|g| g.contains(x));
        let gy = groups.iter().position(|g| g.contains(y));
        match (gx, gy) {
            (Some(i), Some(j)) if i != j => {
                let merged = groups.remove(j.max(i).max(j));
                let keep = i.min(j);
                groups[keep].extend(merged);
            }
            (Some(i), None) => {
                groups[i].insert(*y);
            }
            (None, Some(j)) => {
                groups[j].insert(*x);
            }
            (None, None) => {
                groups.push([*x, *y].into_iter().collect());
            }
            _ => {}
        }
    }
    for g in &groups {
        let elems: std::collections::BTreeSet<usize> = g.iter().map(|(e, _)| *e).collect();
        if elems.len() == n && g.len() == n {
            // One key per detector port (element -> port).
            let num_ports = elements.iter().map(|e| e.port).max().unwrap_or(0) + 1;
            let mut keys: Vec<Option<Expr>> = vec![None; num_ports];
            for (e, c) in g {
                let port = elements[*e].port;
                // First writer wins; two elements on one port share the
                // key column or the class simply fails the all-ports
                // check below.
                if keys[port].is_none() {
                    keys[port] = Some(Expr::col(*c));
                }
            }
            if keys.iter().all(|k| k.is_some()) {
                return Some(keys.into_iter().map(|k| k.expect("checked")).collect());
            }
        }
    }
    None
}

/// Rewrite `LAST(a*).col` to `a.col` (the last-tuple row convention used
/// by residual filters); rejects FIRST/COUNT, which have no row-level
/// equivalent.
fn rewrite_last_to_col(c: &AstExpr) -> Result<AstExpr> {
    Ok(match c {
        AstExpr::StarAgg {
            kind: StarAggKind::Last,
            alias,
            column,
        } => AstExpr::Col {
            qualifier: Some(alias.clone()),
            name: column.clone().expect("parser enforces projection"),
        },
        AstExpr::StarAgg { .. } => {
            return Err(DsmsError::plan(
                "FIRST/COUNT star aggregates are not supported in residual predicates",
            ))
        }
        AstExpr::Bin(op, a, b) => AstExpr::Bin(
            *op,
            Box::new(rewrite_last_to_col(a)?),
            Box::new(rewrite_last_to_col(b)?),
        ),
        AstExpr::Not(e) => AstExpr::Not(Box::new(rewrite_last_to_col(e)?)),
        AstExpr::IsNull { expr, negated } => AstExpr::IsNull {
            expr: Box::new(rewrite_last_to_col(expr)?),
            negated: *negated,
        },
        AstExpr::Like(e, p) => AstExpr::Like(Box::new(rewrite_last_to_col(e)?), p.clone()),
        AstExpr::Call { name, args } => AstExpr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(rewrite_last_to_col)
                .collect::<Result<Vec<_>>>()?,
        },
        other => other.clone(),
    })
}
