//! Logical plan IR: the middle layer between the AST and physical
//! operators.
//!
//! [`build_logical`] lowers a parsed `SELECT` into a [`LogicalPlan`]
//! tree that names the query's *shape* (filter, project, window,
//! sequence, semi-join, lookup, aggregate) but keeps predicates as AST
//! fragments. [`rewrite_logical`] then runs a small pass of named
//! rewrites over the tree:
//!
//! * **predicate pushdown** — filters sink below windows, into the
//!   outer branch of windowed EXISTS semi-joins, and below table
//!   lookups;
//! * **SEQ predicate pushdown** — single-element conjuncts move into
//!   the sequence element that reads the input stream, so irrelevant
//!   tuples never enter the detector's history;
//! * **gap-constraint folding** — `b.t − LAST(a*).t ≤ d` and
//!   `a.t − a.previous.t ≤ d` become element timing bounds;
//! * **partition-key lifting** — an equality class covering every
//!   element becomes the detector's hash partition;
//! * **dedup specialization** — Example 1's self-stream `NOT EXISTS`
//!   becomes the dedicated O(1)-per-key dedup node;
//! * **index-probe lifting** — a `table.col = outer-expr` equality in a
//!   table EXISTS becomes an index probe;
//! * **projection pruning** — single-stream projections annotate the
//!   source with the columns actually read;
//! * **state-bound annotation** — each SEQ node is annotated with the
//!   pairing-mode-dependent bound on retained history (§3.1.1: the
//!   central systems claim is that RECENT / CHRONICLE / CONSECUTIVE
//!   bound history aggressively where UNRESTRICTED cannot).
//!
//! The planner lowers the *rewritten* tree to physical operators, so
//! what `EXPLAIN` prints is what actually runs.

use crate::ast::*;
use crate::scope::{compile_scalar, referenced_rels, Scope};
use eslev_core::mode::PairingMode;
use eslev_dsms::engine::Engine;
use eslev_dsms::error::{DsmsError, Result};
use eslev_dsms::schema::SchemaRef;
use eslev_dsms::time::Duration;
use std::fmt::Write as _;

/// One element of a logical SEQ node: which stream it reads, whether it
/// repeats, and the predicates/timing bounds the rewriter has pushed
/// into it.
#[derive(Clone, Debug)]
pub struct SeqElementPlan {
    /// FROM binding the element refers to.
    pub alias: String,
    /// Underlying stream name.
    pub stream: String,
    /// Detector input port (= FROM position).
    pub port: usize,
    /// `alias*` — repeating element.
    pub star: bool,
    /// Conjuncts pushed into this element (AND-ed at lowering).
    pub predicates: Vec<AstExpr>,
    /// Folded `b.t − LAST(a*).t ≤ d` bound.
    pub max_gap_from_prev: Option<Duration>,
    /// Folded `a.t − a.previous.t ≤ d` bound (star elements).
    pub star_gap: Option<Duration>,
}

/// Logical SEQ node: everything the detector lowering needs, with the
/// conjunct classification made explicit instead of recomputed.
#[derive(Clone, Debug)]
pub struct SeqPlan {
    /// Which SEQ-family operator.
    pub kind: SeqKind,
    /// Resolved pairing mode (the statement's MODE clause, or the
    /// kind's default).
    pub mode: PairingMode,
    /// Elements in sequence order.
    pub elements: Vec<SeqElementPlan>,
    /// Event window, if any.
    pub window: Option<AstWindow>,
    /// Conjuncts not (yet) classified into elements/partition/gaps.
    pub residual: Vec<AstExpr>,
    /// Per-port partition key `(column index, column name)`, lifted
    /// from an equality class covering every element.
    pub partition: Option<Vec<(usize, String)>>,
    /// `CLEVEL_SEQ(...) <op> n` comparison.
    pub level_cmp: Option<(AstBinOp, i64)>,
    /// Pairing-mode-aware bound on retained history (annotation only).
    pub state_bound: Option<String>,
}

/// A logical query plan. Each node is a query shape the physical
/// planner knows how to lower; predicates stay as AST fragments so the
/// rewriter can move them without compiling.
#[derive(Clone, Debug)]
pub enum LogicalPlan {
    /// A stream scan. `columns` is the projection-pruning annotation:
    /// the columns actually read downstream, when a strict subset.
    Source {
        /// Stream name.
        stream: String,
        /// FROM binding.
        alias: String,
        /// Pruned column set (annotation).
        columns: Option<Vec<String>>,
    },
    /// Conjunctive filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The conjuncts (implicitly AND-ed).
        predicates: Vec<AstExpr>,
    },
    /// Expression projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions.
        exprs: Vec<AstExpr>,
    },
    /// A sliding window over the input.
    Window {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The window spec.
        window: AstWindow,
    },
    /// Example 1's specialized duplicate eliminator.
    Dedup {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Key columns `(index, name)`.
        keys: Vec<(usize, String)>,
        /// Dedup horizon.
        window: Duration,
    },
    /// Windowed (NOT) EXISTS between an outer stream and an inner
    /// windowed stream.
    SemiJoin {
        /// Outer (probe) side.
        outer: Box<LogicalPlan>,
        /// Inner (windowed) side.
        inner: Box<LogicalPlan>,
        /// `NOT EXISTS` vs `EXISTS`.
        negated: bool,
        /// Correlation conjuncts from the sub-query's WHERE.
        predicates: Vec<AstExpr>,
    },
    /// (NOT) EXISTS against a table.
    Lookup {
        /// Input plan (the outer stream).
        input: Box<LogicalPlan>,
        /// Table name.
        table: String,
        /// `NOT EXISTS` vs `EXISTS`.
        negated: bool,
        /// Sub-query conjuncts.
        predicates: Vec<AstExpr>,
        /// Lifted index probe: `(table column, outer key expr)`.
        probe: Option<(String, AstExpr)>,
    },
    /// Grouped (optionally windowed) aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by expressions.
        group_by: Vec<AstExpr>,
        /// Aggregate calls.
        aggs: Vec<AstExpr>,
        /// Sliding window, if any.
        window: Option<AstWindow>,
    },
    /// A SEQ / EXCEPTION_SEQ / CLEVEL_SEQ detector.
    Seq(SeqPlan),
}

impl LogicalPlan {
    /// Render the tree, one node per line, two-space indented.
    pub fn render(&self) -> String {
        self.render_with(&mut |_| None)
    }

    /// Render the tree with a per-node annotation callback: whatever the
    /// callback returns for a node is appended to that node's line
    /// (`EXPLAIN ANALYZE` attaches runtime stats this way).
    pub fn render_with(&self, annotate: &mut dyn FnMut(&LogicalPlan) -> Option<String>) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 1, annotate);
        out
    }

    fn render_into(
        &self,
        out: &mut String,
        depth: usize,
        annotate: &mut dyn FnMut(&LogicalPlan) -> Option<String>,
    ) {
        let pad = "  ".repeat(depth);
        let ann = annotate(self).unwrap_or_default();
        match self {
            LogicalPlan::Source {
                stream,
                alias,
                columns,
            } => {
                let _ = write!(out, "{pad}Source {stream}");
                if alias != stream {
                    let _ = write!(out, " AS {alias}");
                }
                if let Some(cols) = columns {
                    let _ = write!(out, " columns=[{}]", cols.join(", "));
                }
                out.push_str(&ann);
                out.push('\n');
            }
            LogicalPlan::Filter { input, predicates } => {
                let _ = write!(out, "{pad}Filter {}", join_exprs(predicates, " AND "));
                out.push_str(&ann);
                out.push('\n');
                input.render_into(out, depth + 1, annotate);
            }
            LogicalPlan::Project { input, exprs } => {
                let _ = write!(out, "{pad}Project [{}]", join_exprs(exprs, ", "));
                out.push_str(&ann);
                out.push('\n');
                input.render_into(out, depth + 1, annotate);
            }
            LogicalPlan::Window { input, window } => {
                let _ = write!(out, "{pad}Window {}", fmt_window(window));
                out.push_str(&ann);
                out.push('\n');
                input.render_into(out, depth + 1, annotate);
            }
            LogicalPlan::Dedup {
                input,
                keys,
                window,
            } => {
                let names: Vec<&str> = keys.iter().map(|(_, n)| n.as_str()).collect();
                let _ = write!(
                    out,
                    "{pad}Dedup key=[{}] window={} state=O(1) per key",
                    names.join(", "),
                    fmt_dur(*window)
                );
                out.push_str(&ann);
                out.push('\n');
                input.render_into(out, depth + 1, annotate);
            }
            LogicalPlan::SemiJoin {
                outer,
                inner,
                negated,
                predicates,
            } => {
                let _ = write!(
                    out,
                    "{pad}{} on {}",
                    if *negated {
                        "WindowNotExists"
                    } else {
                        "WindowExists"
                    },
                    join_exprs(predicates, " AND ")
                );
                out.push_str(&ann);
                out.push('\n');
                outer.render_into(out, depth + 1, annotate);
                inner.render_into(out, depth + 1, annotate);
            }
            LogicalPlan::Lookup {
                input,
                table,
                negated,
                predicates,
                probe,
            } => {
                let _ = write!(
                    out,
                    "{pad}{} table={table} on {}",
                    if *negated {
                        "TableNotExists"
                    } else {
                        "TableExists"
                    },
                    join_exprs(predicates, " AND ")
                );
                if let Some((col, key)) = probe {
                    let _ = write!(out, " probe={col}={key}");
                }
                out.push_str(&ann);
                out.push('\n');
                input.render_into(out, depth + 1, annotate);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                window,
            } => {
                let _ = write!(
                    out,
                    "{pad}Aggregate group=[{}] aggs=[{}]",
                    join_exprs(group_by, ", "),
                    join_exprs(aggs, ", ")
                );
                if let Some(w) = window {
                    let _ = write!(out, " window={}", fmt_window(w));
                }
                out.push_str(&ann);
                out.push('\n');
                input.render_into(out, depth + 1, annotate);
            }
            LogicalPlan::Seq(seq) => {
                let kw = match seq.kind {
                    SeqKind::Seq => "Seq",
                    SeqKind::ExceptionSeq => "ExceptionSeq",
                    SeqKind::ClevelSeq => "ClevelSeq",
                };
                let _ = write!(out, "{pad}{kw} mode={}", seq.mode.keyword());
                if let Some(w) = &seq.window {
                    let _ = write!(out, " window={}", fmt_window(w));
                }
                if let Some(keys) = &seq.partition {
                    let names: Vec<&str> = keys.iter().map(|(_, n)| n.as_str()).collect();
                    let _ = write!(out, " partition=[{}]", names.join(", "));
                }
                if let Some((op, n)) = &seq.level_cmp {
                    let _ = write!(out, " clevel{}{n}", fmt_binop(*op));
                }
                if let Some(b) = &seq.state_bound {
                    let _ = write!(out, " state={b}");
                }
                out.push_str(&ann);
                out.push('\n');
                if !seq.residual.is_empty() {
                    let _ = writeln!(
                        out,
                        "{pad}  residual: {}",
                        join_exprs(&seq.residual, " AND ")
                    );
                }
                for e in &seq.elements {
                    let _ = write!(
                        out,
                        "{pad}  element {}{} <- {} (port {})",
                        e.alias,
                        if e.star { "*" } else { "" },
                        e.stream,
                        e.port
                    );
                    if !e.predicates.is_empty() {
                        let _ = write!(out, " filter: {}", join_exprs(&e.predicates, " AND "));
                    }
                    if let Some(d) = e.max_gap_from_prev {
                        let _ = write!(out, " max_gap_from_prev={}", fmt_dur(d));
                    }
                    if let Some(d) = e.star_gap {
                        let _ = write!(out, " star_gap={}", fmt_dur(d));
                    }
                    out.push('\n');
                }
            }
        }
    }
}

fn join_exprs(exprs: &[AstExpr], sep: &str) -> String {
    exprs
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(sep)
}

fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us.is_multiple_of(1_000_000) {
        format!("{}s", us / 1_000_000)
    } else {
        format!("{us}us")
    }
}

fn fmt_window(w: &AstWindow) -> String {
    let len = match w.length {
        WindowLength::Time(d) => fmt_dur(d),
        WindowLength::Rows(n) => format!("ROWS {n}"),
    };
    let kind = match w.kind {
        AstWindowKind::Preceding => "PRECEDING",
        AstWindowKind::Following => "FOLLOWING",
        AstWindowKind::PrecedingAndFollowing => "PRECEDING AND FOLLOWING",
    };
    format!(
        "[{len} {kind} {}]",
        w.anchor.as_deref().unwrap_or("CURRENT")
    )
}

fn fmt_binop(op: AstBinOp) -> &'static str {
    match op {
        AstBinOp::Lt => "<",
        AstBinOp::Le => "<=",
        AstBinOp::Gt => ">",
        AstBinOp::Ge => ">=",
        AstBinOp::Eq => "=",
        AstBinOp::Ne => "<>",
        _ => "?",
    }
}

// --------------------------------------------------------------- building

/// Whether an expression contains a SEQ-family term.
pub(crate) fn contains_seq(e: &AstExpr) -> bool {
    match e {
        AstExpr::Seq { .. } => true,
        AstExpr::Bin(_, a, b) => contains_seq(a) || contains_seq(b),
        AstExpr::Not(i) => contains_seq(i),
        _ => false,
    }
}

/// Whether a select item is a registered aggregate call (and not
/// shadowed by a UDF).
pub(crate) fn is_aggregate_item(engine: &Engine, item: &SelectItem) -> bool {
    match item {
        SelectItem::Expr {
            expr: AstExpr::Call { name, args },
            ..
        } => {
            engine.aggregates().get(name).is_some()
                && engine.functions().get(name).is_none()
                && args.len() == 1
        }
        _ => false,
    }
}

fn source(item: &FromItem) -> LogicalPlan {
    LogicalPlan::Source {
        stream: item.name.clone(),
        alias: item.binding().to_string(),
        columns: None,
    }
}

fn wrap_filter(input: LogicalPlan, predicates: Vec<AstExpr>) -> LogicalPlan {
    if predicates.is_empty() {
        input
    } else {
        LogicalPlan::Filter {
            input: Box::new(input),
            predicates,
        }
    }
}

fn wrap_project(input: LogicalPlan, items: &[SelectItem]) -> LogicalPlan {
    if matches!(items[..], [SelectItem::Wildcard]) {
        return input;
    }
    let exprs: Vec<AstExpr> = items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Wildcard => None,
            SelectItem::Expr { expr, .. } => Some(expr.clone()),
        })
        .collect();
    LogicalPlan::Project {
        input: Box::new(input),
        exprs,
    }
}

/// Lower a `SELECT` statement to the *naive* logical plan: query shape
/// resolved, every WHERE conjunct still in place, no annotations. The
/// rewriter ([`rewrite_logical`]) turns this into the plan the physical
/// lowering consumes.
pub fn build_logical(engine: &Engine, sel: &SelectStmt) -> Result<LogicalPlan> {
    if sel.from.is_empty() {
        return Err(DsmsError::plan("FROM clause is required"));
    }
    let conjuncts: Vec<&AstExpr> = sel
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default();
    if conjuncts.iter().any(|c| contains_seq(c)) {
        return build_seq(engine, sel, &conjuncts);
    }
    if let Some(pos) = conjuncts
        .iter()
        .position(|c| matches!(c, AstExpr::Exists { .. }))
    {
        let AstExpr::Exists { negated, subquery } = conjuncts[pos] else {
            unreachable!()
        };
        let rest: Vec<AstExpr> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != pos)
            .map(|(_, c)| (*c).clone())
            .collect();
        let sub_conjuncts: Vec<AstExpr> = subquery
            .where_clause
            .as_ref()
            .map(|w| split_conjuncts(w).into_iter().cloned().collect())
            .unwrap_or_default();
        let inner = &subquery.from[0];
        if engine.table(&inner.name).is_ok() {
            // Outer conjuncts sit above the lookup until pushdown.
            let lookup = LogicalPlan::Lookup {
                input: Box::new(source(&sel.from[0])),
                table: inner.name.clone(),
                negated: *negated,
                predicates: sub_conjuncts,
                probe: None,
            };
            return Ok(wrap_project(wrap_filter(lookup, rest), &sel.items));
        }
        let inner_scan = match &inner.window {
            Some(w) => LogicalPlan::Window {
                input: Box::new(source(inner)),
                window: w.clone(),
            },
            None => source(inner),
        };
        let semi = LogicalPlan::SemiJoin {
            outer: Box::new(source(&sel.from[0])),
            inner: Box::new(inner_scan),
            negated: *negated,
            predicates: sub_conjuncts,
        };
        return Ok(wrap_project(wrap_filter(semi, rest), &sel.items));
    }
    if sel.items.iter().any(|i| is_aggregate_item(engine, i)) {
        let mut input = source(&sel.from[0]);
        if let Some(w) = &sel.from[0].window {
            input = LogicalPlan::Window {
                input: Box::new(input),
                window: w.clone(),
            };
        }
        // Naive placement: the filter reads window contents; pushdown
        // moves it below (valid for per-row predicates).
        let input = wrap_filter(input, conjuncts.iter().map(|c| (*c).clone()).collect());
        let mut group_by = Vec::new();
        let mut aggs = Vec::new();
        for item in &sel.items {
            if let SelectItem::Expr { expr, .. } = item {
                if is_aggregate_item(engine, item) {
                    aggs.push(expr.clone());
                } else if sel.group_by.is_empty() {
                    group_by.push(expr.clone());
                }
            }
        }
        for g in &sel.group_by {
            group_by.push(g.clone());
        }
        return Ok(LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by,
            aggs,
            window: sel.from[0].window.clone(),
        });
    }
    let filtered = wrap_filter(
        source(&sel.from[0]),
        conjuncts.iter().map(|c| (*c).clone()).collect(),
    );
    Ok(wrap_project(filtered, &sel.items))
}

fn build_seq(engine: &Engine, sel: &SelectStmt, conjuncts: &[&AstExpr]) -> Result<LogicalPlan> {
    // Locate the SEQ term (possibly inside a CLEVEL comparison).
    let mut seq_term: Option<&AstExpr> = None;
    let mut level_cmp: Option<(AstBinOp, i64)> = None;
    let mut rest: Vec<&AstExpr> = Vec::new();
    for c in conjuncts {
        match c {
            AstExpr::Seq { .. } => {
                if seq_term.replace(c).is_some() {
                    return Err(DsmsError::plan("one SEQ term per query"));
                }
            }
            AstExpr::Bin(op, lhs, rhs)
                if matches!(
                    &**lhs,
                    AstExpr::Seq {
                        kind: SeqKind::ClevelSeq,
                        ..
                    }
                ) =>
            {
                let AstExpr::Lit(eslev_dsms::value::Value::Int(n)) = &**rhs else {
                    return Err(DsmsError::plan("CLEVEL_SEQ compares against an integer"));
                };
                if seq_term.replace(lhs).is_some() {
                    return Err(DsmsError::plan("one SEQ term per query"));
                }
                level_cmp = Some((*op, *n));
            }
            other => rest.push(other),
        }
    }
    let Some(AstExpr::Seq {
        kind,
        args,
        window,
        mode,
    }) = seq_term
    else {
        return Err(DsmsError::plan("SEQ term must be a top-level conjunct"));
    };

    // FROM bindings: each SEQ argument names a distinct FROM item; the
    // detector's port i = FROM position i.
    let mut rels = Vec::new();
    for f in &sel.from {
        rels.push((f.binding().to_string(), engine.stream_schema(&f.name)?));
    }
    let from_scope = Scope::new(rels.clone());
    let mut elements = Vec::new();
    for a in args {
        let port = from_scope.rel_of(&a.alias).ok_or_else(|| {
            DsmsError::unknown(format!("SEQ argument `{}` is not in FROM", a.alias))
        })?;
        if elements.iter().any(|e: &SeqElementPlan| e.alias == a.alias) {
            return Err(DsmsError::plan(format!(
                "SEQ argument `{}` used twice; alias the stream instead",
                a.alias
            )));
        }
        elements.push(SeqElementPlan {
            alias: a.alias.clone(),
            stream: sel.from[port].name.clone(),
            port,
            star: a.star,
            predicates: Vec::new(),
            max_gap_from_prev: None,
            star_gap: None,
        });
    }
    if elements.len() != sel.from.len() {
        return Err(DsmsError::plan(
            "every FROM item must appear exactly once as a SEQ argument",
        ));
    }
    // Window shape checks up front, so EXPLAIN fails where EXECUTE would.
    if let Some(w) = window {
        let anchor_alias = w.anchor.as_ref().ok_or_else(|| {
            DsmsError::plan("SEQ windows anchor at a sequence argument, not CURRENT")
        })?;
        if !elements.iter().any(|e| &e.alias == anchor_alias) {
            return Err(DsmsError::unknown(format!(
                "window anchor `{anchor_alias}`"
            )));
        }
        if w.kind == AstWindowKind::PrecedingAndFollowing {
            return Err(DsmsError::plan(
                "PRECEDING AND FOLLOWING applies to sub-query windows, not SEQ",
            ));
        }
        if w.dur().is_none() {
            return Err(DsmsError::plan(
                "SEQ operator windows are time-based (RANGE), not ROWS",
            ));
        }
    }
    let pairing = mode.unwrap_or(match kind {
        SeqKind::Seq => PairingMode::Unrestricted,
        // Completion levels are defined against the single-run reading.
        _ => PairingMode::Consecutive,
    });
    Ok(LogicalPlan::Seq(SeqPlan {
        kind: *kind,
        mode: pairing,
        elements,
        window: window.clone(),
        residual: rest.into_iter().cloned().collect(),
        partition: None,
        level_cmp,
        state_bound: None,
    }))
}

// -------------------------------------------------------------- rewriting

/// Run the rewrite pass; returns the rewritten plan and the names of
/// the rewrites that actually fired, in application order.
pub fn rewrite_logical(
    engine: &Engine,
    sel: &SelectStmt,
    plan: LogicalPlan,
) -> Result<(LogicalPlan, Vec<String>)> {
    let mut applied = Vec::new();
    let plan = rewrite_node(engine, sel, plan, &mut applied)?;
    Ok((plan, applied))
}

fn note(applied: &mut Vec<String>, name: &str) {
    if !applied.iter().any(|a| a == name) {
        applied.push(name.to_string());
    }
}

fn rewrite_node(
    engine: &Engine,
    sel: &SelectStmt,
    plan: LogicalPlan,
    applied: &mut Vec<String>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Seq(mut seq) => {
            rewrite_seq(engine, &mut seq, applied)?;
            LogicalPlan::Seq(seq)
        }
        LogicalPlan::Project { input, exprs } => {
            let input = rewrite_node(engine, sel, *input, applied)?;
            let mut node = LogicalPlan::Project {
                input: Box::new(input),
                exprs,
            };
            prune_projection(engine, &mut node, applied);
            node
        }
        LogicalPlan::Filter { input, predicates } => match *input {
            // Per-row predicates commute with windowing: filtering the
            // arrivals and filtering the window contents keep the same
            // rows for any row-local predicate.
            LogicalPlan::Window { input, window } => {
                note(applied, "predicate-pushdown-below-window");
                let pushed = LogicalPlan::Window {
                    input: Box::new(wrap_filter(*input, predicates)),
                    window,
                };
                rewrite_node(engine, sel, pushed, applied)?
            }
            // Outer conjuncts only reference the outer stream, so they
            // sink into the probe side: fewer pending outers retained.
            LogicalPlan::SemiJoin {
                outer,
                inner,
                negated,
                predicates: sub,
            } => {
                note(applied, "predicate-pushdown-into-outer");
                let pushed = LogicalPlan::SemiJoin {
                    outer: Box::new(wrap_filter(*outer, predicates)),
                    inner,
                    negated,
                    predicates: sub,
                };
                rewrite_node(engine, sel, pushed, applied)?
            }
            // A lookup neither adds nor rewrites rows, so the outer
            // filter runs before the probe.
            LogicalPlan::Lookup {
                input,
                table,
                negated,
                predicates: sub,
                probe,
            } => {
                note(applied, "predicate-pushdown-below-lookup");
                let pushed = LogicalPlan::Lookup {
                    input: Box::new(wrap_filter(*input, predicates)),
                    table,
                    negated,
                    predicates: sub,
                    probe,
                };
                rewrite_node(engine, sel, pushed, applied)?
            }
            other => LogicalPlan::Filter {
                input: Box::new(rewrite_node(engine, sel, other, applied)?),
                predicates,
            },
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            window,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite_node(engine, sel, *input, applied)?),
            group_by,
            aggs,
            window,
        },
        LogicalPlan::SemiJoin {
            outer,
            inner,
            negated,
            predicates,
        } => {
            if let Some(node) =
                try_dedup_specialization(engine, sel, &outer, &inner, negated, &predicates)?
            {
                note(applied, "dedup-specialization");
                node
            } else {
                LogicalPlan::SemiJoin {
                    outer,
                    inner,
                    negated,
                    predicates,
                }
            }
        }
        LogicalPlan::Lookup {
            input,
            table,
            negated,
            predicates,
            probe,
        } => {
            let mut node = LogicalPlan::Lookup {
                input,
                table,
                negated,
                predicates,
                probe,
            };
            lift_index_probe(engine, sel, &mut node, applied)?;
            node
        }
        leaf => leaf,
    })
}

/// Example 1's shape: self-stream `NOT EXISTS`, `PRECEDING` window,
/// `SELECT *`, no outer filter, and every sub-query conjunct an
/// `inner.col = outer.col` equality on the same column.
fn try_dedup_specialization(
    engine: &Engine,
    sel: &SelectStmt,
    outer: &LogicalPlan,
    inner: &LogicalPlan,
    negated: bool,
    predicates: &[AstExpr],
) -> Result<Option<LogicalPlan>> {
    if !negated || !matches!(sel.items[..], [SelectItem::Wildcard]) {
        return Ok(None);
    }
    let LogicalPlan::Source {
        stream: outer_stream,
        alias: outer_alias,
        ..
    } = outer
    else {
        return Ok(None); // outer already filtered: not the bare shape
    };
    let LogicalPlan::Window { input, window } = inner else {
        return Ok(None);
    };
    let LogicalPlan::Source {
        stream: inner_stream,
        alias: inner_alias,
        ..
    } = &**input
    else {
        return Ok(None);
    };
    if outer_stream != inner_stream || window.kind != AstWindowKind::Preceding {
        return Ok(None);
    }
    let Some(dur) = window.dur() else {
        return Ok(None);
    };
    let schema = engine.stream_schema(outer_stream)?;
    let pair_scope = Scope::new(vec![
        (outer_alias.clone(), schema.clone()),
        (inner_alias.clone(), schema.clone()),
    ])
    .with_search_order(vec![1, 0]);
    let Some(keys) = dedup_key(predicates, &pair_scope, &schema)? else {
        return Ok(None);
    };
    Ok(Some(LogicalPlan::Dedup {
        input: Box::new(outer.clone()),
        keys,
        window: dur,
    }))
}

/// Detect Example 1's key shape: every sub-query conjunct is
/// `inner.col = outer.col` for the *same* column; returns the key
/// columns `(index, name)`.
fn dedup_key(
    conjuncts: &[AstExpr],
    pair_scope: &Scope,
    schema: &SchemaRef,
) -> Result<Option<Vec<(usize, String)>>> {
    if conjuncts.is_empty() {
        return Ok(None);
    }
    let mut keys = Vec::new();
    for c in conjuncts {
        let AstExpr::Bin(AstBinOp::Eq, a, b) = c else {
            return Ok(None);
        };
        let (
            AstExpr::Col {
                qualifier: qa,
                name: na,
            },
            AstExpr::Col {
                qualifier: qb,
                name: nb,
            },
        ) = (&**a, &**b)
        else {
            return Ok(None);
        };
        let (ra, ca) = pair_scope.resolve_column(qa.as_deref(), na)?;
        let (rb, cb) = pair_scope.resolve_column(qb.as_deref(), nb)?;
        if ra == rb || ca != cb {
            return Ok(None);
        }
        keys.push((ca, schema.columns[ca].name.clone()));
    }
    Ok(Some(keys))
}

/// Lift a `table.col = outer-expr` equality into an index probe
/// annotation on the lookup node.
fn lift_index_probe(
    engine: &Engine,
    sel: &SelectStmt,
    node: &mut LogicalPlan,
    applied: &mut Vec<String>,
) -> Result<()> {
    let LogicalPlan::Lookup {
        input,
        table,
        predicates,
        probe,
        ..
    } = node
    else {
        return Ok(());
    };
    let LogicalPlan::Source {
        alias: outer_alias, ..
    } = strip_filters(input)
    else {
        return Ok(());
    };
    let outer_schema = engine.stream_schema(&sel.from[0].name)?;
    let t = engine.table(table)?;
    // The sub-query's FROM binding: re-derive from the statement (the
    // IR keeps the table name; the alias lives in the sub-query).
    let inner_binding = sel
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default()
        .iter()
        .find_map(|c| match c {
            AstExpr::Exists { subquery, .. } => Some(subquery.from[0].binding().to_string()),
            _ => None,
        })
        .unwrap_or_else(|| table.clone());
    let scope = Scope::new(vec![
        (outer_alias.clone(), outer_schema.clone()),
        (inner_binding, t.schema().clone()),
    ])
    .with_search_order(vec![1, 0]);
    for c in predicates.iter() {
        if let AstExpr::Bin(AstBinOp::Eq, a, b) = c {
            for (x, y) in [(a, b), (b, a)] {
                let mut xr = std::collections::BTreeSet::new();
                referenced_rels(x, &scope, &mut xr);
                let mut yr = std::collections::BTreeSet::new();
                referenced_rels(y, &scope, &mut yr);
                if xr.iter().eq([&1]) && yr.iter().all(|r| *r == 0) {
                    if let AstExpr::Col { qualifier, name } = &**x {
                        if scope.resolve_column(qualifier.as_deref(), name)?.0 == 1 {
                            *probe = Some((name.clone(), (**y).clone()));
                            note(applied, "index-probe-lifting");
                            return Ok(());
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn strip_filters(plan: &LogicalPlan) -> &LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, .. } => strip_filters(input),
        other => other,
    }
}

/// Annotate a `Project(Filter*(Source))` chain's source with the columns
/// the query actually reads, when a strict subset of the schema.
fn prune_projection(engine: &Engine, node: &mut LogicalPlan, applied: &mut Vec<String>) {
    let LogicalPlan::Project { input, exprs } = node else {
        return;
    };
    // Collect every filter predicate on the chain down to the source.
    let mut preds: Vec<&AstExpr> = Vec::new();
    let mut cur: &LogicalPlan = input;
    loop {
        match cur {
            LogicalPlan::Filter { input, predicates } => {
                preds.extend(predicates.iter());
                cur = input;
            }
            LogicalPlan::Source { stream, .. } => {
                let Ok(schema) = engine.stream_schema(stream) else {
                    return;
                };
                let mut used = std::collections::BTreeSet::new();
                for e in exprs.iter().chain(preds.iter().copied()) {
                    collect_columns(e, &mut used);
                }
                let cols: Vec<String> = schema
                    .columns
                    .iter()
                    .filter(|c| used.contains(&c.name))
                    .map(|c| c.name.clone())
                    .collect();
                if !cols.is_empty() && cols.len() < schema.arity() {
                    // Re-walk mutably to set the annotation.
                    let mut m: &mut LogicalPlan = input;
                    loop {
                        match m {
                            LogicalPlan::Filter { input, .. } => m = input,
                            LogicalPlan::Source { columns, .. } => {
                                *columns = Some(cols);
                                note(applied, "projection-pruning");
                                return;
                            }
                            _ => return,
                        }
                    }
                }
                return;
            }
            _ => return,
        }
    }
}

fn collect_columns(e: &AstExpr, out: &mut std::collections::BTreeSet<String>) {
    match e {
        AstExpr::Col { name, .. } | AstExpr::PrevCol { name, .. } => {
            out.insert(name.to_ascii_lowercase());
        }
        AstExpr::StarAgg {
            column: Some(c), ..
        } => {
            out.insert(c.to_ascii_lowercase());
        }
        AstExpr::Bin(_, a, b) => {
            collect_columns(a, out);
            collect_columns(b, out);
        }
        AstExpr::Not(i) | AstExpr::IsNull { expr: i, .. } | AstExpr::Like(i, _) => {
            collect_columns(i, out)
        }
        AstExpr::Call { args, .. } => args.iter().for_each(|a| collect_columns(a, out)),
        AstExpr::Agg { arg, .. } => collect_columns(arg, out),
        _ => {}
    }
}

// ------------------------------------------------------------ SEQ rewrites

type ElemCol = (usize, usize);
type ElemColPair = (ElemCol, ElemCol);

fn rewrite_seq(engine: &Engine, seq: &mut SeqPlan, applied: &mut Vec<String>) -> Result<()> {
    let rels: Vec<(String, SchemaRef)> = seq
        .elements
        .iter()
        .map(|e| Ok((e.alias.clone(), engine.stream_schema(&e.stream)?)))
        .collect::<Result<_>>()?;
    let elem_scope = Scope::new(rels);
    let elem_alias: Vec<String> = seq.elements.iter().map(|e| e.alias.clone()).collect();

    let mut residual: Vec<AstExpr> = Vec::new();
    let mut equalities: Vec<(ElemColPair, AstExpr)> = Vec::new();
    for c in std::mem::take(&mut seq.residual) {
        if let Some(pair) = as_equality(&c, &elem_scope) {
            equalities.push((pair, c));
            continue;
        }
        if fold_gap_constraint(&c, &elem_alias, &mut seq.elements)? {
            note(applied, "gap-constraint-folding");
            continue;
        }
        // Single-element predicate? Pushed into the element iff it
        // compiles against that element's scope alone — the same test
        // the physical lowering applies.
        let mut rels_used = std::collections::BTreeSet::new();
        referenced_rels(&c, &elem_scope, &mut rels_used);
        if rels_used.len() == 1 && !matches!(c, AstExpr::Exists { .. }) {
            let elem = *rels_used.iter().next().expect("len 1");
            let single = Scope::new(vec![(
                elem_alias[elem].clone(),
                elem_scope.schema(elem).clone(),
            )]);
            if compile_scalar(&c, &single, engine.functions()).is_ok() {
                seq.elements[elem].predicates.push(c);
                note(applied, "seq-predicate-pushdown");
                continue;
            }
        }
        residual.push(c);
    }

    // Partition keys: one equality class covering every element on a
    // single column each. Unlifted equalities fall back to the residual
    // filter so nothing is silently dropped.
    let pairs: Vec<ElemColPair> = equalities.iter().map(|(p, _)| *p).collect();
    match partition_by_port(&pairs, &seq.elements, &elem_scope) {
        Some(keys) => {
            seq.partition = Some(keys);
            note(applied, "partition-key-lifting");
        }
        None => residual.extend(equalities.into_iter().map(|(_, c)| c)),
    }
    seq.residual = residual;

    seq.state_bound = Some(state_bound(seq));
    note(applied, "state-bound-annotation");
    Ok(())
}

/// The pairing-mode-aware bound on retained tuple history (§3.1.1).
fn state_bound(seq: &SeqPlan) -> String {
    let horizon = || match &seq.window {
        Some(w) => format!("window {}", fmt_window(w)),
        None => "unbounded".to_string(),
    };
    match seq.mode {
        PairingMode::Unrestricted => format!("full history, {}", horizon()),
        PairingMode::Recent => "one chain per element".to_string(),
        PairingMode::Chronicle => format!("FIFO of unconsumed tuples, {}", horizon()),
        PairingMode::Consecutive => "single current run".to_string(),
    }
}

/// `X.col = Y.col` between two different elements.
fn as_equality(c: &AstExpr, elem_scope: &Scope) -> Option<ElemColPair> {
    let AstExpr::Bin(AstBinOp::Eq, a, b) = c else {
        return None;
    };
    let col = |e: &AstExpr| -> Option<ElemCol> {
        let AstExpr::Col { qualifier, name } = e else {
            return None;
        };
        elem_scope.resolve_column(qualifier.as_deref(), name).ok()
    };
    let (x, y) = (col(a)?, col(b)?);
    if x.0 == y.0 {
        return None;
    }
    Some((x, y))
}

/// Recognize the two gap-constraint shapes and fold them into the
/// elements; returns whether the conjunct was consumed.
fn fold_gap_constraint(
    c: &AstExpr,
    elem_alias: &[String],
    elements: &mut [SeqElementPlan],
) -> Result<bool> {
    let AstExpr::Bin(op, lhs, rhs) = c else {
        return Ok(false);
    };
    if !matches!(op, AstBinOp::Le | AstBinOp::Lt) {
        return Ok(false);
    }
    let AstExpr::Dur(d) = &**rhs else {
        return Ok(false);
    };
    let AstExpr::Bin(AstBinOp::Sub, newer, older) = &**lhs else {
        return Ok(false);
    };
    let elem_of = |alias: &str| elem_alias.iter().position(|a| a == alias);
    // a.t − a.previous.t ≤ d → star gap.
    if let (
        AstExpr::Col {
            qualifier: Some(q), ..
        },
        AstExpr::PrevCol { qualifier: pq, .. },
    ) = (&**newer, &**older)
    {
        if q == pq {
            let elem =
                elem_of(q).ok_or_else(|| DsmsError::unknown(format!("`{q}` in gap constraint")))?;
            if !elements[elem].star {
                return Err(DsmsError::plan(format!(
                    "`{q}.previous` needs `{q}` to be a star argument"
                )));
            }
            elements[elem].star_gap = Some(*d);
            return Ok(true);
        }
    }
    // b.t − LAST(a*).t ≤ d or b.t − a.t ≤ d with a immediately before b.
    let newer_elem = match &**newer {
        AstExpr::Col {
            qualifier: Some(q), ..
        } => elem_of(q),
        _ => None,
    };
    let older_elem = match &**older {
        AstExpr::StarAgg {
            kind: StarAggKind::Last,
            alias,
            ..
        } => elem_of(alias),
        AstExpr::Col {
            qualifier: Some(q), ..
        } => elem_of(q),
        _ => None,
    };
    if let (Some(b), Some(a)) = (newer_elem, older_elem) {
        if a + 1 == b {
            elements[b].max_gap_from_prev = Some(*d);
            return Ok(true);
        }
    }
    Ok(false)
}

/// Lift a single equality class covering every element (one column per
/// element) into per-port partition keys; `None` when no class covers
/// the whole pattern (the caller keeps the equalities as residuals).
fn partition_by_port(
    equalities: &[ElemColPair],
    elements: &[SeqElementPlan],
    elem_scope: &Scope,
) -> Option<Vec<(usize, String)>> {
    if equalities.is_empty() {
        return None;
    }
    let n = elements.len();
    // Union-find over (elem, col).
    let mut groups: Vec<std::collections::BTreeSet<ElemCol>> = Vec::new();
    for (x, y) in equalities {
        let gx = groups.iter().position(|g| g.contains(x));
        let gy = groups.iter().position(|g| g.contains(y));
        match (gx, gy) {
            (Some(i), Some(j)) if i != j => {
                let merged = groups.remove(j.max(i).max(j));
                let keep = i.min(j);
                groups[keep].extend(merged);
            }
            (Some(i), None) => {
                groups[i].insert(*y);
            }
            (None, Some(j)) => {
                groups[j].insert(*x);
            }
            (None, None) => {
                groups.push([*x, *y].into_iter().collect());
            }
            _ => {}
        }
    }
    for g in &groups {
        let elems: std::collections::BTreeSet<usize> = g.iter().map(|(e, _)| *e).collect();
        if elems.len() == n && g.len() == n {
            // One key per detector port (element -> port).
            let num_ports = elements.iter().map(|e| e.port).max().unwrap_or(0) + 1;
            let mut keys: Vec<Option<(usize, String)>> = vec![None; num_ports];
            for (e, c) in g {
                let port = elements[*e].port;
                // First writer wins; two elements on one port share the
                // key column or the class simply fails the all-ports
                // check below.
                if keys[port].is_none() {
                    let name = elem_scope.schema(*e).columns[*c].name.clone();
                    keys[port] = Some((*c, name));
                }
            }
            if keys.iter().all(|k| k.is_some()) {
                return Some(keys.into_iter().map(|k| k.expect("checked")).collect());
            }
        }
    }
    None
}
