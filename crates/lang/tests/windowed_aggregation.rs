//! Windowed aggregation through the language: `RANGE d PRECEDING` and
//! `ROWS n PRECEDING` on the FROM item, grouped and scalar — the §2.1
//! "count the products passing through the door every hour / monitor the
//! max blood pressure" tasks.

use eslev_dsms::prelude::*;
use eslev_lang::{execute, execute_script};

fn sensor_row(patient: &str, v: i64, secs: u64) -> Vec<Value> {
    vec![
        Value::str(patient),
        Value::Int(v),
        Value::Ts(Timestamp::from_secs(secs)),
    ]
}

fn setup() -> Engine {
    let mut e = Engine::new();
    execute_script(
        &mut e,
        "CREATE STREAM vitals (patient VARCHAR, bp INT, t TIMESTAMP)",
    )
    .unwrap();
    e
}

#[test]
fn range_windowed_max_per_patient() {
    let mut engine = setup();
    let q = execute(
        &mut engine,
        "SELECT patient, max(bp) FROM vitals OVER (RANGE 60 SECONDS PRECEDING CURRENT)
         GROUP BY patient",
    )
    .unwrap();
    let rows = q.collector().unwrap().clone();
    engine.push("vitals", sensor_row("p1", 120, 0)).unwrap();
    engine.push("vitals", sensor_row("p1", 180, 10)).unwrap();
    // 100 s later the spike is out of the window.
    engine.push("vitals", sensor_row("p1", 130, 110)).unwrap();
    let all = rows.take();
    assert_eq!(all[1].value(1), &Value::Int(180));
    assert_eq!(all[2].value(1), &Value::Int(130), "spike expired");
}

#[test]
fn rows_windowed_average() {
    let mut engine = setup();
    let q = execute(
        &mut engine,
        "SELECT avg(bp) FROM vitals OVER (ROWS 1 PRECEDING CURRENT)",
    )
    .unwrap();
    let rows = q.collector().unwrap().clone();
    for (i, v) in [100i64, 200, 300].iter().enumerate() {
        engine
            .push("vitals", sensor_row("p", *v, i as u64))
            .unwrap();
    }
    let all = rows.take();
    // Moving average over the last 2 readings.
    assert_eq!(all[0].value(0), &Value::Float(100.0));
    assert_eq!(all[1].value(0), &Value::Float(150.0));
    assert_eq!(all[2].value(0), &Value::Float(250.0));
}

#[test]
fn custom_uda_through_sql() {
    // Register a UDA (bp range = max - min) and call it from a query —
    // the ESL extensibility story of §2.1.
    let mut engine = setup();
    engine
        .aggregates_mut()
        .register(std::sync::Arc::new(ClosureUda::new(
            "bp_range",
            || Value::Null,
            |state, v| {
                let x = v.as_int().ok_or_else(|| DsmsError::eval("int expected"))?;
                Ok(match state.as_str() {
                    None => Value::str(format!("{x},{x}")),
                    Some(s) => {
                        let (lo, hi) = s.split_once(',').expect("state shape");
                        let (lo, hi): (i64, i64) = (lo.parse().unwrap(), hi.parse().unwrap());
                        Value::str(format!("{},{}", lo.min(x), hi.max(x)))
                    }
                })
            },
            |state| match state.as_str() {
                None => Value::Null,
                Some(s) => {
                    let (lo, hi) = s.split_once(',').expect("state shape");
                    Value::Int(hi.parse::<i64>().unwrap() - lo.parse::<i64>().unwrap())
                }
            },
        )));
    let q = execute(&mut engine, "SELECT bp_range(bp) FROM vitals").unwrap();
    let rows = q.collector().unwrap().clone();
    for (i, v) in [120i64, 95, 160].iter().enumerate() {
        engine
            .push("vitals", sensor_row("p", *v, i as u64))
            .unwrap();
    }
    assert_eq!(rows.take().last().unwrap().value(0), &Value::Int(65));
}

#[test]
fn rejects_following_aggregate_window() {
    let mut engine = setup();
    let err = execute(
        &mut engine,
        "SELECT max(bp) FROM vitals OVER (RANGE 10 SECONDS FOLLOWING CURRENT)",
    )
    .err()
    .expect("FOLLOWING aggregate windows must be rejected");
    assert!(err.to_string().contains("PRECEDING"));
}

#[test]
fn explain_describes_plans_without_registering() {
    use eslev_lang::explain;
    let mut engine = setup();
    eslev_lang::execute(
        &mut engine,
        "CREATE STREAM r2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP)",
    )
    .unwrap();
    eslev_lang::execute(
        &mut engine,
        "CREATE STREAM r1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP)",
    )
    .unwrap();
    let before = engine.query_stats().len();
    let text = explain(
        &engine,
        "SELECT COUNT(R1*), R2.tagid FROM R1, R2 WHERE SEQ(R1*, R2) MODE CHRONICLE",
    )
    .unwrap();
    assert!(text.contains("seq:"), "{text}");
    assert!(text.contains("seq-detector"), "{text}");
    assert!(text.contains("r1, r2"), "{text}");
    let text = explain(&engine, "SELECT max(bp) FROM vitals").unwrap();
    assert!(text.contains("aggregate"), "{text}");
    // Nothing was registered.
    assert_eq!(engine.query_stats().len(), before);
}
