//! Adversarial coverage of parse and plan errors: every rejection should
//! be a clean `Err` with a message a user can act on — never a panic,
//! never a silently wrong plan.

use eslev_dsms::prelude::*;
use eslev_lang::parser::parse_statement;
use eslev_lang::{execute, execute_script};

fn engine() -> Engine {
    let mut e = Engine::new();
    execute_script(
        &mut e,
        "CREATE STREAM r1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM r2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE TABLE ctx (tagid VARCHAR, info VARCHAR);",
    )
    .unwrap();
    e
}

fn plan_err(e: &mut Engine, sql: &str) -> String {
    match execute(e, sql) {
        Err(err) => err.to_string(),
        Ok(_) => panic!("expected `{sql}` to fail"),
    }
}

#[test]
fn parse_errors_are_clean() {
    for sql in [
        "",
        ";",
        "SELEC * FROM s",
        "SELECT FROM s",
        "SELECT * FROM",
        "SELECT * FROM s WHERE",
        "SELECT * FROM s GROUP",
        "CREATE STREAM s",
        "CREATE STREAM s (a)",
        "CREATE STREAM s (a SERIAL)",
        "INSERT INTO",
        "INSERT INTO t",
        "SELECT a FROM s WHERE SEQ()",
        "SELECT a FROM s WHERE SEQ(a,) ",
        "SELECT a FROM s WHERE SEQ(a, b) OVER",
        "SELECT a FROM s WHERE SEQ(a, b) OVER [5 PRECEDING b]", // missing unit
        "SELECT a FROM s WHERE SEQ(a, b) OVER [5 PARSECS PRECEDING b]",
        "SELECT a FROM s WHERE SEQ(a, b) MODE SIDEWAYS",
        "SELECT a FROM s WHERE a LIKE 5",
        "SELECT FIRST(a*) FROM a, b WHERE SEQ(a*, b)", // FIRST needs .col
        "SELECT COUNT(a*).x FROM a, b WHERE SEQ(a*, b)",
        "SELECT * FROM s LIMIT x",
        "SELECT * FROM s ORDER",
        "SELECT 'unterminated FROM s",
    ] {
        match parse_statement(sql) {
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty(), "{sql}");
            }
            Ok(_) => {
                // A few of these are parse-OK but must then fail to plan.
                let mut eng = engine();
                assert!(
                    execute(&mut eng, sql).is_err(),
                    "`{sql}` parsed and planned — should have failed somewhere"
                );
            }
        }
    }
}

#[test]
fn plan_errors_name_the_problem() {
    let mut e = engine();
    assert!(plan_err(&mut e, "SELECT * FROM ghost").contains("ghost"));
    assert!(plan_err(&mut e, "SELECT ghostcol FROM r1").contains("ghostcol"));
    assert!(plan_err(&mut e, "SELECT ghost_fn(tagid) FROM r1").contains("ghost_fn"));
    assert!(plan_err(&mut e, "INSERT INTO ghost SELECT * FROM r1").contains("ghost"));
    // SEQ arg not in FROM.
    assert!(plan_err(&mut e, "SELECT r1.tagid FROM r1, r2 WHERE SEQ(r1, r3)").contains("r3"));
    // FROM item unused by SEQ.
    assert!(plan_err(&mut e, "SELECT r1.tagid FROM r1, r2 WHERE SEQ(r1, r1)").contains("twice"));
    // Window anchored at an unknown alias.
    assert!(plan_err(
        &mut e,
        "SELECT r1.tagid FROM r1, r2 WHERE SEQ(r1, r2) OVER [5 SECONDS PRECEDING zz]"
    )
    .contains("zz"));
    // Multi-stream FROM without SEQ.
    assert!(plan_err(&mut e, "SELECT r1.tagid FROM r1, r2").contains("SEQ"));
    // Star column with two stars (footnote 4).
    assert!(
        plan_err(
        &mut e,
        "SELECT r1.tagid FROM r1, r2 WHERE SEQ(r1*, r2*)"
    )
    .contains("ambiguous") // adjacent same-port stars? no: different ports...
        || plan_err(
            &mut e,
            "SELECT r1.tagid FROM r1, r2 WHERE SEQ(r1*, r2*)"
        )
        .contains("star")
    );
    // Duplicate stream creation.
    assert!(execute(&mut e, "CREATE STREAM r1 (x TIMESTAMP)").is_err());
    // Stream without a timestamp column.
    assert!(plan_err(&mut e, "CREATE STREAM nots (x INT)").contains("TIMESTAMP"));
}

#[test]
fn seq_query_rejects_wildcard_select() {
    let mut e = engine();
    let msg = plan_err(&mut e, "SELECT * FROM r1, r2 WHERE SEQ(r1, r2)");
    assert!(msg.contains("*"), "{msg}");
}

#[test]
fn insert_schema_mismatch_is_runtime_checked() {
    let mut e = engine();
    // cleaned has 2 columns; r1 has 3 → the projection arity mismatches
    // at registration-time validation of the sink schema... the engine
    // re-validates per tuple; pushing surfaces the error.
    execute(&mut e, "CREATE STREAM narrow (tagid VARCHAR, t TIMESTAMP)").unwrap();
    execute(&mut e, "INSERT INTO narrow SELECT * FROM r1").unwrap();
    let err = e
        .push(
            "r1",
            vec![
                Value::str("rdr"),
                Value::str("tag"),
                Value::Ts(Timestamp::from_secs(1)),
            ],
        )
        .unwrap_err();
    assert!(err.to_string().contains("columns"), "{err}");
}

#[test]
fn exists_subquery_shape_errors() {
    let mut e = engine();
    // Sub-query stream without a window is rejected for windowed EXISTS.
    let msg = plan_err(
        &mut e,
        "SELECT r1.tagid FROM r1 WHERE NOT EXISTS (SELECT * FROM r2)",
    );
    assert!(msg.contains("window"), "{msg}");
    // Window anchored at the wrong alias.
    let msg = plan_err(
        &mut e,
        "SELECT a.tagid FROM r1 AS a WHERE NOT EXISTS
           (SELECT * FROM r2 OVER [1 MINUTES PRECEDING AND FOLLOWING zz])",
    );
    assert!(msg.contains("zz"), "{msg}");
}

#[test]
fn mixed_case_and_whitespace_robustness() {
    let mut e = engine();
    // Keywords and identifiers in any case, odd whitespace, trailing ;.
    let out = execute(
        &mut e,
        "sElEcT   TAGID\n\tFROM   R1\n WHERE\treaderid  =  'x'  ;",
    )
    .unwrap();
    assert!(out.collector().is_some());
}

#[test]
fn update_and_delete_statements() {
    use eslev_lang::ExecOutcome;
    let mut e = engine();
    e.table("ctx")
        .unwrap()
        .insert(vec![Value::str("t1"), Value::str("old")])
        .unwrap();
    e.table("ctx")
        .unwrap()
        .insert(vec![Value::str("t2"), Value::str("old")])
        .unwrap();
    // Targeted update.
    let o = execute(&mut e, "UPDATE ctx SET info = 'new' WHERE tagid = 't1'").unwrap();
    assert!(matches!(o, ExecOutcome::Modified(1)));
    // Computed update over all rows.
    let o = execute(&mut e, "UPDATE ctx SET info = tagid").unwrap();
    assert!(matches!(o, ExecOutcome::Modified(2)));
    let rows = e.table("ctx").unwrap().scan();
    assert_eq!(rows[0].value(1).as_str(), Some("t1"));
    // Delete with predicate, then delete all.
    let o = execute(&mut e, "DELETE FROM ctx WHERE tagid = 't1'").unwrap();
    assert!(matches!(o, ExecOutcome::Modified(1)));
    let o = execute(&mut e, "DELETE FROM ctx").unwrap();
    assert!(matches!(o, ExecOutcome::Modified(1)));
    assert!(e.table("ctx").unwrap().is_empty());
    // Errors: unknown table / column, streams are not updatable.
    assert!(execute(&mut e, "UPDATE ghost SET x = 1").is_err());
    assert!(execute(&mut e, "UPDATE ctx SET ghost = 1").is_err());
    assert!(execute(&mut e, "DELETE FROM r1").is_err());
}
