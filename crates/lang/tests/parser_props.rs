//! Property-based tests for the language front-end: expression
//! pretty-print → reparse round trips, and lexer totality.

use eslev_lang::ast::{AstBinOp, AstExpr, SelectItem, Statement};
use eslev_lang::parser::parse_statement;
use eslev_lang::token::lex;
use proptest::prelude::*;

/// Generate random well-formed scalar expressions.
fn arb_expr() -> impl Strategy<Value = AstExpr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|i| AstExpr::Lit(eslev_dsms::value::Value::Int(i))),
        "q[a-z0-9_]{0,6}".prop_map(|name| AstExpr::Col {
            qualifier: None,
            name
        }),
        ("q[a-z0-9_]{0,4}", "q[a-z0-9_]{0,4}").prop_map(|(q, name)| AstExpr::Col {
            qualifier: Some(q),
            name
        }),
        "[a-c%_]{0,6}".prop_map(|p| AstExpr::Like(
            Box::new(AstExpr::Col {
                qualifier: None,
                name: "x".into()
            }),
            p
        )),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(a, b, op)| AstExpr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|e| AstExpr::Not(Box::new(e))),
            inner.clone().prop_map(|e| AstExpr::IsNull {
                expr: Box::new(e),
                negated: false
            }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = AstBinOp> {
    prop_oneof![
        Just(AstBinOp::Add),
        Just(AstBinOp::Sub),
        Just(AstBinOp::Mul),
        Just(AstBinOp::Eq),
        Just(AstBinOp::Lt),
        Just(AstBinOp::Le),
        Just(AstBinOp::And),
        Just(AstBinOp::Or),
    ]
}

/// Strip the parenthesization the printer adds so structurally equal
/// trees compare equal after a reparse (printing is fully parenthesized,
/// so the reparse is exact; we compare trees directly).
fn reparse(e: &AstExpr) -> AstExpr {
    let sql = format!("SELECT {e} FROM s");
    let Statement::Select(sel) = parse_statement(&sql).expect("printed SQL reparses") else {
        panic!("not a select");
    };
    let SelectItem::Expr { expr, .. } = sel.items.into_iter().next().unwrap() else {
        panic!("not an expr item");
    };
    expr
}

proptest! {
    /// Pretty-printing an expression and reparsing yields the same tree
    /// (the printer parenthesizes everything, so precedence is explicit).
    #[test]
    fn print_reparse_round_trip(e in arb_expr()) {
        // LIKE inside comparisons needs parens to reparse identically;
        // the printer provides them.
        let back = reparse(&e);
        prop_assert_eq!(back, e);
    }

    /// The lexer is total over printable ASCII + SQL punctuation: it
    /// either returns tokens or a clean error, never panics.
    #[test]
    fn lexer_never_panics(s in "[ -~]{0,80}") {
        let _ = lex(&s);
    }

    /// Lexing is insensitive to case for identifiers and keywords.
    #[test]
    fn lexing_folds_case(word in "[a-zA-Z_][a-zA-Z0-9_]{0,10}") {
        let a = lex(&word).unwrap();
        let b = lex(&word.to_uppercase()).unwrap();
        prop_assert_eq!(a.len(), b.len());
        if let (eslev_lang::token::TokenKind::Ident(x),
                eslev_lang::token::TokenKind::Ident(y)) = (&a[0].kind, &b[0].kind) {
            prop_assert_eq!(x, y);
        }
    }

    /// Parsing never panics on arbitrary token soup (errors are Results).
    #[test]
    fn parser_never_panics(s in "[a-zA-Z0-9 ,.()*<>=']{0,60}") {
        let _ = parse_statement(&s);
    }
}
