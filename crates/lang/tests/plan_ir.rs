//! Logical-plan IR tests: EXPLAIN rendering, rewrite application, and
//! shape-specific lowering decisions surfaced through the plan text.

use eslev_dsms::engine::Engine;
use eslev_lang::{execute_script, explain};

fn setup() -> Engine {
    let mut e = Engine::new();
    execute_script(
        &mut e,
        "CREATE STREAM shelf (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM checkout (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM exits (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE TABLE paid (tagid VARCHAR)",
    )
    .unwrap();
    e
}

#[test]
fn seq_explain_shows_classification_rewrites() {
    let e = setup();
    // E6-style shoplifting query: per-tag partition equalities plus a
    // gap constraint and a single-element predicate.
    let out = explain(
        &e,
        "SELECT s.tagid, x.tagtime FROM shelf AS s, checkout AS c, exits AS x
         WHERE SEQ(s, c, x) MODE RECENT
           AND s.tagid = c.tagid AND c.tagid = x.tagid
           AND x.tagtime - c.tagtime <= 3600 SECONDS
           AND s.tagid LIKE '20.%'",
    )
    .unwrap();
    assert!(out.contains("logical:"), "{out}");
    assert!(out.contains("rewrites:"), "{out}");
    assert!(out.contains("seq-predicate-pushdown"), "{out}");
    assert!(out.contains("gap-constraint-folding"), "{out}");
    assert!(out.contains("partition-key-lifting"), "{out}");
    assert!(out.contains("state-bound-annotation"), "{out}");
    assert!(out.contains("optimized:"), "{out}");
    assert!(out.contains("partition=[tagid"), "{out}");
    assert!(out.contains("max_gap_from_prev=3600s"), "{out}");
    assert!(out.contains("state=one chain per element"), "{out}");
    // Physical summary is still the last line.
    assert!(out.contains("physical: seq:s,c,x"), "{out}");
    assert!(out.contains("seq-detector"), "{out}");
    assert!(out.contains("-> collect"), "{out}");
}

#[test]
fn dedup_specialization_is_a_named_rewrite() {
    let e = setup();
    let out = explain(
        &e,
        "SELECT * FROM shelf AS r1
         WHERE NOT EXISTS (SELECT * FROM shelf AS r2 OVER [60 SECONDS PRECEDING r1]
                           WHERE r2.tagid = r1.tagid)",
    )
    .unwrap();
    assert!(out.contains("WindowNotExists"), "{out}"); // naive plan
    assert!(out.contains("dedup-specialization"), "{out}");
    assert!(out.contains("Dedup key=[tagid]"), "{out}");
    assert!(out.contains("physical: dedup:shelf"), "{out}");
}

#[test]
fn aggregate_filter_pushes_below_window() {
    let e = setup();
    let out = explain(
        &e,
        "SELECT COUNT(tagid) FROM shelf OVER (RANGE 60 SECONDS PRECEDING CURRENT)
         WHERE tagid LIKE '20.%'",
    )
    .unwrap();
    assert!(out.contains("predicate-pushdown-below-window"), "{out}");
    assert!(out.contains("Aggregate"), "{out}");
    assert!(out.contains("physical: aggregate:shelf"), "{out}");
    // In the optimized tree the Window sits above the Filter.
    let opt = out.split("optimized:").nth(1).unwrap();
    let w = opt.find("Window").unwrap();
    let f = opt.find("Filter").unwrap();
    assert!(w < f, "filter should sink below the window:\n{out}");
}

#[test]
fn table_exists_lifts_index_probe() {
    let e = setup();
    let out = explain(
        &e,
        "SELECT * FROM exits AS x
         WHERE NOT EXISTS (SELECT * FROM paid AS p WHERE p.tagid = x.tagid)",
    )
    .unwrap();
    assert!(out.contains("index-probe-lifting"), "{out}");
    assert!(out.contains("probe=tagid"), "{out}");
    assert!(out.contains("physical: table-exists:exits"), "{out}");
}

#[test]
fn projection_prunes_source_columns() {
    let e = setup();
    let out = explain(&e, "SELECT tagid FROM shelf").unwrap();
    assert!(out.contains("projection-pruning"), "{out}");
    assert!(out.contains("columns=[tagid]"), "{out}");
}

#[test]
fn transducer_without_rewrites_reports_none() {
    let e = setup();
    let out = explain(&e, "SELECT * FROM shelf").unwrap();
    assert!(out.contains("rewrites: (none)"), "{out}");
    assert!(out.contains("physical: select:shelf"), "{out}");
}

#[test]
fn insert_into_keeps_sink_in_physical_line() {
    let e = setup();
    let out = explain(&e, "INSERT INTO exits SELECT tagid, tagtime FROM shelf").unwrap();
    assert!(out.contains("-> INSERT INTO exits"), "{out}");
}
