//! Logical-plan IR tests: EXPLAIN rendering, rewrite application, and
//! shape-specific lowering decisions surfaced through the plan text.

use eslev_dsms::engine::Engine;
use eslev_lang::{execute_script, explain};

fn setup() -> Engine {
    let mut e = Engine::new();
    execute_script(
        &mut e,
        "CREATE STREAM shelf (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM checkout (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM exits (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE TABLE paid (tagid VARCHAR)",
    )
    .unwrap();
    e
}

#[test]
fn seq_explain_shows_classification_rewrites() {
    let e = setup();
    // E6-style shoplifting query: per-tag partition equalities plus a
    // gap constraint and a single-element predicate.
    let out = explain(
        &e,
        "SELECT s.tagid, x.tagtime FROM shelf AS s, checkout AS c, exits AS x
         WHERE SEQ(s, c, x) MODE RECENT
           AND s.tagid = c.tagid AND c.tagid = x.tagid
           AND x.tagtime - c.tagtime <= 3600 SECONDS
           AND s.tagid LIKE '20.%'",
    )
    .unwrap();
    assert!(out.contains("logical:"), "{out}");
    assert!(out.contains("rewrites:"), "{out}");
    assert!(out.contains("seq-predicate-pushdown"), "{out}");
    assert!(out.contains("gap-constraint-folding"), "{out}");
    assert!(out.contains("partition-key-lifting"), "{out}");
    assert!(out.contains("state-bound-annotation"), "{out}");
    assert!(out.contains("optimized:"), "{out}");
    assert!(out.contains("partition=[tagid"), "{out}");
    assert!(out.contains("max_gap_from_prev=3600s"), "{out}");
    assert!(out.contains("state=one chain per element"), "{out}");
    // Physical summary is still the last line.
    assert!(out.contains("physical: seq:s,c,x"), "{out}");
    assert!(out.contains("seq-detector"), "{out}");
    assert!(out.contains("-> collect"), "{out}");
}

#[test]
fn dedup_specialization_is_a_named_rewrite() {
    let e = setup();
    let out = explain(
        &e,
        "SELECT * FROM shelf AS r1
         WHERE NOT EXISTS (SELECT * FROM shelf AS r2 OVER [60 SECONDS PRECEDING r1]
                           WHERE r2.tagid = r1.tagid)",
    )
    .unwrap();
    assert!(out.contains("WindowNotExists"), "{out}"); // naive plan
    assert!(out.contains("dedup-specialization"), "{out}");
    assert!(out.contains("Dedup key=[tagid]"), "{out}");
    assert!(out.contains("physical: dedup:shelf"), "{out}");
}

#[test]
fn aggregate_filter_pushes_below_window() {
    let e = setup();
    let out = explain(
        &e,
        "SELECT COUNT(tagid) FROM shelf OVER (RANGE 60 SECONDS PRECEDING CURRENT)
         WHERE tagid LIKE '20.%'",
    )
    .unwrap();
    assert!(out.contains("predicate-pushdown-below-window"), "{out}");
    assert!(out.contains("Aggregate"), "{out}");
    assert!(out.contains("physical: aggregate:shelf"), "{out}");
    // In the optimized tree the Window sits above the Filter.
    let opt = out.split("optimized:").nth(1).unwrap();
    let w = opt.find("Window").unwrap();
    let f = opt.find("Filter").unwrap();
    assert!(w < f, "filter should sink below the window:\n{out}");
}

#[test]
fn table_exists_lifts_index_probe() {
    let e = setup();
    let out = explain(
        &e,
        "SELECT * FROM exits AS x
         WHERE NOT EXISTS (SELECT * FROM paid AS p WHERE p.tagid = x.tagid)",
    )
    .unwrap();
    assert!(out.contains("index-probe-lifting"), "{out}");
    assert!(out.contains("probe=tagid"), "{out}");
    assert!(out.contains("physical: table-exists:exits"), "{out}");
}

#[test]
fn projection_prunes_source_columns() {
    let e = setup();
    let out = explain(&e, "SELECT tagid FROM shelf").unwrap();
    assert!(out.contains("projection-pruning"), "{out}");
    assert!(out.contains("columns=[tagid]"), "{out}");
}

#[test]
fn transducer_without_rewrites_reports_none() {
    let e = setup();
    let out = explain(&e, "SELECT * FROM shelf").unwrap();
    assert!(out.contains("rewrites: (none)"), "{out}");
    assert!(out.contains("physical: select:shelf"), "{out}");
}

#[test]
fn insert_into_keeps_sink_in_physical_line() {
    let e = setup();
    let out = explain(&e, "INSERT INTO exits SELECT tagid, tagtime FROM shelf").unwrap();
    assert!(out.contains("-> INSERT INTO exits"), "{out}");
}

// ----------------------------------------------------- fingerprinting

mod fingerprint_props {
    //! Property battery for the shared-execution fingerprint: alias
    //! renames never change it, semantic perturbations always do, and
    //! 10k random samples produce no hash collision with distinct
    //! canonical forms (equal fingerprints therefore imply structurally
    //! identical optimized plans — the canon *is* the canonical plan
    //! rendering).

    use super::setup;
    use eslev_lang::parser::parse_statement;
    use eslev_lang::prelude::Statement;
    use eslev_lang::{build_logical, full_fingerprint, rewrite_logical, Fingerprint};
    use std::collections::HashMap;

    /// Deterministic LCG, no external crates.
    struct Lcg(u64);

    impl Lcg {
        fn below(&mut self, n: u64) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) % n
        }
    }

    /// The semantic content of one random query, independent of the
    /// aliases used to phrase it.
    #[derive(Clone)]
    struct Params {
        shape: u64,
        lit: u64,
        win: u64,
        items: u64,
        mode: u64,
    }

    fn gen(rng: &mut Lcg) -> Params {
        Params {
            shape: rng.below(4),
            lit: rng.below(50),
            win: 1 + rng.below(50),
            items: rng.below(3),
            mode: rng.below(4),
        }
    }

    /// Render `p` as SQL phrased with bindings `a` / `b`; a different
    /// alias pair must never change the fingerprint, a different
    /// `Params` always must.
    fn sql(p: &Params, a: &str, b: &str) -> String {
        match p.shape {
            0 => {
                let items = match p.items {
                    0 => "tagid".to_string(),
                    1 => "tagid, tagtime".to_string(),
                    _ => format!("tagid AS out{}", p.items),
                };
                format!(
                    "SELECT {items} FROM shelf AS {a} WHERE {a}.tagid LIKE '2{}.%'",
                    p.lit
                )
            }
            1 => format!(
                "SELECT * FROM shelf AS {a} WHERE NOT EXISTS \
                 (SELECT * FROM shelf AS {b} OVER [{} SECONDS PRECEDING {a}] \
                  WHERE {b}.tagid = {a}.tagid)",
                p.win * 10
            ),
            2 => format!(
                "SELECT COUNT(tagid) FROM shelf OVER (RANGE {} SECONDS PRECEDING CURRENT) \
                 WHERE tagid LIKE '2{}.%'",
                p.win * 60,
                p.lit
            ),
            _ => {
                let mode =
                    ["RECENT", "CHRONICLE", "UNRESTRICTED", "CONSECUTIVE"][p.mode as usize % 4];
                format!(
                    "SELECT {a}.tagid, {b}.tagtime FROM shelf AS {a}, checkout AS {b} \
                     WHERE SEQ({a}, {b}) MODE {mode} AND {a}.tagid = {b}.tagid \
                     AND {a}.tagid LIKE '2{}.%'",
                    p.lit
                )
            }
        }
    }

    fn fp(e: &eslev_dsms::engine::Engine, sql: &str) -> Fingerprint {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!("select statement expected for `{sql}`")
        };
        let naive = build_logical(e, &sel).unwrap();
        let (opt, _) = rewrite_logical(e, &sel, naive).unwrap();
        full_fingerprint(&sel, &opt)
    }

    #[test]
    fn alias_renames_are_fingerprint_invariant() {
        let e = setup();
        let mut rng = Lcg(0xa11a5);
        for trial in 0..300 {
            let p = gen(&mut rng);
            let f1 = fp(&e, &sql(&p, "a", "b"));
            let f2 = fp(&e, &sql(&p, "outer_binding", "w"));
            assert_eq!(
                (f1.hash, &f1.canon),
                (f2.hash, &f2.canon),
                "trial {trial}: alias rename changed the fingerprint of `{}`",
                sql(&p, "a", "b")
            );
        }
    }

    #[test]
    fn semantic_perturbations_change_the_fingerprint() {
        let e = setup();
        let mut rng = Lcg(0x5e3a71c);
        for trial in 0..150 {
            let p = gen(&mut rng);
            let base = fp(&e, &sql(&p, "a", "b"));
            // Perturb one semantic dimension at a time.
            let mut lit = p.clone();
            lit.lit = (p.lit + 1) % 50;
            let mut win = p.clone();
            win.win = p.win % 50 + 1;
            for (what, q) in [("literal", lit), ("window", win)] {
                if sql(&q, "a", "b") == sql(&p, "a", "b") {
                    continue; // the dimension is unused by this shape
                }
                let other = fp(&e, &sql(&q, "a", "b"));
                assert_ne!(
                    base.canon,
                    other.canon,
                    "trial {trial}: {what} perturbation left the canon unchanged for `{}`",
                    sql(&p, "a", "b")
                );
                assert_ne!(
                    base.hash, other.hash,
                    "trial {trial}: {what} perturbation collided on the hash"
                );
            }
        }
    }

    #[test]
    fn no_hash_collisions_on_10k_random_samples() {
        let e = setup();
        let mut rng = Lcg(0xc0111de);
        let mut seen: HashMap<u64, String> = HashMap::new();
        for trial in 0..10_000 {
            let p = gen(&mut rng);
            let f = fp(&e, &sql(&p, "a", "b"));
            match seen.get(&f.hash) {
                // Equal hash must mean equal canonical plan — i.e. a
                // structurally identical optimized query.
                Some(canon) => assert_eq!(
                    canon, &f.canon,
                    "trial {trial}: FNV collision between distinct canonical plans"
                ),
                None => {
                    seen.insert(f.hash, f.canon);
                }
            }
        }
        assert!(
            seen.len() > 500,
            "sample space degenerated: only {} distinct fingerprints",
            seen.len()
        );
    }
}
