//! Every worked example of the paper, executed verbatim through the
//! language front-end against the engine.

use eslev_dsms::prelude::*;
use eslev_lang::{execute, execute_script, ExecOutcome};
use eslev_rfid::prelude::*;

fn reading_row(reader: &str, tag: &str, ms: u64) -> Vec<Value> {
    vec![
        Value::str(reader),
        Value::str(tag),
        Value::Ts(Timestamp::from_millis(ms)),
    ]
}

/// Example 1: duplicate filtering with a self-referential windowed
/// NOT EXISTS — the planner lowers it to the Dedup operator.
#[test]
fn example1_duplicate_filtering() {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         CREATE STREAM cleaned_readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);",
    )
    .unwrap();
    execute(
        &mut engine,
        "INSERT INTO cleaned_readings
         SELECT * FROM readings AS r1
         WHERE NOT EXISTS
           (SELECT * FROM TABLE( readings OVER
              (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
            WHERE r2.reader_id = r1.reader_id
            AND r2.tag_id = r1.tag_id)",
    )
    .unwrap();
    let out = execute(&mut engine, "SELECT * FROM cleaned_readings").unwrap();
    let rows = out.collector().unwrap().clone();

    engine.push("readings", reading_row("r1", "t1", 0)).unwrap();
    engine
        .push("readings", reading_row("r1", "t1", 400))
        .unwrap(); // dup
    engine
        .push("readings", reading_row("r1", "t1", 900))
        .unwrap(); // chained dup
    engine
        .push("readings", reading_row("r1", "t2", 950))
        .unwrap(); // different tag
    engine
        .push("readings", reading_row("r1", "t1", 2500))
        .unwrap(); // fresh
    assert_eq!(rows.len(), 3);
}

/// Example 2: location tracking via a stream-to-table NOT EXISTS.
#[test]
fn example2_location_tracking() {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM tag_locations (readerid VARCHAR, tid VARCHAR, tagtime TIMESTAMP, loc VARCHAR);
         CREATE TABLE object_movement (tagid VARCHAR, location VARCHAR, start_time TIMESTAMP);",
    )
    .unwrap();
    execute(
        &mut engine,
        "INSERT INTO object_movement
         SELECT tid, loc, tagtime
         FROM tag_locations WHERE NOT EXISTS
           (SELECT tagid FROM object_movement
            WHERE tagid = tid AND location = loc)",
    )
    .unwrap();
    let row = |tid: &str, loc: &str, secs: u64| {
        vec![
            Value::str("rdr"),
            Value::str(tid),
            Value::Ts(Timestamp::from_secs(secs)),
            Value::str(loc),
        ]
    };
    engine
        .push("tag_locations", row("obj1", "dock", 1))
        .unwrap();
    engine
        .push("tag_locations", row("obj1", "dock", 2))
        .unwrap(); // unchanged
    engine
        .push("tag_locations", row("obj1", "aisle", 3))
        .unwrap(); // moved
    engine
        .push("tag_locations", row("obj2", "dock", 4))
        .unwrap(); // new object
    engine
        .push("tag_locations", row("obj1", "aisle", 5))
        .unwrap(); // unchanged
    let table = engine.table("object_movement").unwrap();
    assert_eq!(table.len(), 3);
    // The paper's literal query keys on (tag, location) pairs: a return
    // to a previously-seen location does not insert.
    engine
        .push("tag_locations", row("obj1", "dock", 6))
        .unwrap();
    assert_eq!(table.len(), 3);
}

/// Example 3: EPC-pattern aggregation with LIKE and the extract_serial
/// UDF.
#[test]
fn example3_epc_aggregation() {
    let mut engine = Engine::new();
    register_epc_udfs(engine.functions_mut());
    execute(
        &mut engine,
        "CREATE STREAM readings (reader_id VARCHAR, tid VARCHAR, read_time TIMESTAMP)",
    )
    .unwrap();
    let out = execute(
        &mut engine,
        "SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
         AND extract_serial(tid) > 5000
         AND extract_serial(tid) < 9999",
    )
    .unwrap();
    let rows = out.collector().unwrap().clone();
    for (i, tid) in ["20.17.6000", "21.17.6000", "20.3.100", "20.9.7000"]
        .iter()
        .enumerate()
    {
        engine
            .push(
                "readings",
                vec![
                    Value::str("r"),
                    Value::str(*tid),
                    Value::Ts(Timestamp::from_secs(i as u64)),
                ],
            )
            .unwrap();
    }
    // Continuous emission: the last report carries the running count (2
    // of the 4 EPCs match).
    let all = rows.take();
    assert_eq!(all.last().unwrap().value(0), &Value::Int(2));
}

/// Example 6: SEQ over the four checkpoint streams with tagid equality
/// (lifted into the partition key).
#[test]
fn example6_seq_detection() {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )
    .unwrap();
    let out = execute(
        &mut engine,
        "SELECT C1.tagid, C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
         FROM C1, C2, C3, C4
         WHERE SEQ(C1, C2, C3, C4) MODE RECENT
         AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid",
    )
    .unwrap();
    let rows = out.collector().unwrap().clone();
    // Two products interleaved; both complete.
    let feed = [
        ("c1", "p1", 0u64),
        ("c1", "p2", 1),
        ("c2", "p1", 2),
        ("c2", "p2", 3),
        ("c3", "p1", 4),
        ("c4", "p1", 5),
        ("c3", "p2", 6),
        ("c4", "p2", 7),
    ];
    for (stream, tag, secs) in feed {
        engine
            .push(stream, reading_row("rdr", tag, secs * 1000))
            .unwrap();
    }
    let all = rows.take();
    assert_eq!(all.len(), 2);
    assert_eq!(all[0].value(0), &Value::str("p1"));
    assert_eq!(all[1].value(0), &Value::str("p2"));
    // Columns: tagid + the four checkpoint times, in order.
    assert_eq!(all[0].arity(), 5);
    assert_eq!(all[0].value(4), &Value::Ts(Timestamp::from_secs(5)));
}

/// §3.1.1's windowed SEQ: the sequence must finish within the window.
#[test]
fn seq_with_preceding_window() {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )
    .unwrap();
    let out = execute(
        &mut engine,
        "SELECT C2.tagid, C1.tagtime FROM C1, C2
         WHERE SEQ(C1, C2) OVER [30 MINUTES PRECEDING C2] MODE RECENT
         AND C1.tagid=C2.tagid",
    )
    .unwrap();
    let rows = out.collector().unwrap().clone();
    engine.push("c1", reading_row("r", "slow", 0)).unwrap();
    // 40 minutes later: outside the window.
    engine
        .push("c2", reading_row("r", "slow", 40 * 60 * 1000))
        .unwrap();
    assert_eq!(rows.len(), 0);
    engine
        .push("c1", reading_row("r", "fast", 50 * 60 * 1000))
        .unwrap();
    engine
        .push("c2", reading_row("r", "fast", 60 * 60 * 1000))
        .unwrap();
    assert_eq!(rows.len(), 1);
}

/// Example 7: star-sequence containment with both gap constraints and
/// star aggregates in the select list.
#[test]
fn example7_containment() {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )
    .unwrap();
    let out = execute(
        &mut engine,
        "SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
         FROM R1, R2
         WHERE SEQ(R1*, R2) MODE CHRONICLE
         AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
         AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS",
    )
    .unwrap();
    let rows = out.collector().unwrap().clone();
    for (tag, ms) in [("p1", 0u64), ("p2", 400), ("p3", 800)] {
        engine.push("r1", reading_row("rdr", tag, ms)).unwrap();
    }
    engine
        .push("r2", reading_row("rdr", "case1", 2000))
        .unwrap();
    let all = rows.take();
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].value(0), &Value::Ts(Timestamp::ZERO)); // FIRST(R1*).tagtime
    assert_eq!(all[0].value(1), &Value::Int(3)); // COUNT(R1*)
    assert_eq!(all[0].value(2), &Value::str("case1"));
}

/// Footnote 4: the multi-return variant of Example 7 — one row per
/// packed product.
#[test]
fn example7_multi_return() {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )
    .unwrap();
    let out = execute(
        &mut engine,
        "SELECT R1.tagid, R1.tagtime, R2.tagid, R2.tagtime
         FROM R1, R2
         WHERE SEQ(R1*, R2) MODE CHRONICLE
         AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
         AND R1.tagtime - R1.previous.tagtime < 1 SECONDS",
    )
    .unwrap();
    let rows = out.collector().unwrap().clone();
    for (tag, ms) in [("p1", 0u64), ("p2", 400)] {
        engine.push("r1", reading_row("rdr", tag, ms)).unwrap();
    }
    engine
        .push("r2", reading_row("rdr", "case1", 2000))
        .unwrap();
    let all = rows.take();
    assert_eq!(all.len(), 2, "one row per star participant");
    assert_eq!(all[0].value(0), &Value::str("p1"));
    assert_eq!(all[1].value(0), &Value::str("p2"));
    assert!(all.iter().all(|r| r.value(2) == &Value::str("case1")));
}

/// §3.1.3: EXCEPTION_SEQ with a FOLLOWING window — the clinic workflow
/// of Example 5, including a timeout detected purely by punctuation.
#[test]
fn exception_seq_clinic() {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM A1 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A2 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A3 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )
    .unwrap();
    let out = execute(
        &mut engine,
        "SELECT A1.tagid, A2.tagid, A3.tagid
         FROM A1, A2, A3
         WHERE EXCEPTION_SEQ(A1, A2, A3)
         OVER [1 HOURS FOLLOWING A1]",
    )
    .unwrap();
    let rows = out.collector().unwrap().clone();
    let op = |secs: u64, equip: &str| {
        vec![
            Value::str("staff-1"),
            Value::str(equip),
            Value::Ts(Timestamp::from_secs(secs)),
        ]
    };
    // Correct run: no exception.
    engine.push("a1", op(0, "equip-A")).unwrap();
    engine.push("a2", op(600, "equip-B")).unwrap();
    engine.push("a3", op(1200, "equip-C")).unwrap();
    assert_eq!(rows.len(), 0);
    // Wrong order: A then C.
    engine.push("a1", op(10_000, "equip-A")).unwrap();
    engine.push("a3", op(10_100, "equip-C")).unwrap();
    assert_eq!(rows.len(), 1);
    let r = rows.snapshot();
    assert_eq!(r[0].value(0), &Value::str("equip-A"));
    assert!(r[0].value(2).is_null(), "missing elements project as NULL");
    // Timeout: A then silence past the hour; detected by watermark.
    engine.push("a1", op(20_000, "equip-A")).unwrap();
    engine
        .advance_to(Timestamp::from_secs(20_000 + 3601))
        .unwrap();
    assert_eq!(rows.len(), 2);
}

/// §3.1.3's CLEVEL_SEQ formulation is equivalent to EXCEPTION_SEQ.
#[test]
fn clevel_seq_equivalent() {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM A1 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A2 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A3 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )
    .unwrap();
    let out = execute(
        &mut engine,
        "SELECT A1.tagid, A2.tagid, A3.tagid
         FROM A1, A2, A3
         WHERE (CLEVEL_SEQ(A1, A2, A3)
         OVER [1 HOURS FOLLOWING A1]) < 3",
    )
    .unwrap();
    let rows = out.collector().unwrap().clone();
    let op = |secs: u64, equip: &str| {
        vec![
            Value::str("s"),
            Value::str(equip),
            Value::Ts(Timestamp::from_secs(secs)),
        ]
    };
    engine.push("a1", op(0, "A")).unwrap();
    engine.push("a2", op(10, "B")).unwrap();
    engine.push("a2", op(20, "B")).unwrap(); // replacement violation
    assert_eq!(rows.len(), 1);
    // A completed sequence has level 3 and is filtered out by `< 3`.
    engine.push("a1", op(100, "A")).unwrap();
    engine.push("a2", op(110, "B")).unwrap();
    engine.push("a3", op(120, "C")).unwrap();
    assert_eq!(rows.len(), 1);
}

/// Example 8: theft detection with a PRECEDING AND FOLLOWING window
/// synchronized across the sub-query boundary.
#[test]
fn example8_door_security() {
    let mut engine = Engine::new();
    execute(
        &mut engine,
        "CREATE STREAM tag_readings (tagid VARCHAR, tagtype VARCHAR, tagtime TIMESTAMP)",
    )
    .unwrap();
    // The harness's item-anchored variant: alert for items with no
    // person nearby (the paper's text describes this intent).
    let out = execute(
        &mut engine,
        "SELECT item.tagid
         FROM tag_readings AS item
         WHERE item.tagtype = 'item' AND NOT EXISTS
           (SELECT * FROM tag_readings AS person
            OVER [1 MINUTES PRECEDING AND FOLLOWING item]
            WHERE person.tagtype = 'person')",
    )
    .unwrap();
    let rows = out.collector().unwrap().clone();
    let r = |tag: &str, ty: &str, secs: u64| {
        vec![
            Value::str(tag),
            Value::str(ty),
            Value::Ts(Timestamp::from_secs(secs)),
        ]
    };
    // Legit exit: person 30 s after item.
    engine
        .push("tag_readings", r("item-1", "item", 100))
        .unwrap();
    engine
        .push("tag_readings", r("alice", "person", 130))
        .unwrap();
    // Theft: no person within ±60 s.
    engine
        .push("tag_readings", r("item-2", "item", 500))
        .unwrap();
    engine
        .push("tag_readings", r("bob", "person", 700))
        .unwrap();
    engine.advance_to(Timestamp::from_secs(1000)).unwrap();
    let all = rows.take();
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].value(0), &Value::str("item-2"));
}

/// The paper's literal person-anchored Example 8 also plans and runs.
#[test]
fn example8_verbatim_person_anchor() {
    let mut engine = Engine::new();
    execute(
        &mut engine,
        "CREATE STREAM tag_readings (tagid VARCHAR, tagtype VARCHAR, tagtime TIMESTAMP)",
    )
    .unwrap();
    let out = execute(
        &mut engine,
        "SELECT person.tagid
         FROM tag_readings AS person
         WHERE person.tagtype = 'person' AND NOT EXISTS
           (SELECT * FROM tag_readings AS item
            OVER [1 MINUTES
            PRECEDING AND FOLLOWING person]
            WHERE item.tagtype = 'item')",
    )
    .unwrap();
    let rows = out.collector().unwrap().clone();
    let r = |tag: &str, ty: &str, secs: u64| {
        vec![
            Value::str(tag),
            Value::str(ty),
            Value::Ts(Timestamp::from_secs(secs)),
        ]
    };
    engine
        .push("tag_readings", r("alice", "person", 100))
        .unwrap(); // item at 130: suppressed
    engine
        .push("tag_readings", r("item-1", "item", 130))
        .unwrap();
    engine
        .push("tag_readings", r("bob", "person", 500))
        .unwrap(); // no item nearby
    engine.advance_to(Timestamp::from_secs(1000)).unwrap();
    let all = rows.take();
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].value(0), &Value::str("bob"));
}

/// Errors surface with context rather than panicking.
#[test]
fn planning_errors_are_reported() {
    let mut engine = Engine::new();
    execute(&mut engine, "CREATE STREAM s (tagid VARCHAR, t TIMESTAMP)").unwrap();
    // Unknown stream.
    assert!(execute(&mut engine, "SELECT * FROM nope").is_err());
    // Unknown column.
    assert!(execute(&mut engine, "SELECT zzz FROM s").is_err());
    // SEQ argument not in FROM.
    assert!(execute(&mut engine, "SELECT s.tagid FROM s WHERE SEQ(s, other)").is_err());
    // Stream without timestamp column.
    assert!(execute(&mut engine, "CREATE STREAM bad (x INT)").is_err());
    // Unknown function.
    assert!(execute(&mut engine, "SELECT nope(tagid) FROM s").is_err());
}

/// ExecOutcome variants behave as documented.
#[test]
fn outcome_shapes() {
    let mut engine = Engine::new();
    let o = execute(&mut engine, "CREATE STREAM s (tagid VARCHAR, t TIMESTAMP)").unwrap();
    assert!(matches!(o, ExecOutcome::Created));
    assert!(o.collector().is_none());
    let o = execute(&mut engine, "SELECT * FROM s").unwrap();
    assert!(o.collector().is_some());
}
