//! Crash-recovery differential suite: the paper's E1 (dedup), E6
//! (pairing-mode `SEQ`) and E10 (star sequence) workloads run through a
//! [`ShardedEngine`] under a deterministic [`FaultPlan`] — mid-feed
//! checkpoint, injected worker panics, a malformed row and a stale
//! watermark — and the recovered output must be identical to the
//! uninterrupted single-engine reference: same rows, same timestamps,
//! same order.
//!
//! The harness mirrors the router's cause indexing on the reference
//! side (a stale-watermark fault consumes one cause), so a
//! `MalformedTuple` fault corrupts the *same* row in both runs and both
//! engines dead-letter it.

use eslev::prelude::*;
use eslev::rfid::scenario::{dedup, qc_line};

type Row = (Vec<Value>, Timestamp);

fn key_rows(rows: Vec<Tuple>) -> Vec<Row> {
    rows.into_iter()
        .map(|t| (t.values().to_vec(), t.ts()))
        .collect()
}

/// Uninterrupted single-engine run, with the plan's malformed-row
/// corruption (and only that) mirrored onto the same feed positions.
fn run_reference(
    ddl: &str,
    query: &str,
    feed: &[(String, Vec<Value>)],
    plan: &FaultPlan,
    heartbeat: Option<Timestamp>,
) -> Vec<Row> {
    let mut engine = Engine::new();
    execute_script(&mut engine, ddl).expect("ddl plans");
    let q = execute(&mut engine, query).expect("query plans");
    let out = q.collector().expect("collected").clone();
    let mut cause = 1u64;
    for (stream, values) in feed {
        let mut row = values.clone();
        loop {
            plan.corrupt_only(cause, &mut row);
            let consumed = plan.consumed_at(cause);
            if consumed == 0 {
                break;
            }
            // A stale watermark is a monotone no-op on the engine; only
            // its cause consumption matters for row alignment.
            cause += consumed;
        }
        // Malformed rows are rejected into the dead-letter buffer; the
        // feed continues either way.
        let _ = engine.push(stream, row);
        cause += 1;
    }
    if let Some(ts) = heartbeat {
        engine.advance_to(ts).expect("heartbeat");
    }
    key_rows(out.take())
}

/// The same workload through the shard router with the plan's faults
/// fired live: workers panic mid-feed and the router restarts them from
/// checkpoint + journal. Returns the merged rows and the recovery stats.
fn run_faulted(
    shards: usize,
    ddl: &str,
    query: &str,
    feed: &[(String, Vec<Value>)],
    plan: &FaultPlan,
    heartbeat: Option<Timestamp>,
) -> (Vec<Row>, RecoveryStats) {
    let ddl = ddl.to_string();
    let query = query.to_string();
    let mut se = ShardedEngine::build(shards, 256, ShardSpec::new(), move |e| {
        execute_script(e, &ddl)?;
        let q = execute(e, &query)?;
        Ok(vec![q.collector().expect("collected").clone()])
    })
    .expect("sharded build");
    for (stream, values) in feed {
        let mut row = values.clone();
        loop {
            let cause = se.next_cause();
            plan.apply(&mut se, cause, &mut row).expect("fault fires");
            if se.next_cause() == cause {
                break;
            }
        }
        se.push(stream, row).expect("route");
    }
    if let Some(ts) = heartbeat {
        se.advance_to(ts).expect("heartbeat");
    }
    se.flush().expect("flush recovers crashed shards");
    let rows = key_rows(se.take_output(0).expect("slot 0"));
    let stats = se.recovery_stats();
    se.stop().expect("clean stop after recovery");
    (rows, stats)
}

fn assert_crash_differential(
    name: &str,
    ddl: &str,
    query: &str,
    feed: &[(String, Vec<Value>)],
    heartbeat: Option<Timestamp>,
) {
    for shards in [1usize, 2, 4, 8] {
        let plan = FaultPlan::seeded(42, shards, feed.len() as u64);
        let panics = plan
            .faults()
            .filter(|f| matches!(f, Fault::PanicAtCause { .. }))
            .count() as u64;
        assert!(panics >= 1, "{name}: plan must kill at least one worker");
        let want = run_reference(ddl, query, feed, &plan, heartbeat);
        assert!(
            !want.is_empty(),
            "{name}: reference output must be non-trivial"
        );
        let (got, stats) = run_faulted(shards, ddl, query, feed, &plan, heartbeat);
        assert_eq!(
            got, want,
            "{name}: kill-and-recover at N={shards} diverged from the uninterrupted reference"
        );
        assert!(
            stats.restarts >= 1,
            "{name} N={shards}: eslev_shard_restarts_total must increment (got {})",
            stats.restarts
        );
        assert_eq!(
            stats.checkpoints, 1,
            "{name} N={shards}: the seeded plan checkpoints once"
        );
        assert!(
            stats.shards.iter().any(|s| s
                .last_panic
                .as_deref()
                .is_some_and(|d| d.contains("injected fault"))),
            "{name} N={shards}: the original panic message must survive recovery"
        );
    }
}

// ------------------------------------------------------------------ E1

const E1_DDL: &str = "
    CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
    CREATE STREAM cleaned_readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
    INSERT INTO cleaned_readings
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);";

#[test]
fn e1_dedup_survives_crash_and_recovery() {
    let w = dedup::generate(&dedup::DedupConfig {
        presences: 120,
        duplicate_prob: 0.6,
        seed: 11,
        ..dedup::DedupConfig::default()
    });
    let feed: Vec<(String, Vec<Value>)> = w
        .readings
        .iter()
        .map(|r| ("readings".to_string(), r.to_values()))
        .collect();
    assert_crash_differential("E1", E1_DDL, "SELECT * FROM cleaned_readings", &feed, None);
}

// ------------------------------------------------------------------ E6

const E6_DDL: &str = "
    CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);";

#[test]
fn e6_pairing_modes_survive_crash_and_recovery() {
    let w = qc_line::generate(&qc_line::QcConfig {
        products: 60,
        seed: 3,
        ..qc_line::QcConfig::default()
    });
    let feeds: Vec<(String, Vec<Reading>)> = w
        .feeds
        .iter()
        .enumerate()
        .map(|(i, f)| (format!("c{}", i + 1), f.clone()))
        .collect();
    let feed: Vec<(String, Vec<Value>)> = merge_feeds(feeds)
        .into_iter()
        .map(|item| (item.stream, item.reading.to_values()))
        .collect();
    for mode in ["RECENT", "CHRONICLE", "UNRESTRICTED"] {
        let query = format!(
            "SELECT C1.tagid, C4.tagtime FROM C1, C2, C3, C4
             WHERE SEQ(C1, C2, C3, C4) MODE {mode}
             AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid"
        );
        assert_crash_differential(&format!("E6 {mode}"), E6_DDL, &query, &feed, None);
    }
}

// ----------------------------------------------------------------- E10

const E10_DDL: &str = "
    CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);";

const E10_QUERY: &str = "SELECT COUNT(R1*), R2.tagid FROM R1, R2
                         WHERE SEQ(R1*, R2) MODE CHRONICLE AND R1.tagid = R2.tagid";

fn e10_feed(tags: usize, runs_per_tag: usize, run_len: usize) -> Vec<(String, Vec<Value>)> {
    let mut feed = Vec::new();
    let mut ts = 0u64;
    for _run in 0..runs_per_tag {
        for step in 0..=run_len {
            for tag in 0..tags {
                ts += 1;
                let stream = if step < run_len { "r1" } else { "r2" };
                feed.push((
                    stream.to_string(),
                    vec![
                        Value::str("rd"),
                        Value::str(format!("tag-{tag}")),
                        Value::Ts(Timestamp::from_secs(ts)),
                    ],
                ));
            }
        }
    }
    feed
}

#[test]
fn e10_star_sequence_survives_crash_and_recovery() {
    let feed = e10_feed(7, 5, 3);
    assert_crash_differential("E10 star", E10_DDL, E10_QUERY, &feed, None);
}

/// Active expiration under recovery: a broadcast heartbeat fires
/// `EXCEPTION_SEQ`-style timeouts after the crashed shard was restored,
/// and the expirations must match the uninterrupted run exactly.
#[test]
fn e10_heartbeat_expiry_survives_crash_and_recovery() {
    let feed = e10_feed(5, 2, 4);
    assert_crash_differential(
        "E10 heartbeat",
        E10_DDL,
        E10_QUERY,
        &feed,
        Some(Timestamp::from_secs(3600)),
    );
}

/// Journal-only recovery: no checkpoint is ever taken, so the restarted
/// shard replays its entire journal from cause zero.
#[test]
fn journal_only_recovery_replays_from_zero() {
    let w = dedup::generate(&dedup::DedupConfig {
        presences: 60,
        duplicate_prob: 0.5,
        seed: 5,
        ..dedup::DedupConfig::default()
    });
    let feed: Vec<(String, Vec<Value>)> = w
        .readings
        .iter()
        .map(|r| ("readings".to_string(), r.to_values()))
        .collect();
    let query = "SELECT * FROM cleaned_readings";
    for shards in [2usize, 4] {
        let plan = FaultPlan::new().with(Fault::PanicAtCause {
            shard: 0,
            cause: (feed.len() / 2) as u64,
        });
        let want = run_reference(E1_DDL, query, &feed, &plan, None);
        let (got, stats) = run_faulted(shards, E1_DDL, query, &feed, &plan, None);
        assert_eq!(got, want, "journal-only recovery diverged at N={shards}");
        assert_eq!(stats.checkpoints, 0);
        assert!(stats.restarts >= 1);
        assert!(
            stats.shards[0].checkpoint_cause.is_none(),
            "no checkpoint means replay from cause zero"
        );
        assert!(
            stats.replayed_tuples >= (feed.len() / 2) as u64,
            "the whole journal prefix must replay (got {})",
            stats.replayed_tuples
        );
    }
}

// --------------------------------------------------- shared subplans

/// Bare dedup SELECT over `readings`, alias-parameterized so two
/// phrasings of the same plan fingerprint onto one shared chain.
fn shared_dedup_query(outer: &str, inner: &str) -> String {
    format!(
        "SELECT * FROM readings AS {outer}
         WHERE NOT EXISTS
           (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS {inner}
            WHERE {inner}.reader_id = {outer}.reader_id AND {inner}.tag_id = {outer}.tag_id)"
    )
}

const SHARED_DDL: &str =
    "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);";

fn e1_shared_feed(seed: u64, presences: usize) -> Vec<(String, Vec<Value>)> {
    let w = dedup::generate(&dedup::DedupConfig {
        presences,
        duplicate_prob: 0.6,
        seed,
        ..dedup::DedupConfig::default()
    });
    w.readings
        .iter()
        .map(|r| ("readings".to_string(), r.to_values()))
        .collect()
}

/// Kill-and-recover with two queries sharing one subplan: the restored
/// shard must rebuild the shared chain from the checkpoint's v3 section
/// and both subscribers must match the uninterrupted independent run.
#[test]
fn shared_subplan_survives_crash_and_recovery() {
    let feed = e1_shared_feed(17, 120);
    let queries = [shared_dedup_query("a", "b"), shared_dedup_query("x", "y")];
    for shards in [1usize, 2, 4] {
        let plan = FaultPlan::seeded(42, shards, feed.len() as u64);
        // Uninterrupted reference: independent chains, no sharing.
        let mut want = Vec::new();
        {
            let mut engine = Engine::new();
            execute_script(&mut engine, SHARED_DDL).expect("ddl plans");
            let outs: Vec<Collector> = queries
                .iter()
                .map(|q| {
                    execute(&mut engine, q)
                        .unwrap()
                        .collector()
                        .unwrap()
                        .clone()
                })
                .collect();
            let mut cause = 1u64;
            for (stream, values) in &feed {
                let mut row = values.clone();
                loop {
                    plan.corrupt_only(cause, &mut row);
                    let consumed = plan.consumed_at(cause);
                    if consumed == 0 {
                        break;
                    }
                    cause += consumed;
                }
                let _ = engine.push(stream, row);
                cause += 1;
            }
            for out in &outs {
                want.push(key_rows(out.take()));
            }
            assert!(!want[0].is_empty(), "reference output must be non-trivial");
        }
        // Faulted run: shared execution on, both queries on one chain.
        let ddl = SHARED_DDL.to_string();
        let qs: Vec<String> = queries.to_vec();
        let mut se = ShardedEngine::build(shards, 256, ShardSpec::new(), move |e| {
            e.set_shared_execution(true);
            execute_script(e, &ddl)?;
            let mut outs = Vec::new();
            for q in &qs {
                outs.push(execute(e, q)?.collector().expect("collected").clone());
            }
            Ok(outs)
        })
        .expect("sharded build");
        let chains: Vec<usize> = se.exec_all(|e| e.shared_stats().len()).expect("exec_all");
        assert!(
            chains.iter().all(|&n| n == 1),
            "both queries must fuse onto one chain per shard (got {chains:?})"
        );
        for (stream, values) in &feed {
            let mut row = values.clone();
            loop {
                let cause = se.next_cause();
                plan.apply(&mut se, cause, &mut row).expect("fault fires");
                if se.next_cause() == cause {
                    break;
                }
            }
            se.push(stream, row).expect("route");
        }
        se.flush().expect("flush recovers crashed shards");
        for (slot, want_rows) in want.iter().enumerate() {
            let got = key_rows(se.take_output(slot).expect("slot"));
            assert_eq!(
                &got, want_rows,
                "shared query {slot} diverged after kill-and-recover at N={shards}"
            );
        }
        let stats = se.recovery_stats();
        assert!(stats.restarts >= 1, "plan must kill at least one worker");
        se.stop().expect("clean stop after recovery");
    }
}

/// Direct engine-level round-trip of the checkpoint v3 shared-chain
/// section: checkpoint mid-feed, restore into an identically-built
/// engine, feed the suffix — prefix + suffix output equals the
/// uninterrupted run for both subscribers.
#[test]
fn checkpoint_v3_shared_section_roundtrips() {
    fn build() -> (Engine, Vec<Collector>) {
        let mut e = Engine::new();
        e.set_shared_execution(true);
        execute_script(&mut e, SHARED_DDL).expect("ddl plans");
        let outs = [shared_dedup_query("a", "b"), shared_dedup_query("x", "y")]
            .iter()
            .map(|q| execute(&mut e, q).unwrap().collector().unwrap().clone())
            .collect();
        (e, outs)
    }
    let feed = e1_shared_feed(23, 80);
    let half = feed.len() / 2;

    // Uninterrupted run.
    let (mut full, full_outs) = build();
    for (stream, values) in &feed {
        full.push(stream, values.clone()).unwrap();
    }
    let want: Vec<Vec<Row>> = full_outs.iter().map(|o| key_rows(o.take())).collect();
    assert!(!want[0].is_empty());

    // Interrupted run: prefix, checkpoint, restore, suffix.
    let (mut a, a_outs) = build();
    for (stream, values) in &feed[..half] {
        a.push(stream, values.clone()).unwrap();
    }
    let ck = a.checkpoint().expect("checkpoint");
    assert_eq!(ck.version, CHECKPOINT_VERSION);
    let chains = ck
        .root
        .item(4)
        .expect("v3 shared section")
        .as_list()
        .unwrap();
    assert_eq!(chains.len(), 1, "one shared chain in the checkpoint");
    assert_eq!(
        chains[0].item(3).unwrap().as_list().unwrap().len(),
        2,
        "the chain's subscriber list round-trips both queries"
    );
    let prefix: Vec<Vec<Row>> = a_outs.iter().map(|o| key_rows(o.take())).collect();

    let (mut b, b_outs) = build();
    b.restore(&ck).expect("restore shared section");
    for (stream, values) in &feed[half..] {
        b.push(stream, values.clone()).unwrap();
    }
    let suffix: Vec<Vec<Row>> = b_outs.iter().map(|o| key_rows(o.take())).collect();

    for (i, want_rows) in want.iter().enumerate() {
        let mut got = prefix[i].clone();
        got.extend(suffix[i].iter().cloned());
        assert_eq!(
            &got, want_rows,
            "query {i}: checkpoint/restore changed the shared chain's output"
        );
    }
}
