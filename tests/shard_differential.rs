//! Shard-vs-single differential suite: the paper's E1 (dedup), E6
//! (pairing-mode `SEQ`) and E10 (star sequence) workloads run through a
//! [`ShardedEngine`] at N ∈ {1, 2, 4, 8} must produce output identical
//! to the single-threaded [`Engine`] reference — same rows, same
//! timestamps, same order after the deterministic merge.
//!
//! Comparison key: `(values, ts)` in emission order. Sequence numbers
//! are intentionally excluded — the router stamps tuples with global
//! cause indices (`cause << 16`), so seq values differ from the single
//! engine's dense counter by construction while order is preserved.

use eslev::prelude::*;
use eslev::rfid::scenario::{dedup, qc_line};

type Row = (Vec<Value>, Timestamp);

fn key_rows(rows: Vec<Tuple>) -> Vec<Row> {
    rows.into_iter()
        .map(|t| (t.values().to_vec(), t.ts()))
        .collect()
}

/// Run `ddl` + one collected `query` over `feed` on a single engine.
fn run_single(ddl: &str, query: &str, feed: &[(String, Vec<Value>)]) -> Vec<Row> {
    let mut engine = Engine::new();
    execute_script(&mut engine, ddl).expect("ddl plans");
    let q = execute(&mut engine, query).expect("query plans");
    let out = q.collector().expect("collected").clone();
    for (stream, values) in feed {
        engine.push(stream, values.clone()).expect("feed");
    }
    key_rows(out.take())
}

/// The same setup through the shard router at `shards` workers.
fn run_sharded(shards: usize, ddl: &str, query: &str, feed: &[(String, Vec<Value>)]) -> Vec<Row> {
    let ddl = ddl.to_string();
    let query = query.to_string();
    let mut se = ShardedEngine::build(shards, 256, ShardSpec::new(), move |e| {
        execute_script(e, &ddl)?;
        let q = execute(e, &query)?;
        Ok(vec![q.collector().expect("collected").clone()])
    })
    .expect("sharded build");
    for (stream, values) in feed {
        se.push(stream, values.clone()).expect("route");
    }
    se.flush().expect("flush");
    let rows = key_rows(se.take_output(0).expect("slot 0"));
    se.stop().expect("clean stop");
    rows
}

fn assert_differential(name: &str, ddl: &str, query: &str, feed: &[(String, Vec<Value>)]) {
    let want = run_single(ddl, query, feed);
    assert!(
        !want.is_empty(),
        "{name}: reference output must be non-trivial"
    );
    for shards in [1usize, 2, 4, 8] {
        let got = run_sharded(shards, ddl, query, feed);
        assert_eq!(
            got, want,
            "{name}: sharded output at N={shards} diverged from the single-engine reference"
        );
    }
}

// ------------------------------------------------------------------ E1

const E1_DDL: &str = "
    CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
    CREATE STREAM cleaned_readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
    INSERT INTO cleaned_readings
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);";

#[test]
fn e1_dedup_sharded_equals_single() {
    for seed in [1u64, 7] {
        let w = dedup::generate(&dedup::DedupConfig {
            presences: 150,
            duplicate_prob: 0.6,
            seed,
            ..dedup::DedupConfig::default()
        });
        let feed: Vec<(String, Vec<Value>)> = w
            .readings
            .iter()
            .map(|r| ("readings".to_string(), r.to_values()))
            .collect();
        assert_differential(
            &format!("E1 seed {seed}"),
            E1_DDL,
            "SELECT * FROM cleaned_readings",
            &feed,
        );
    }
}

// ------------------------------------------------------------------ E6

const E6_DDL: &str = "
    CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);";

fn e6_feed(seed: u64) -> Vec<(String, Vec<Value>)> {
    let w = qc_line::generate(&qc_line::QcConfig {
        products: 80,
        seed,
        ..qc_line::QcConfig::default()
    });
    let feeds: Vec<(String, Vec<Reading>)> = w
        .feeds
        .iter()
        .enumerate()
        .map(|(i, f)| (format!("c{}", i + 1), f.clone()))
        .collect();
    merge_feeds(feeds)
        .into_iter()
        .map(|item| (item.stream, item.reading.to_values()))
        .collect()
}

#[test]
fn e6_pairing_modes_sharded_equals_single() {
    // The tag equalities lift into the detector partition key, so the
    // per-tag NFA state lives wholly on one shard — each pairing mode
    // must survive partitioning unchanged.
    for mode in ["RECENT", "CHRONICLE", "UNRESTRICTED"] {
        let query = format!(
            "SELECT C1.tagid, C4.tagtime FROM C1, C2, C3, C4
             WHERE SEQ(C1, C2, C3, C4) MODE {mode}
             AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid"
        );
        let feed = e6_feed(3);
        assert_differential(&format!("E6 {mode}"), E6_DDL, &query, &feed);
    }
}

// ----------------------------------------------------------------- E10

const E10_DDL: &str = "
    CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);";

/// Tag-interleaved star runs: each tag cycles `run_len` R1 readings and
/// then one R2 boundary, with rounds of all tags interleaved so tuples
/// of different tags alternate at adjacent timestamps.
fn e10_feed(tags: usize, runs_per_tag: usize, run_len: usize) -> Vec<(String, Vec<Value>)> {
    let mut feed = Vec::new();
    let mut ts = 0u64;
    for _run in 0..runs_per_tag {
        for step in 0..=run_len {
            for tag in 0..tags {
                ts += 1;
                let stream = if step < run_len { "r1" } else { "r2" };
                feed.push((
                    stream.to_string(),
                    vec![
                        Value::str("rd"),
                        Value::str(format!("tag-{tag}")),
                        Value::Ts(Timestamp::from_secs(ts)),
                    ],
                ));
            }
        }
    }
    feed
}

#[test]
fn e10_star_sequence_sharded_equals_single() {
    let query = "SELECT COUNT(R1*), R2.tagid FROM R1, R2
                 WHERE SEQ(R1*, R2) MODE CHRONICLE AND R1.tagid = R2.tagid";
    let feed = e10_feed(7, 6, 3);
    assert_differential("E10 star", E10_DDL, query, &feed);
}

/// Active expiration must also be deterministic: an `EXCEPTION_SEQ`-style
/// timeout fired by a broadcast heartbeat (not by a tuple) has to appear
/// in the merged output exactly as the single engine emits it.
#[test]
fn e10_heartbeat_expiry_sharded_equals_single() {
    let query = "SELECT COUNT(R1*), R2.tagid FROM R1, R2
                 WHERE SEQ(R1*, R2) MODE CHRONICLE AND R1.tagid = R2.tagid";
    let feed = e10_feed(5, 2, 4);

    let want = {
        let mut engine = Engine::new();
        execute_script(&mut engine, E10_DDL).unwrap();
        let q = execute(&mut engine, query).unwrap();
        let out = q.collector().unwrap().clone();
        for (stream, values) in &feed {
            engine.push(stream, values.clone()).unwrap();
        }
        engine.advance_to(Timestamp::from_secs(3600)).unwrap();
        key_rows(out.take())
    };

    for shards in [2usize, 4] {
        let ddl = E10_DDL.to_string();
        let q = query.to_string();
        let mut se = ShardedEngine::build(shards, 256, ShardSpec::new(), move |e| {
            execute_script(e, &ddl)?;
            let q = execute(e, &q)?;
            Ok(vec![q.collector().expect("collected").clone()])
        })
        .unwrap();
        for (stream, values) in &feed {
            se.push(stream, values.clone()).unwrap();
        }
        se.advance_to(Timestamp::from_secs(3600)).unwrap();
        se.flush().unwrap();
        let got = key_rows(se.take_output(0).unwrap());
        assert_eq!(got, want, "heartbeat expiry diverged at N={shards}");
        assert_eq!(
            se.low_watermark(),
            Timestamp::from_secs(3600),
            "heartbeat must advance every shard"
        );
        se.stop().unwrap();
    }
}
