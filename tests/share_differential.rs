//! Shared-vs-independent differential suite: every query registered
//! under shared execution (`Engine::set_shared_execution(true)`) must
//! produce output byte-identical to the same query running as an
//! independent chain — for the paper's E1 (dedup), E6 (pairing-mode
//! `SEQ`, all four modes) and E10 (star sequence) workloads, on a single
//! engine and through a [`ShardedEngine`] at N ∈ {1, 2, 4, 8}, including
//! heartbeat-driven expiry and mid-run deregistration of one of two
//! sharing queries.
//!
//! Comparison key: `(values, ts)` in emission order, exactly like the
//! shard differential suite.

use eslev::prelude::*;
use eslev::rfid::scenario::{dedup, qc_line};
use eslev_lang::shared_fingerprint;

type Row = (Vec<Value>, Timestamp);

fn key_rows(rows: Vec<Tuple>) -> Vec<Row> {
    rows.into_iter()
        .map(|t| (t.values().to_vec(), t.ts()))
        .collect()
}

/// Register every query on one engine (shared or independent), feed,
/// optionally fire a heartbeat, and return per-query output.
fn run_single(
    share: bool,
    ddl: &str,
    queries: &[&str],
    feed: &[(String, Vec<Value>)],
    heartbeat: Option<Timestamp>,
) -> Vec<Vec<Row>> {
    let (outs, _) = run_single_engine(share, ddl, queries, feed, heartbeat);
    outs
}

fn run_single_engine(
    share: bool,
    ddl: &str,
    queries: &[&str],
    feed: &[(String, Vec<Value>)],
    heartbeat: Option<Timestamp>,
) -> (Vec<Vec<Row>>, Engine) {
    let mut engine = Engine::new();
    engine.set_shared_execution(share);
    execute_script(&mut engine, ddl).expect("ddl plans");
    let collectors: Vec<Collector> = queries
        .iter()
        .map(|q| {
            execute(&mut engine, q)
                .expect("query plans")
                .collector()
                .expect("collected")
                .clone()
        })
        .collect();
    for (stream, values) in feed {
        engine.push(stream, values.clone()).expect("feed");
    }
    if let Some(ts) = heartbeat {
        engine.advance_to(ts).expect("heartbeat");
    }
    (
        collectors.into_iter().map(|c| key_rows(c.take())).collect(),
        engine,
    )
}

/// The same queries through the shard router at `shards` workers.
fn run_sharded(
    shards: usize,
    share: bool,
    ddl: &str,
    queries: &[&str],
    feed: &[(String, Vec<Value>)],
    heartbeat: Option<Timestamp>,
) -> Vec<Vec<Row>> {
    let ddl = ddl.to_string();
    let queries: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
    let n = queries.len();
    let mut se = ShardedEngine::build(shards, 256, ShardSpec::new(), move |e| {
        e.set_shared_execution(share);
        execute_script(e, &ddl)?;
        let mut cs = Vec::with_capacity(queries.len());
        for q in &queries {
            cs.push(execute(e, q)?.collector().expect("collected").clone());
        }
        Ok(cs)
    })
    .expect("sharded build");
    for (stream, values) in feed {
        se.push(stream, values.clone()).expect("route");
    }
    if let Some(ts) = heartbeat {
        se.advance_to(ts).expect("heartbeat");
    }
    se.flush().expect("flush");
    let outs = (0..n)
        .map(|slot| key_rows(se.take_output(slot).expect("slot")))
        .collect();
    se.stop().expect("clean stop");
    outs
}

/// The core assertion: shared == independent per query, single and
/// sharded, and the shared engine really fused down to `want_chains`
/// physical chains with memoization doing work when more than one
/// query subscribes.
fn assert_share_differential(
    name: &str,
    ddl: &str,
    queries: &[&str],
    feed: &[(String, Vec<Value>)],
    heartbeat: Option<Timestamp>,
    want_chains: usize,
) {
    let want = run_single(false, ddl, queries, feed, heartbeat);
    assert!(
        want.iter().any(|rows| !rows.is_empty()),
        "{name}: reference output must be non-trivial"
    );
    let (got, engine) = run_single_engine(true, ddl, queries, feed, heartbeat);
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            g, w,
            "{name}: shared output of query #{i} diverged from its independent chain"
        );
    }
    let stats = engine.shared_stats();
    assert_eq!(
        stats.len(),
        want_chains,
        "{name}: expected {want_chains} shared chains, got {:?}",
        stats.iter().map(|s| s.label.clone()).collect::<Vec<_>>()
    );
    if queries.len() > want_chains {
        assert!(
            stats.iter().any(|s| s.memo_hits > 0),
            "{name}: sibling subscribers should have produced memo hits"
        );
        assert!(
            stats.iter().any(|s| s.subscribers.len() > 1),
            "{name}: at least one chain should carry multiple subscribers"
        );
    }
    for shards in [1usize, 2, 4, 8] {
        let got = run_sharded(shards, true, ddl, queries, feed, heartbeat);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g, w,
                "{name}: sharded+shared output of query #{i} at N={shards} diverged"
            );
        }
    }
}

// ------------------------------------------------------------------ E1

const E1_DDL: &str = "
    CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);";

/// E1 dedup phrased with `aliases` for the outer/inner bindings — the
/// statements below are fingerprint-equal modulo alias renames.
fn e1_query(outer: &str, inner: &str) -> String {
    format!(
        "SELECT * FROM readings AS {outer}
         WHERE NOT EXISTS
           (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS {inner}
            WHERE {inner}.reader_id = {outer}.reader_id AND {inner}.tag_id = {outer}.tag_id)"
    )
}

fn e1_feed(seed: u64) -> Vec<(String, Vec<Value>)> {
    let w = dedup::generate(&dedup::DedupConfig {
        presences: 150,
        duplicate_prob: 0.6,
        seed,
        ..dedup::DedupConfig::default()
    });
    w.readings
        .iter()
        .map(|r| ("readings".to_string(), r.to_values()))
        .collect()
}

#[test]
fn e1_dedup_shared_equals_independent() {
    let q1 = e1_query("r1", "r2");
    let q2 = e1_query("x", "y");
    let q3 = e1_query("outer_r", "inner_r");
    assert_share_differential(
        "E1 dedup x3",
        E1_DDL,
        &[&q1, &q2, &q3],
        &e1_feed(1),
        None,
        1,
    );
}

#[test]
fn e1_different_predicates_do_not_fuse() {
    // A projection-only difference shares the dedup core is NOT the case
    // for fused shapes: dedup canon includes the select items, and a
    // different outer predicate is a different chain entirely.
    let q1 = e1_query("r1", "r2");
    let q2 = "SELECT * FROM readings AS a
         WHERE a.reader_id = 'gate-reader' AND NOT EXISTS
           (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS b
            WHERE b.reader_id = a.reader_id AND b.tag_id = a.tag_id)"
        .to_string();
    assert_share_differential(
        "E1 distinct predicates",
        E1_DDL,
        &[&q1, &q2],
        &e1_feed(7),
        None,
        2,
    );
}

#[test]
fn transducer_residuals_share_one_filter_chain() {
    // Same WHERE, different SELECT lists: the Select core fuses, the
    // projections stay per-query as residuals.
    let q1 = "SELECT tag_id FROM readings WHERE reader_id = 'gate-reader'";
    let q2 = "SELECT read_time, tag_id FROM readings WHERE reader_id = 'gate-reader'";
    // Output aliases and FROM aliases are cosmetic; qualification
    // (`r.reader_id` vs `reader_id`) is conservatively significant.
    let q3 = "SELECT tag_id AS t FROM readings AS r WHERE reader_id = 'gate-reader'";
    assert_share_differential(
        "transducer residuals",
        E1_DDL,
        &[q1, q2, q3],
        &e1_feed(3),
        None,
        1,
    );
}

// ------------------------------------------------------------------ E6

const E6_DDL: &str = "
    CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);";

fn e6_feed(seed: u64) -> Vec<(String, Vec<Value>)> {
    let w = qc_line::generate(&qc_line::QcConfig {
        products: 80,
        seed,
        ..qc_line::QcConfig::default()
    });
    let feeds: Vec<(String, Vec<Reading>)> = w
        .feeds
        .iter()
        .enumerate()
        .map(|(i, f)| (format!("c{}", i + 1), f.clone()))
        .collect();
    merge_feeds(feeds)
        .into_iter()
        .map(|item| (item.stream, item.reading.to_values()))
        .collect()
}

#[test]
fn e6_all_pairing_modes_shared_equals_independent() {
    // Two alias-renamed copies of the E6 detector per pairing mode; each
    // mode is its own chain (the mode is part of the canonical form).
    for mode in ["RECENT", "CHRONICLE", "UNRESTRICTED", "CONSECUTIVE"] {
        let q1 = format!(
            "SELECT C1.tagid, C4.tagtime FROM C1, C2, C3, C4
             WHERE SEQ(C1, C2, C3, C4) MODE {mode}
             AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid"
        );
        let q2 = format!(
            "SELECT a.tagid, d.tagtime FROM C1 AS a, C2 AS b, C3 AS c, C4 AS d
             WHERE SEQ(a, b, c, d) MODE {mode}
             AND a.tagid=b.tagid AND a.tagid=c.tagid AND a.tagid=d.tagid"
        );
        assert_share_differential(
            &format!("E6 {mode}"),
            E6_DDL,
            &[&q1, &q2],
            &e6_feed(3),
            None,
            1,
        );
    }
}

// ----------------------------------------------------------------- E10

const E10_DDL: &str = "
    CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);";

fn e10_feed(tags: usize, runs_per_tag: usize, run_len: usize) -> Vec<(String, Vec<Value>)> {
    let mut feed = Vec::new();
    let mut ts = 0u64;
    for _run in 0..runs_per_tag {
        for step in 0..=run_len {
            for tag in 0..tags {
                ts += 1;
                let stream = if step < run_len { "r1" } else { "r2" };
                feed.push((
                    stream.to_string(),
                    vec![
                        Value::str("rd"),
                        Value::str(format!("tag-{tag}")),
                        Value::Ts(Timestamp::from_secs(ts)),
                    ],
                ));
            }
        }
    }
    feed
}

#[test]
fn e10_star_sequence_shared_equals_independent() {
    let q1 = "SELECT COUNT(R1*), R2.tagid FROM R1, R2
              WHERE SEQ(R1*, R2) MODE CHRONICLE AND R1.tagid = R2.tagid";
    let q2 = "SELECT COUNT(p*), q.tagid FROM R1 AS p, R2 AS q
              WHERE SEQ(p*, q) MODE CHRONICLE AND p.tagid = q.tagid";
    assert_share_differential("E10 star", E10_DDL, &[q1, q2], &e10_feed(7, 6, 3), None, 1);
}

/// Active expiration through the shared chain: a heartbeat-driven
/// timeout must reach every subscriber exactly as it reaches an
/// independent chain.
#[test]
fn e10_heartbeat_expiry_shared_equals_independent() {
    let q1 = "SELECT COUNT(R1*), R2.tagid FROM R1, R2
              WHERE SEQ(R1*, R2) MODE CHRONICLE AND R1.tagid = R2.tagid";
    let q2 = "SELECT COUNT(u*), v.tagid FROM R1 AS u, R2 AS v
              WHERE SEQ(u*, v) MODE CHRONICLE AND u.tagid = v.tagid";
    assert_share_differential(
        "E10 heartbeat",
        E10_DDL,
        &[q1, q2],
        &e10_feed(5, 2, 4),
        Some(Timestamp::from_secs(3600)),
        1,
    );
}

// ------------------------------------------------------ deregistration

/// Deregistering one of two sharing queries mid-run must leave the
/// survivor's output identical to an uninterrupted independent chain —
/// the shared core's state stays alive for the survivor.
#[test]
fn mid_run_deregistration_keeps_survivor_intact() {
    let q1 = e1_query("r1", "r2");
    let q2 = e1_query("x", "y");
    let feed = e1_feed(5);
    let half = feed.len() / 2;

    // Reference: q1 alone, independent, fed everything.
    let want = run_single(false, E1_DDL, &[&q1], &feed, None).remove(0);

    let mut engine = Engine::new();
    engine.set_shared_execution(true);
    execute_script(&mut engine, E1_DDL).unwrap();
    let keep = execute(&mut engine, &q1).unwrap();
    let keep_rows = keep.collector().unwrap().clone();
    let ExecOutcome::Collected(victim_id, victim_rows) = execute(&mut engine, &q2).unwrap() else {
        panic!("bare SELECT collects")
    };
    assert_eq!(
        engine.shared_stats().len(),
        1,
        "both queries should share one chain"
    );
    for (stream, values) in &feed[..half] {
        engine.push(stream, values.clone()).unwrap();
    }
    let victim_prefix = key_rows(victim_rows.take());
    engine.deregister_query(victim_id);
    for (stream, values) in &feed[half..] {
        engine.push(stream, values.clone()).unwrap();
    }
    assert_eq!(
        key_rows(keep_rows.take()),
        want,
        "survivor diverged after its sibling deregistered"
    );
    assert!(
        !victim_prefix.is_empty(),
        "the deregistered query should have emitted before leaving"
    );
    assert!(
        victim_rows.take().is_empty(),
        "a deregistered query must stop emitting"
    );
    let stats = engine.shared_stats();
    assert_eq!(stats[0].active_subscribers, 1, "one survivor remains");
    assert_eq!(stats[0].subscribers.len(), 2, "history keeps both names");
}

// ---------------------------------------------------------- fingerprint

/// The registered chains really correspond to the statements'
/// fingerprints: EXPLAIN surfaces `shared_by` with both query names.
#[test]
fn explain_lists_shared_subscribers() {
    let mut engine = Engine::new();
    engine.set_shared_execution(true);
    execute_script(&mut engine, E1_DDL).unwrap();
    let q1 = e1_query("r1", "r2");
    let q2 = e1_query("x", "y");
    execute(&mut engine, &q1).unwrap();
    execute(&mut engine, &q2).unwrap();
    let s = eslev_lang::explain(&engine, &q1).unwrap();
    assert!(s.contains("shared: fingerprint=0x"), "{s}");
    assert!(
        s.contains("shared_by=[dedup:readings, dedup:readings#1]"),
        "{s}"
    );

    // And the two statements really carry the same fingerprint while a
    // predicate change breaks it.
    let parse = |sql: &str| {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!("select")
        };
        let naive = eslev_lang::build_logical(&engine, &sel).unwrap();
        let (opt, _) = eslev_lang::rewrite_logical(&engine, &sel, naive).unwrap();
        shared_fingerprint(&sel, &opt)
    };
    let f1 = parse(&q1);
    let f2 = parse(&q2);
    assert_eq!(f1.hash, f2.hash);
    assert_eq!(f1.canon, f2.canon);
    let f3 = parse("SELECT tag_id FROM readings WHERE reader_id = 'z'");
    assert_ne!(f1.canon, f3.canon);
}
