//! Cross-crate integration tests: language → engine → temporal operators
//! → RFID workloads, checked against scenario ground truth.

use eslev::prelude::*;
use eslev::rfid::scenario::{clinic, dedup, door, packing, qc_line};

/// Raw readings are cleaned by Example 1's transducer, and the *cleaned*
/// stream feeds Example 7's containment query — a two-stage cascade
/// through a derived stream, exactly the composition §2 of the paper
/// advocates.
#[test]
fn dedup_then_containment_cascade() {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM R1_RAW (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         INSERT INTO R1
         SELECT * FROM R1_RAW AS a
         WHERE NOT EXISTS
           (SELECT * FROM TABLE( R1_RAW OVER (RANGE 200 MILLISECONDS PRECEDING CURRENT)) AS b
            WHERE b.readerid = a.readerid AND b.tagid = a.tagid);",
    )
    .unwrap();
    let q = execute(
        &mut engine,
        "SELECT COUNT(R1*), R2.tagid
         FROM R1, R2
         WHERE SEQ(R1*, R2) MODE CHRONICLE
         AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
         AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS",
    )
    .unwrap();
    let out = q.collector().unwrap().clone();

    // One packing round with duplicated product reads (each product read
    // twice, 100 ms apart — inside the dedup window, outside nothing).
    let reading = |tag: &str, ms: u64| {
        vec![
            Value::str("rdr"),
            Value::str(tag),
            Value::Ts(Timestamp::from_millis(ms)),
        ]
    };
    for (tag, ms) in [
        ("p1", 0u64),
        ("p1", 100),
        ("p2", 500),
        ("p2", 600),
        ("p3", 900),
    ] {
        engine.push("r1_raw", reading(tag, ms)).unwrap();
    }
    engine.push("r2", reading("case", 2000)).unwrap();
    let rows = out.take();
    assert_eq!(rows.len(), 1);
    // Without dedup the count would be 5; the cascade yields 3.
    assert_eq!(rows[0].value(0), &Value::Int(3));
    assert_eq!(rows[0].value(1), &Value::str("case"));
}

/// The §3.1.1 worked example across all four modes *through the language
/// front-end*, matching the paper's table of results exactly.
#[test]
fn worked_example_all_modes_via_sql() {
    let counts: Vec<(PairingMode, usize)> = PairingMode::ALL
        .iter()
        .map(|mode| {
            let mut engine = Engine::new();
            execute_script(
                &mut engine,
                "CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                 CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                 CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                 CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
            )
            .unwrap();
            let q = execute(
                &mut engine,
                &format!(
                    "SELECT C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
                     FROM C1, C2, C3, C4
                     WHERE SEQ(C1, C2, C3, C4) MODE {mode}"
                ),
            )
            .unwrap();
            let rows = q.collector().unwrap().clone();
            for (port, reading) in qc_line::worked_history() {
                let stream = format!("c{}", port + 1);
                engine
                    .push(
                        &stream,
                        vec![
                            Value::str(&reading.reader),
                            Value::str(&reading.tag),
                            Value::Ts(reading.ts),
                        ],
                    )
                    .unwrap();
            }
            (*mode, rows.len())
        })
        .collect();
    assert_eq!(
        counts,
        vec![
            (PairingMode::Unrestricted, 4),
            (PairingMode::Recent, 1),
            (PairingMode::Chronicle, 1),
            (PairingMode::Consecutive, 0),
        ]
    );
}

/// The QC line with dropouts: partitioned RECENT detection finds exactly
/// the completed products.
#[test]
fn qc_line_completions_match_truth() {
    let cfg = qc_line::QcConfig {
        products: 150,
        ..qc_line::QcConfig::default()
    };
    let w = qc_line::generate(&cfg);
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )
    .unwrap();
    let q = execute(
        &mut engine,
        "SELECT C1.tagid, C4.tagtime FROM C1, C2, C3, C4
         WHERE SEQ(C1, C2, C3, C4) MODE RECENT
         AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid",
    )
    .unwrap();
    let rows = q.collector().unwrap().clone();
    // Merge the four feeds into one global replay.
    let feeds: Vec<(String, Vec<Reading>)> = w
        .feeds
        .iter()
        .enumerate()
        .map(|(i, f)| (format!("c{}", i + 1), f.clone()))
        .collect();
    for item in merge_feeds(feeds) {
        engine
            .push(
                &item.stream,
                vec![
                    Value::str(&item.reading.reader),
                    Value::str(&item.reading.tag),
                    Value::Ts(item.reading.ts),
                ],
            )
            .unwrap();
    }
    let got: std::collections::BTreeSet<String> = rows
        .take()
        .iter()
        .map(|t| t.value(0).as_str().unwrap().to_string())
        .collect();
    let want: std::collections::BTreeSet<String> =
        w.completed.iter().map(|(tag, _)| tag.clone()).collect();
    assert_eq!(got, want);
}

/// Clinic violations through the language equal the generator's truth,
/// including punctuation-driven timeouts (active expiration).
#[test]
fn clinic_violations_match_truth() {
    let cfg = clinic::ClinicConfig {
        runs: 120,
        ..clinic::ClinicConfig::default()
    };
    let w = clinic::generate(&cfg);
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM A1 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A2 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A3 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )
    .unwrap();
    let q = execute(
        &mut engine,
        "SELECT A1.tagid, A2.tagid, A3.tagid
         FROM A1, A2, A3
         WHERE EXCEPTION_SEQ(A1, A2, A3)
         OVER [1 HOURS FOLLOWING A1]",
    )
    .unwrap();
    let alerts = q.collector().unwrap().clone();
    let streams = ["a1", "a2", "a3"];
    for (port, reading) in &w.feed {
        engine
            .push(
                streams[*port],
                vec![
                    Value::str(&reading.reader),
                    Value::str(&reading.tag),
                    Value::Ts(reading.ts),
                ],
            )
            .unwrap();
    }
    let horizon = w.feed.last().unwrap().1.ts + Duration::from_hours(2);
    engine.advance_to(horizon).unwrap();
    assert_eq!(alerts.len(), w.violations);
}

/// The concurrent driver produces byte-identical results to the
/// single-threaded engine on the door-security workload.
#[test]
fn driver_matches_inline_results() {
    let cfg = door::DoorConfig {
        item_exits: 120,
        ..door::DoorConfig::default()
    };
    let w = door::generate(&cfg);

    let build = |engine: &mut Engine| -> Collector {
        execute(
            engine,
            "CREATE STREAM tag_readings (tagid VARCHAR, tagtype VARCHAR, tagtime TIMESTAMP)",
        )
        .unwrap();
        let q = execute(
            engine,
            "SELECT item.tagid
             FROM tag_readings AS item
             WHERE item.tagtype = 'item' AND NOT EXISTS
               (SELECT * FROM tag_readings AS person
                OVER [1 MINUTES PRECEDING AND FOLLOWING item]
                WHERE person.tagtype = 'person')",
        )
        .unwrap();
        q.collector().unwrap().clone()
    };

    // Inline.
    let mut inline = Engine::new();
    let inline_out = build(&mut inline);
    for r in &w.readings {
        inline.push("tag_readings", r.to_values()).unwrap();
    }
    let horizon = w.readings.last().unwrap().ts + Duration::from_mins(5);
    inline.advance_to(horizon).unwrap();

    // Through the threaded driver.
    let mut threaded = Engine::new();
    let threaded_out = build(&mut threaded);
    let driver = EngineDriver::spawn(threaded, 256).unwrap();
    let input = driver.input();
    for r in &w.readings {
        input.push("tag_readings", r.to_values()).unwrap();
    }
    input.advance_to(horizon).unwrap();
    driver.stop().unwrap();

    let a: Vec<String> = inline_out
        .take()
        .iter()
        .map(|t| t.value(0).as_str().unwrap().to_string())
        .collect();
    let b: Vec<String> = threaded_out
        .take()
        .iter()
        .map(|t| t.value(0).as_str().unwrap().to_string())
        .collect();
    assert_eq!(a, b);
    assert_eq!(a.len(), w.thefts.len());
}

/// Packing detection at scale: CHRONICLE containment reproduces every
/// case's product count, including under Figure 1(b) overlap.
#[test]
fn packing_detection_is_exact() {
    for overlap in [false, true] {
        let cfg = packing::PackingConfig {
            cases: 120,
            overlap,
            seed: 9,
            ..packing::PackingConfig::default()
        };
        let w = packing::generate(&cfg);
        let mut detector = Detector::new(DetectorConfig::seq(
            SeqPattern::new(
                vec![
                    Element::star(0).with_star_gap(cfg.t1),
                    Element::new(1).with_max_gap(cfg.t0),
                ],
                None,
                PairingMode::Chronicle,
            )
            .unwrap(),
        ))
        .unwrap();
        let feed = merge_feeds(vec![
            ("p".into(), w.products.clone()),
            ("c".into(), w.cases.clone()),
        ]);
        let mut detected: Vec<(String, usize)> = Vec::new();
        for (seq, item) in feed.into_iter().enumerate() {
            let port = usize::from(item.stream == "c");
            let t = Tuple::new(item.reading.to_values(), item.reading.ts, seq as u64);
            for o in detector.on_tuple(port, &t).unwrap() {
                if let DetectorOutput::Match(m) = o {
                    detected.push((
                        m.binding(1).first().value(1).as_str().unwrap().to_string(),
                        m.binding(0).count(),
                    ));
                }
            }
        }
        let want: Vec<(String, usize)> = w
            .truth
            .iter()
            .map(|t| (t.case_tag.clone(), t.product_tags.len()))
            .collect();
        assert_eq!(detected, want, "overlap={overlap}");
    }
}

/// Dedup at scale through the language front-end matches the generator's
/// presence count exactly.
#[test]
fn dedup_scale_matches_truth() {
    let w = dedup::generate(&dedup::DedupConfig {
        presences: 3000,
        duplicate_prob: 0.6,
        ..dedup::DedupConfig::default()
    });
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         CREATE STREAM cleaned_readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         INSERT INTO cleaned_readings
         SELECT * FROM readings AS r1
         WHERE NOT EXISTS
           (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
            WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);",
    )
    .unwrap();
    for r in &w.readings {
        engine.push("readings", r.to_values()).unwrap();
    }
    assert_eq!(
        engine.stream_pushed("cleaned_readings").unwrap() as usize,
        w.unique_presences
    );
}

/// Concurrent multi-staff clinic runs: the equality conjuncts
/// `A1.staff = A2.staff = A3.staff` partition the exception detector so
/// interleaved staff workflows don't break each other.
#[test]
fn partitioned_exception_detection_multi_staff() {
    let cfg = clinic::ClinicConfig {
        runs: 40,
        ..clinic::ClinicConfig::default()
    };
    let w = clinic::generate_concurrent(&cfg, 5);
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM A1 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A2 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A3 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )
    .unwrap();
    let q = execute(
        &mut engine,
        "SELECT A1.staff, A1.tagid, A2.tagid, A3.tagid
         FROM A1, A2, A3
         WHERE EXCEPTION_SEQ(A1, A2, A3)
         OVER [1 HOURS FOLLOWING A1]
         AND A1.staff = A2.staff AND A1.staff = A3.staff",
    )
    .unwrap();
    let alerts = q.collector().unwrap().clone();
    let streams = ["a1", "a2", "a3"];
    for (port, reading) in &w.feed {
        engine
            .push(
                streams[*port],
                vec![
                    Value::str(&reading.reader),
                    Value::str(&reading.tag),
                    Value::Ts(reading.ts),
                ],
            )
            .unwrap();
    }
    engine
        .advance_to(w.feed.last().unwrap().1.ts + Duration::from_hours(2))
        .unwrap();
    assert_eq!(alerts.len(), w.violations);

    // Control: WITHOUT the staff equality, interleaved staff break each
    // other's runs and the alert count is wrong (demonstrating why the
    // partition matters).
    let mut engine2 = Engine::new();
    execute_script(
        &mut engine2,
        "CREATE STREAM A1 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A2 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A3 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )
    .unwrap();
    let q2 = execute(
        &mut engine2,
        "SELECT A1.tagid, A2.tagid, A3.tagid
         FROM A1, A2, A3
         WHERE EXCEPTION_SEQ(A1, A2, A3)
         OVER [1 HOURS FOLLOWING A1]",
    )
    .unwrap();
    let alerts2 = q2.collector().unwrap().clone();
    for (port, reading) in &w.feed {
        engine2
            .push(
                streams[*port],
                vec![
                    Value::str(&reading.reader),
                    Value::str(&reading.tag),
                    Value::Ts(reading.ts),
                ],
            )
            .unwrap();
    }
    engine2
        .advance_to(w.feed.last().unwrap().1.ts + Duration::from_hours(2))
        .unwrap();
    assert_ne!(
        alerts2.len(),
        w.violations,
        "unpartitioned detection must misfire on interleaved staff"
    );
}

/// Ad-hoc snapshot queries (§2.1): the physician's "where is the patient
/// now" question against a materialized stream window — no persistent
/// table involved.
#[test]
fn ad_hoc_snapshot_patient_location() {
    let mut engine = Engine::new();
    execute(
        &mut engine,
        "CREATE STREAM tag_locations (readerid VARCHAR, tid VARCHAR, tagtime TIMESTAMP, loc VARCHAR)",
    )
    .unwrap();
    engine
        .materialize(
            "tag_locations",
            WindowExtent::Preceding(Duration::from_mins(30)),
        )
        .unwrap();
    let w = eslev::rfid::scenario::tracking::generate(&Default::default());
    for r in &w.readings {
        engine.push("tag_locations", r.to_values()).unwrap();
    }
    // Ask about a specific object's latest sightings.
    let rows = ad_hoc(
        &engine,
        "SELECT loc, tagtime FROM tag_locations WHERE tid = 'obj-3'",
    )
    .unwrap();
    assert!(!rows.is_empty());
    // The snapshot only holds the last 30 minutes.
    let now = engine.now();
    assert!(rows
        .iter()
        .all(|r| r.ts() >= now.saturating_sub(Duration::from_mins(30))));
    // And a grouped ad-hoc aggregate over the same snapshot.
    let counts = ad_hoc(
        &engine,
        "SELECT loc, count(tid) FROM tag_locations GROUP BY loc",
    )
    .unwrap();
    let total: i64 = counts.iter().map(|r| r.value(1).as_int().unwrap()).sum();
    let all = ad_hoc(&engine, "SELECT * FROM tag_locations").unwrap();
    assert_eq!(total as usize, all.len());
}

/// Reader timestamp jitter produces out-of-order arrivals; the engine's
/// bounded-disorder tolerance restores order at the edge so Example 1's
/// dedup still computes the exact answer.
#[test]
fn jittered_readers_with_disorder_tolerance() {
    use eslev::rfid::prelude::*;
    let mut reader = SimReader::new(
        "gate",
        ReaderProfile {
            duplicate_prob: 0.4,
            miss_prob: 0.0,
            reread_period: Duration::from_millis(250),
            jitter: Duration::from_millis(40),
        },
        11,
    );
    // Physical presences 2 s apart; each burst's reads carry ±40 ms
    // jitter, so consecutive bursts can interleave at the edges.
    let mut feed: Vec<Reading> = Vec::new();
    for i in 0..500u64 {
        feed.extend(reader.observe(
            &format!("tag-{}", i % 25),
            Timestamp::from_millis(1000 + i * 2000),
        ));
    }
    // NOT sorted: deliver in generation order (jitter leaks through).
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         CREATE STREAM cleaned_readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         INSERT INTO cleaned_readings
         SELECT * FROM readings AS r1
         WHERE NOT EXISTS
           (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
            WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);",
    )
    .unwrap();
    engine
        .set_disorder_tolerance("readings", Duration::from_millis(200))
        .unwrap();
    for r in &feed {
        engine.push("readings", r.to_values()).unwrap();
    }
    engine.flush_disorder().unwrap();
    assert_eq!(engine.stream_pushed("cleaned_readings").unwrap(), 500);
}
