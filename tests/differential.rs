//! Differential testing: the same detection computed through the
//! language front-end and through the direct core API must agree, across
//! randomized workloads (seed sweep — deterministic per seed).

use eslev::prelude::*;
use eslev::rfid::scenario::{packing, qc_line};

/// Containment (Example 7): SQL plan vs hand-built detector.
#[test]
fn containment_sql_equals_direct_api() {
    for seed in 1..=8u64 {
        let cfg = packing::PackingConfig {
            cases: 60,
            overlap: seed % 2 == 0,
            seed,
            ..packing::PackingConfig::default()
        };
        let w = packing::generate(&cfg);
        let feed = merge_feeds(vec![
            ("r1".into(), w.products.clone()),
            ("r2".into(), w.cases.clone()),
        ]);

        // Through SQL.
        let mut engine = Engine::new();
        execute_script(
            &mut engine,
            "CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
             CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
        )
        .unwrap();
        let q = execute(
            &mut engine,
            "SELECT COUNT(R1*), R2.tagid FROM R1, R2
             WHERE SEQ(R1*, R2) MODE CHRONICLE
             AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
             AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS",
        )
        .unwrap();
        let collected = q.collector().unwrap().clone();
        for item in &feed {
            engine.push(&item.stream, item.reading.to_values()).unwrap();
        }
        let via_sql: Vec<(i64, String)> = collected
            .take()
            .iter()
            .map(|r| {
                (
                    r.value(0).as_int().unwrap(),
                    r.value(1).as_str().unwrap().to_string(),
                )
            })
            .collect();

        // Through the core API.
        let pat = SeqPattern::new(
            vec![
                Element::star(0).with_star_gap(Duration::from_secs(1)),
                Element::new(1).with_max_gap(Duration::from_secs(5)),
            ],
            None,
            PairingMode::Chronicle,
        )
        .unwrap();
        let mut det = Detector::new(DetectorConfig::seq(pat)).unwrap();
        let mut via_api = Vec::new();
        for (i, item) in feed.iter().enumerate() {
            let port = usize::from(item.stream == "r2");
            let t = Tuple::new(item.reading.to_values(), item.reading.ts, i as u64);
            for o in det.on_tuple(port, &t).unwrap() {
                if let DetectorOutput::Match(m) = o {
                    via_api.push((
                        m.binding(0).count() as i64,
                        m.binding(1).first().value(1).as_str().unwrap().to_string(),
                    ));
                }
            }
        }
        assert_eq!(via_sql, via_api, "seed {seed}");
        assert_eq!(via_sql.len(), w.truth.len(), "seed {seed}");
    }
}

/// QC-line completion (Example 6): SQL plan (partitioned RECENT) vs a
/// hand-built partitioned detector.
#[test]
fn qc_sql_equals_direct_api() {
    for seed in 1..=5u64 {
        let cfg = qc_line::QcConfig {
            products: 80,
            seed,
            ..qc_line::QcConfig::default()
        };
        let w = qc_line::generate(&cfg);
        let feeds: Vec<(String, Vec<Reading>)> = w
            .feeds
            .iter()
            .enumerate()
            .map(|(i, f)| (format!("c{}", i + 1), f.clone()))
            .collect();
        let feed = merge_feeds(feeds);

        let mut engine = Engine::new();
        execute_script(
            &mut engine,
            "CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
             CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
             CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
             CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
        )
        .unwrap();
        let q = execute(
            &mut engine,
            "SELECT C1.tagid FROM C1, C2, C3, C4
             WHERE SEQ(C1, C2, C3, C4) MODE RECENT
             AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid",
        )
        .unwrap();
        let collected = q.collector().unwrap().clone();
        for item in &feed {
            engine.push(&item.stream, item.reading.to_values()).unwrap();
        }
        let via_sql: Vec<String> = collected
            .take()
            .iter()
            .map(|r| r.value(0).as_str().unwrap().to_string())
            .collect();

        let pat = SeqPattern::new(
            (0..4).map(Element::new).collect(),
            None,
            PairingMode::Recent,
        )
        .unwrap();
        let cfg2 = DetectorConfig::seq(pat).with_partition(vec![Expr::col(1); 4]);
        let mut det = Detector::new(cfg2).unwrap();
        let mut via_api = Vec::new();
        for (i, item) in feed.iter().enumerate() {
            let port: usize = item.stream[1..].parse::<usize>().unwrap() - 1;
            let t = Tuple::new(item.reading.to_values(), item.reading.ts, i as u64);
            for o in det.on_tuple(port, &t).unwrap() {
                if let DetectorOutput::Match(m) = o {
                    via_api.push(m.binding(0).first().value(1).as_str().unwrap().to_string());
                }
            }
        }
        assert_eq!(via_sql, via_api, "seed {seed}");
        // And both equal the generator's ground truth (as sets).
        let truth: std::collections::BTreeSet<&str> =
            w.completed.iter().map(|(t, _)| t.as_str()).collect();
        let got: std::collections::BTreeSet<&str> = via_sql.iter().map(|s| s.as_str()).collect();
        assert_eq!(got, truth, "seed {seed}");
    }
}
