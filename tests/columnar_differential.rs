//! Columnar-vs-row differential: an engine running the columnar batch
//! path (`set_columnar(true)`) must produce byte-identical query output
//! to the row-at-a-time engine on the same feed, at every batch size —
//! the row path is the semantic oracle, the columnar path is only an
//! execution strategy.
//!
//! Three paper workloads cover the operator classes: E1 (windowed NOT
//! EXISTS dedup — the columnar dedup kernel, including mid-batch window
//! expiry at batch 64/4096 since the feed strides ~0.4 s against a 1 s
//! window), E6 (multi-stream SEQ in every pairing mode — not columnar-
//! capable, exercising the capability gate and row fallback), and E10
//! (star SEQ with a COUNT aggregate). Each runs single-engine and
//! EPC-sharded at N ∈ {1, 2, 4, 8}, plus a disorder-perturbed E1 feed
//! through the reorder buffer.

use eslev::prelude::*;

const BATCH_SIZES: [usize; 4] = [1, 7, 64, 4096];

/// Deterministic LCG — same feed on every run, no external crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

type Row = (String, Vec<Value>);
type Out = Vec<(Vec<Value>, Timestamp)>;

fn strings(v: &[Tuple]) -> Out {
    v.iter().map(|t| (t.values().to_vec(), t.ts())).collect()
}

/// Run one single-engine arm: feed `rows` in `batch`-sized chunks,
/// optionally through a reorder buffer with `slack` of tolerance.
fn run_single(
    script: &str,
    query: &str,
    rows: &[Row],
    batch: usize,
    columnar: bool,
    slack: Option<Duration>,
) -> Out {
    let mut e = Engine::new();
    e.set_columnar(columnar);
    execute_script(&mut e, script).expect("script");
    if let Some(slack) = slack {
        let mut streams: Vec<&String> = rows.iter().map(|(s, _)| s).collect();
        streams.sort();
        streams.dedup();
        for s in streams {
            e.set_disorder_tolerance(s, slack).expect("tolerant stream");
        }
    }
    let out = execute(&mut e, query).expect("query");
    let c = out.collector().expect("bare SELECT collects").clone();
    for chunk in rows.chunks(batch) {
        e.push_batch(chunk.iter().cloned()).expect("push_batch");
    }
    if slack.is_some() {
        e.flush_disorder().expect("flush disorder");
    }
    strings(&c.take())
}

/// Run one sharded arm over `shards` worker engines and read the
/// deterministically merged output.
fn run_sharded(
    script: &str,
    query: &str,
    rows: &[Row],
    batch: usize,
    shards: usize,
    columnar: bool,
) -> Out {
    let mut se = ShardedEngine::build(shards, 1024, ShardSpec::new(), move |e| {
        e.set_columnar(columnar);
        Ok(vec![])
    })
    .expect("build");
    let script = script.to_string();
    let query = query.to_string();
    let (_, slots) = se
        .exec_with_outputs(move |e| {
            execute_script(e, &script)?;
            let out = execute(e, &query)?;
            let c = out.collector().expect("bare SELECT collects").clone();
            Ok(((), vec![c]))
        })
        .expect("register");
    for chunk in rows.chunks(batch) {
        se.push_batch(chunk.to_vec()).expect("push_batch");
    }
    se.flush().expect("flush");
    let got = strings(&se.take_output(slots[0]).expect("take"));
    se.stop().expect("stop");
    got
}

/// Assert columnar output equals row output, single-engine at every
/// batch size and sharded at N ∈ {1, 2, 4, 8}.
fn assert_columnar_equivalent(script: &str, query: &str, rows: &[Row], label: &str) {
    for batch in BATCH_SIZES {
        let row = run_single(script, query, rows, batch, false, None);
        let col = run_single(script, query, rows, batch, true, None);
        assert_eq!(row, col, "{label}: single, batch {batch} diverged");
        assert!(!row.is_empty(), "{label}: workload produced no output");
        for shards in [1usize, 2, 4, 8] {
            // One representative small and large batch per shard count
            // keeps the matrix tractable; batch 64 covers the mid-batch
            // expiry case on every N.
            if batch != 7 && batch != 64 {
                continue;
            }
            let row = run_sharded(script, query, rows, batch, shards, false);
            let col = run_sharded(script, query, rows, batch, shards, true);
            assert_eq!(row, col, "{label}: {shards} shards, batch {batch} diverged");
        }
    }
}

fn e1_script() -> &'static str {
    "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP)"
}

fn e1_query() -> &'static str {
    "SELECT * FROM readings AS r1
     WHERE NOT EXISTS
       (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
        WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)"
}

fn e1_rows(n: usize, seed: u64) -> Vec<Row> {
    let mut rng = Lcg(seed);
    let mut ts = 0u64;
    (0..n)
        .map(|_| {
            // ~40% duplicates: same (reader, tag) again within the window.
            if rng.below(5) >= 2 {
                ts += 400_000; // 0.4 s in micros
            }
            (
                "readings".to_string(),
                vec![
                    Value::str(format!("reader{}", rng.below(3)).as_str()),
                    Value::str(format!("tag{}", rng.below(8)).as_str()),
                    Value::Ts(Timestamp::from_micros(ts)),
                ],
            )
        })
        .collect()
}

/// E1: the columnar dedup kernel against the row oracle, with window
/// expirations landing mid-batch at 64 and 4096.
#[test]
fn e1_dedup_columnar_equals_row() {
    assert_columnar_equivalent(e1_script(), e1_query(), &e1_rows(600, 11), "E1 dedup");
}

/// E1 behind a selection: Select kernel feeding the dedup kernel in one
/// chain, so the selection bitmap and the dedup state interact.
#[test]
fn e1_selected_columnar_equals_row() {
    let query = "SELECT * FROM readings AS r1
     WHERE r1.reader_id <> 'reader1' AND NOT EXISTS
       (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
        WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)";
    assert_columnar_equivalent(e1_script(), query, &e1_rows(600, 17), "E1 select+dedup");
}

/// E6: three-stage SEQ with partition keys and a gap constraint, in all
/// four pairing modes. SEQ is not columnar-capable: this pins the
/// capability gate — the columnar engine must leave these queries on
/// the row path and produce identical output.
#[test]
fn e6_seq_all_modes_columnar_equals_row() {
    let script = "CREATE STREAM shelf (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM checkout (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM exits (tagid VARCHAR, tagtime TIMESTAMP)";
    let mut rng = Lcg(12);
    let mut ts = 0u64;
    let streams = ["shelf", "checkout", "exits"];
    let rows: Vec<Row> = (0..900)
        .map(|_| {
            ts += rng.below(30) + 1;
            (
                streams[rng.below(3) as usize].to_string(),
                vec![
                    Value::str(format!("tag{}", rng.below(12)).as_str()),
                    Value::Ts(Timestamp::from_secs(ts)),
                ],
            )
        })
        .collect();
    for mode in ["UNRESTRICTED", "RECENT", "CHRONICLE", "CONSECUTIVE"] {
        let query = format!(
            "SELECT s.tagid, x.tagtime FROM shelf AS s, checkout AS c, exits AS x
             WHERE SEQ(s, c, x) MODE {mode}
               AND s.tagid = c.tagid AND c.tagid = x.tagid
               AND x.tagtime - c.tagtime <= 120 SECONDS"
        );
        assert_columnar_equivalent(script, &query, &rows, &format!("E6 seq {mode}"));
    }
}

/// E10: star sequence with a COUNT aggregate in CHRONICLE mode.
#[test]
fn e10_star_columnar_equals_row() {
    let script = "CREATE STREAM scans (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM cases (tagid VARCHAR, tagtime TIMESTAMP)";
    let query = "SELECT COUNT(a*), b.tagid FROM scans AS a, cases AS b
         WHERE SEQ(a*, b) MODE CHRONICLE
           AND b.tagtime - LAST(a*).tagtime <= 30 SECONDS";
    let mut rng = Lcg(13);
    let mut ts = 0u64;
    let mut rows: Vec<Row> = Vec::new();
    for case in 0..80 {
        for i in 0..(rng.below(6) + 1) {
            ts += rng.below(5) + 1;
            rows.push((
                "scans".to_string(),
                vec![
                    Value::str(format!("item{case}-{i}").as_str()),
                    Value::Ts(Timestamp::from_secs(ts)),
                ],
            ));
        }
        ts += rng.below(5) + 1;
        rows.push((
            "cases".to_string(),
            vec![
                Value::str(format!("case{case}").as_str()),
                Value::Ts(Timestamp::from_secs(ts)),
            ],
        ));
    }
    assert_columnar_equivalent(script, query, &rows, "E10 star");
}

/// E1 under bounded disorder: perturb the feed by up to 0.8 s, let the
/// reorder buffer (slack 1 s ≥ the bound) restore order, and require
/// the columnar engine to match the row engine byte for byte — the
/// reorder buffer re-batches internally, so this covers the 1-tuple
/// release path through the columnar dispatch as well.
#[test]
fn e1_disordered_columnar_equals_row() {
    let rows = perturb_rows(e1_rows(400, 19), 7, Duration::from_micros(800_000));
    let slack = Some(Duration::from_secs(1));
    for batch in BATCH_SIZES {
        let row = run_single(e1_script(), e1_query(), &rows, batch, false, slack);
        let col = run_single(e1_script(), e1_query(), &rows, batch, true, slack);
        assert_eq!(row, col, "E1 disordered: batch {batch} diverged");
        assert!(!row.is_empty(), "E1 disordered: no output");
    }
}
