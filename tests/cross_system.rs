//! Cross-system consistency: the ESL-EV detectors against the baseline
//! comparators on identical feeds — the semantic backbone of experiment
//! E9 (the benchmark then measures cost; these tests pin agreement).

use eslev::baseline::prelude::*;
use eslev::prelude::*;

fn t(secs: u64, seq: u64) -> Tuple {
    Tuple::new(vec![Value::str("k")], Timestamp::from_secs(secs), seq)
}

/// Deterministic interleaved feed over `ports` streams.
fn feed(ports: usize, len: usize) -> Vec<(usize, Tuple)> {
    // Simple LCG so the feed is reproducible without pulling rand here.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut out = Vec::with_capacity(len);
    let mut ts = 0;
    for i in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let port = (state >> 33) as usize % ports;
        ts += 1 + ((state >> 20) % 3);
        out.push((port, t(ts, i as u64)));
    }
    out
}

/// UNRESTRICTED SEQ == RCEDA unrestricted == naive join, event for event,
/// on fixed-length patterns.
#[test]
fn unrestricted_agrees_with_both_baselines() {
    for ports in [2usize, 3, 4] {
        let data = feed(ports, 60);
        // ESL-EV detector.
        let pat = SeqPattern::new(
            (0..ports).map(Element::new).collect(),
            None,
            PairingMode::Unrestricted,
        )
        .unwrap();
        let mut det = Detector::new(DetectorConfig::seq(pat)).unwrap();
        let mut eslev_keys: Vec<Vec<u64>> = Vec::new();
        for (port, tu) in &data {
            for o in det.on_tuple(*port, tu).unwrap() {
                if let DetectorOutput::Match(m) = o {
                    eslev_keys.push(m.bindings.iter().map(|b| b.first().seq()).collect());
                }
            }
        }
        // RCEDA.
        let mut rceda =
            RcedaEngine::new(&EventExpr::seq_chain(ports), Context::Unrestricted, None).unwrap();
        let mut rceda_keys: Vec<Vec<u64>> = Vec::new();
        for (port, tu) in &data {
            for ev in rceda.on_tuple(*port, tu) {
                rceda_keys.push(ev.tuples.iter().map(|t| t.seq()).collect());
            }
        }
        // Naive join.
        let mut nj = NaiveJoinSeq::new(ports, None, None).unwrap();
        let mut nj_keys: Vec<Vec<u64>> = Vec::new();
        for (port, tu) in &data {
            for m in nj.on_tuple(*port, tu).unwrap() {
                nj_keys.push(m.iter().map(|t| t.seq()).collect());
            }
        }
        let norm = |mut v: Vec<Vec<u64>>| {
            v.sort();
            v
        };
        let (a, b, c) = (norm(eslev_keys), norm(rceda_keys), norm(nj_keys));
        assert_eq!(a, b, "ESL-EV vs RCEDA, {ports} ports");
        assert_eq!(a, c, "ESL-EV vs naive join, {ports} ports");
        assert!(!a.is_empty(), "feed produced no matches; weak test");
    }
}

/// RECENT agrees with RCEDA's recent consumption context on 2-element
/// sequences (where the Snoop-style semantics coincide).
#[test]
fn recent_agrees_with_rceda_recent() {
    let data = feed(2, 80);
    let pat = SeqPattern::new(
        vec![Element::new(0), Element::new(1)],
        None,
        PairingMode::Recent,
    )
    .unwrap();
    let mut det = Detector::new(DetectorConfig::seq(pat)).unwrap();
    let mut a: Vec<(u64, u64)> = Vec::new();
    for (port, tu) in &data {
        for o in det.on_tuple(*port, tu).unwrap() {
            if let DetectorOutput::Match(m) = o {
                a.push((m.binding(0).first().seq(), m.binding(1).first().seq()));
            }
        }
    }
    let mut rceda = RcedaEngine::new(&EventExpr::seq_chain(2), Context::Recent, None).unwrap();
    let mut b: Vec<(u64, u64)> = Vec::new();
    for (port, tu) in &data {
        for ev in rceda.on_tuple(*port, tu) {
            b.push((ev.tuples[0].seq(), ev.tuples[1].seq()));
        }
    }
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

/// CHRONICLE agrees with RCEDA's chronicle context on 2-element
/// sequences.
#[test]
fn chronicle_agrees_with_rceda_chronicle() {
    let data = feed(2, 80);
    let pat = SeqPattern::new(
        vec![Element::new(0), Element::new(1)],
        None,
        PairingMode::Chronicle,
    )
    .unwrap();
    let mut det = Detector::new(DetectorConfig::seq(pat)).unwrap();
    let mut a: Vec<(u64, u64)> = Vec::new();
    for (port, tu) in &data {
        for o in det.on_tuple(*port, tu).unwrap() {
            if let DetectorOutput::Match(m) = o {
                a.push((m.binding(0).first().seq(), m.binding(1).first().seq()));
            }
        }
    }
    let mut rceda = RcedaEngine::new(&EventExpr::seq_chain(2), Context::Chronicle, None).unwrap();
    let mut b: Vec<(u64, u64)> = Vec::new();
    for (port, tu) in &data {
        for ev in rceda.on_tuple(*port, tu) {
            b.push((ev.tuples[0].seq(), ev.tuples[1].seq()));
        }
    }
    assert_eq!(a, b);
}

/// Windowed detection: the ESL-EV detector with a PRECEDING window
/// equals the naive join with the same RANGE window (both UNRESTRICTED),
/// while RCEDA needs the post-hoc predicate *and* still retains stale
/// state — the architectural contrast of §1.
#[test]
fn windowed_equivalence_and_rceda_retention() {
    let data = feed(2, 100);
    let dur = Duration::from_secs(10);
    let pat = SeqPattern::new(
        vec![Element::new(0), Element::new(1)],
        Some(EventWindow::preceding(dur, 1)),
        PairingMode::Unrestricted,
    )
    .unwrap();
    let mut det = Detector::new(DetectorConfig::seq(pat)).unwrap();
    let mut nj = NaiveJoinSeq::new(2, None, Some(dur)).unwrap();
    let pred: RootPredicate = std::sync::Arc::new(move |i| i.end - i.start <= dur);
    let mut rceda =
        RcedaEngine::new(&EventExpr::seq_chain(2), Context::Unrestricted, Some(pred)).unwrap();

    let (mut a, mut b, mut c) = (0usize, 0usize, 0usize);
    for (port, tu) in &data {
        a += det
            .on_tuple(*port, tu)
            .unwrap()
            .iter()
            .filter(|o| o.as_match().is_some())
            .count();
        det.on_punctuation(tu.ts()).unwrap();
        b += nj.on_tuple(*port, tu).unwrap().len();
        c += rceda.on_tuple(*port, tu).len();
    }
    assert_eq!(a, b, "detector vs naive join under the same window");
    assert_eq!(a, c, "RCEDA post-hoc predicate finds the same events");
    // But RCEDA never frees the out-of-window state.
    assert!(
        rceda.retained() > det.retained() + nj.retained(),
        "rceda {} vs eslev {} + join {}",
        rceda.retained(),
        det.retained(),
        nj.retained()
    );
}

/// `a+ b` is detectable by the ESL-EV star operator but structurally
/// rejected by the join baseline — §2.2's central claim.
#[test]
fn star_patterns_beyond_joins() {
    // The join baseline cannot even be constructed per repetition; its
    // fixed arity is the point. Detect with SEQ(A*, B) and verify counts.
    let pat = SeqPattern::new(
        vec![Element::star(0), Element::new(1)],
        None,
        PairingMode::Chronicle,
    )
    .unwrap();
    let mut det = Detector::new(DetectorConfig::seq(pat)).unwrap();
    let mut counts = Vec::new();
    let mut seq = 0u64;
    let mut ts = 0u64;
    for run_len in [1usize, 3, 5, 2] {
        for _ in 0..run_len {
            ts += 1;
            det.on_tuple(0, &t(ts, seq)).unwrap();
            seq += 1;
        }
        ts += 1;
        for o in det.on_tuple(1, &t(ts, seq)).unwrap() {
            if let DetectorOutput::Match(m) = o {
                counts.push(m.binding(0).count());
            }
        }
        seq += 1;
    }
    assert_eq!(counts, vec![1, 3, 5, 2]);
}
