//! Interner steady-state regression: with a fixed vocabulary, the
//! dictionary must stop growing once every distinct string has been
//! seen — on the row path, on the columnar path, and (the case this
//! pins) for strings constructed *mid-chain* by computed projection
//! outputs, which are routed through the bound interner rather than
//! left as fresh un-interned `Arc<str>`s.

use eslev::prelude::*;
use std::sync::Arc;

fn e1_feed(n: usize) -> Vec<(String, Vec<Value>)> {
    // Fixed vocabulary: 3 readers × 8 tags, ~0.4 s stride.
    let mut ts = 0u64;
    (0..n)
        .map(|i| {
            if i % 3 != 0 {
                ts += 400_000;
            }
            (
                "readings".to_string(),
                vec![
                    Value::str(format!("reader{}", i % 3).as_str()),
                    Value::str(format!("tag{}", i % 8).as_str()),
                    Value::Ts(Timestamp::from_micros(ts)),
                ],
            )
        })
        .collect()
}

const DDL: &str = "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP)";

const E1: &str = "SELECT * FROM readings AS r1
     WHERE NOT EXISTS
       (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
        WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)";

/// Feed the first half, record the dictionary size, feed the second
/// half (same vocabulary), and require zero growth.
fn assert_flat(mut engine: Engine, query: &str, label: &str) {
    execute_script(&mut engine, DDL).expect("ddl");
    let q = execute(&mut engine, query).expect("query");
    let c = q.collector().expect("collector").clone();
    let feed = e1_feed(600);
    let (warm, steady) = feed.split_at(feed.len() / 2);
    for (s, v) in warm {
        engine.push(s, v.clone()).expect("push");
    }
    let (entries_mid, bytes_mid) = engine.interner_stats();
    for (s, v) in steady {
        engine.push(s, v.clone()).expect("push");
    }
    let (entries_end, bytes_end) = engine.interner_stats();
    assert!(!c.take().is_empty(), "{label}: no output");
    assert_eq!(
        entries_mid, entries_end,
        "{label}: dictionary grew in steady state ({entries_mid} -> {entries_end} entries)"
    );
    assert_eq!(
        bytes_mid, bytes_end,
        "{label}: dictionary bytes grew in steady state"
    );
}

#[test]
fn e1_steady_state_keeps_dictionary_flat_row_and_columnar() {
    for columnar in [false, true] {
        let mut e = Engine::new();
        e.set_columnar(columnar);
        assert_flat(e, E1, if columnar { "E1 columnar" } else { "E1 row" });
    }
}

/// Computed string outputs: a UDF builds a *new* string per tuple from
/// a fixed vocabulary. Before projection outputs were canonicalized
/// through the bound interner, each output was a fresh `Arc<str>`;
/// the dictionary must converge to one entry per distinct content.
#[test]
fn computed_string_outputs_keep_dictionary_flat() {
    for columnar in [false, true] {
        let mut e = Engine::new();
        e.set_columnar(columnar);
        e.functions_mut().register(
            "tagcat",
            Arc::new(|args: &[Value]| {
                let a = args[0].as_str().unwrap_or("");
                let b = args[1].as_str().unwrap_or("");
                Ok(Value::str(format!("{a}-{b}").as_str()))
            }),
        );
        assert_flat(
            e,
            "SELECT tagcat(reader_id, tag_id) FROM readings",
            if columnar {
                "tagcat columnar"
            } else {
                "tagcat row"
            },
        );
    }
}
