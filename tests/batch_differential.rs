//! Batch-vs-tuple differential: `Engine::push_batch` must produce
//! byte-identical query output to pushing the same rows one at a time
//! with `Engine::push`, at every batch size — including batches whose
//! internal timestamp spread expires windows mid-batch.
//!
//! Three paper workloads cover the punctuation-sensitive operator
//! classes: E1 (windowed NOT EXISTS dedup), E6 (multi-stream SEQ with a
//! window and partition keys), E10 (star SEQ with a COUNT aggregate).

use eslev::prelude::*;

const BATCH_SIZES: [usize; 4] = [1, 7, 64, 4096];

/// Deterministic LCG — same feed on every run, no external crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

type Row = (String, Vec<Value>);

/// Build two identical engines from a DDL+query script; return both
/// engines and their collectors.
fn pair(script: &str, query: &str) -> ((Engine, Collector), (Engine, Collector)) {
    let build = || {
        let mut e = Engine::new();
        execute_script(&mut e, script).expect("script");
        let out = execute(&mut e, query).expect("query");
        let c = out.collector().expect("bare SELECT collects").clone();
        (e, c)
    };
    (build(), build())
}

/// Feed `rows` tuple-at-a-time into one engine and in `batch`-sized
/// chunks into the other; assert the collected outputs match exactly
/// (values and timestamps).
fn assert_equivalent(script: &str, query: &str, rows: &[Row], label: &str) {
    for batch in BATCH_SIZES {
        let ((mut e_tuple, c_tuple), (mut e_batch, c_batch)) = pair(script, query);
        for (stream, values) in rows {
            e_tuple.push(stream, values.clone()).expect("push");
        }
        for chunk in rows.chunks(batch) {
            e_batch
                .push_batch(chunk.iter().cloned())
                .expect("push_batch");
        }
        let take = |c: &Collector| -> Vec<(Vec<Value>, Timestamp)> {
            c.take()
                .iter()
                .map(|t| (t.values().to_vec(), t.ts()))
                .collect()
        };
        let (a, b) = (take(&c_tuple), take(&c_batch));
        assert_eq!(
            a, b,
            "{label}: batch size {batch} diverged from tuple-at-a-time"
        );
        assert!(!a.is_empty(), "{label}: workload produced no output");
    }
}

/// E1: dedup via windowed NOT EXISTS. Timestamps stride ~0.4 s with a
/// 1-second window, so a 64-row batch spans many window expirations —
/// the mid-batch expiry case.
#[test]
fn e1_dedup_batch_equals_tuple() {
    let script = "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP)";
    let query = "SELECT * FROM readings AS r1
         WHERE NOT EXISTS
           (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
            WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)";
    let mut rng = Lcg(11);
    let mut ts = 0u64;
    let rows: Vec<Row> = (0..600)
        .map(|_| {
            // ~40% duplicates: same (reader, tag) again within the window.
            if rng.below(5) >= 2 {
                ts += 400_000; // 0.4 s in micros
            }
            (
                "readings".to_string(),
                vec![
                    Value::str(format!("reader{}", rng.below(3)).as_str()),
                    Value::str(format!("tag{}", rng.below(8)).as_str()),
                    Value::Ts(Timestamp::from_micros(ts)),
                ],
            )
        })
        .collect();
    assert_equivalent(script, query, &rows, "E1 dedup");
}

/// E6: three-stage SEQ (shelf → checkout → exit) with per-tag partition
/// equalities, a gap constraint, and MODE RECENT.
#[test]
fn e6_seq_batch_equals_tuple() {
    let script = "CREATE STREAM shelf (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM checkout (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM exits (tagid VARCHAR, tagtime TIMESTAMP)";
    let query = "SELECT s.tagid, x.tagtime FROM shelf AS s, checkout AS c, exits AS x
         WHERE SEQ(s, c, x) MODE RECENT
           AND s.tagid = c.tagid AND c.tagid = x.tagid
           AND x.tagtime - c.tagtime <= 120 SECONDS";
    let mut rng = Lcg(12);
    let mut ts = 0u64;
    let streams = ["shelf", "checkout", "exits"];
    let rows: Vec<Row> = (0..900)
        .map(|_| {
            ts += rng.below(30) + 1;
            (
                streams[rng.below(3) as usize].to_string(),
                vec![
                    Value::str(format!("tag{}", rng.below(12)).as_str()),
                    Value::Ts(Timestamp::from_secs(ts)),
                ],
            )
        })
        .collect();
    assert_equivalent(script, query, &rows, "E6 seq");
}

/// E10: star sequence SEQ(a*, b) in CHRONICLE mode with a star COUNT,
/// runs of `a` closed by a `b`.
#[test]
fn e10_star_batch_equals_tuple() {
    let script = "CREATE STREAM scans (tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM cases (tagid VARCHAR, tagtime TIMESTAMP)";
    let query = "SELECT COUNT(a*), b.tagid FROM scans AS a, cases AS b
         WHERE SEQ(a*, b) MODE CHRONICLE
           AND b.tagtime - LAST(a*).tagtime <= 30 SECONDS";
    let mut rng = Lcg(13);
    let mut ts = 0u64;
    let mut rows: Vec<Row> = Vec::new();
    for case in 0..80 {
        for i in 0..(rng.below(6) + 1) {
            ts += rng.below(5) + 1;
            rows.push((
                "scans".to_string(),
                vec![
                    Value::str(format!("item{case}-{i}").as_str()),
                    Value::Ts(Timestamp::from_secs(ts)),
                ],
            ));
        }
        ts += rng.below(5) + 1;
        rows.push((
            "cases".to_string(),
            vec![
                Value::str(format!("case{case}").as_str()),
                Value::Ts(Timestamp::from_secs(ts)),
            ],
        ));
    }
    assert_equivalent(script, query, &rows, "E10 star");
}
