//! Representation differential suite: the interned row representation
//! (symbol dictionary + compact state keys) must be invisible in every
//! output byte. E1 (dedup), E6 (pairing-mode `SEQ`, all three modes)
//! and E10 (star sequence) run under `Representation::Interned` must
//! match the `Representation::Seed` reference exactly — same rows, same
//! timestamps, same order — both on a single engine and through the
//! shard router at N ∈ {1, 2, 4, 8}; and the interner dictionary must
//! survive a checkpoint/restore cycle through the byte codec.
//!
//! Comparison key: `(values, ts)` in emission order, the same key the
//! shard differential suite uses (router-stamped sequence numbers
//! differ from the single engine's dense counter by construction).

use eslev::prelude::*;
use eslev::rfid::scenario::{dedup, qc_line};

type Row = (Vec<Value>, Timestamp);

fn key_rows(rows: Vec<Tuple>) -> Vec<Row> {
    rows.into_iter()
        .map(|t| (t.values().to_vec(), t.ts()))
        .collect()
}

/// Run `ddl` + one collected `query` over `feed` on a single engine
/// under the given representation.
fn run_single(
    rep: Representation,
    ddl: &str,
    query: &str,
    feed: &[(String, Vec<Value>)],
) -> Vec<Row> {
    let mut engine = Engine::with_representation(rep);
    execute_script(&mut engine, ddl).expect("ddl plans");
    let q = execute(&mut engine, query).expect("query plans");
    let out = q.collector().expect("collected").clone();
    for (stream, values) in feed {
        engine.push(stream, values.clone()).expect("feed");
    }
    key_rows(out.take())
}

/// The same setup through the shard router (shards default to the
/// interned representation) at `shards` workers.
fn run_sharded(shards: usize, ddl: &str, query: &str, feed: &[(String, Vec<Value>)]) -> Vec<Row> {
    let ddl = ddl.to_string();
    let query = query.to_string();
    let mut se = ShardedEngine::build(shards, 256, ShardSpec::new(), move |e| {
        execute_script(e, &ddl)?;
        let q = execute(e, &query)?;
        Ok(vec![q.collector().expect("collected").clone()])
    })
    .expect("sharded build");
    for (stream, values) in feed {
        se.push(stream, values.clone()).expect("route");
    }
    se.flush().expect("flush");
    let rows = key_rows(se.take_output(0).expect("slot 0"));
    se.stop().expect("clean stop");
    rows
}

fn assert_repr_differential(name: &str, ddl: &str, query: &str, feed: &[(String, Vec<Value>)]) {
    let want = run_single(Representation::Seed, ddl, query, feed);
    assert!(
        !want.is_empty(),
        "{name}: reference output must be non-trivial"
    );
    let interned = run_single(Representation::Interned, ddl, query, feed);
    assert_eq!(
        interned, want,
        "{name}: interned single-engine output diverged from the seed representation"
    );
    for shards in [1usize, 2, 4, 8] {
        let got = run_sharded(shards, ddl, query, feed);
        assert_eq!(
            got, want,
            "{name}: interned sharded output at N={shards} diverged from the seed reference"
        );
    }
}

// ------------------------------------------------------------------ E1

const E1_DDL: &str = "
    CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
    CREATE STREAM cleaned_readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
    INSERT INTO cleaned_readings
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);";

fn e1_feed(seed: u64) -> Vec<(String, Vec<Value>)> {
    let w = dedup::generate(&dedup::DedupConfig {
        presences: 150,
        duplicate_prob: 0.6,
        seed,
        ..dedup::DedupConfig::default()
    });
    w.readings
        .iter()
        .map(|r| ("readings".to_string(), r.to_values()))
        .collect()
}

#[test]
fn e1_dedup_interned_equals_seed() {
    for seed in [1u64, 7] {
        let feed = e1_feed(seed);
        assert_repr_differential(
            &format!("E1 seed {seed}"),
            E1_DDL,
            "SELECT * FROM cleaned_readings",
            &feed,
        );
    }
}

// ------------------------------------------------------------------ E6

const E6_DDL: &str = "
    CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);";

fn e6_feed(seed: u64) -> Vec<(String, Vec<Value>)> {
    let w = qc_line::generate(&qc_line::QcConfig {
        products: 80,
        seed,
        ..qc_line::QcConfig::default()
    });
    let feeds: Vec<(String, Vec<Reading>)> = w
        .feeds
        .iter()
        .enumerate()
        .map(|(i, f)| (format!("c{}", i + 1), f.clone()))
        .collect();
    merge_feeds(feeds)
        .into_iter()
        .map(|item| (item.stream, item.reading.to_values()))
        .collect()
}

#[test]
fn e6_pairing_modes_interned_equals_seed() {
    // The tag equalities lift into the detector partition key — the
    // state keys that became symbol-encoded byte strings — so all three
    // pairing modes must survive the representation change unchanged.
    for mode in ["RECENT", "CHRONICLE", "UNRESTRICTED"] {
        let query = format!(
            "SELECT C1.tagid, C4.tagtime FROM C1, C2, C3, C4
             WHERE SEQ(C1, C2, C3, C4) MODE {mode}
             AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid"
        );
        let feed = e6_feed(3);
        assert_repr_differential(&format!("E6 {mode}"), E6_DDL, &query, &feed);
    }
}

// ----------------------------------------------------------------- E10

const E10_DDL: &str = "
    CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);";

const E10_QUERY: &str = "SELECT COUNT(R1*), R2.tagid FROM R1, R2
                         WHERE SEQ(R1*, R2) MODE CHRONICLE AND R1.tagid = R2.tagid";

/// Tag-interleaved star runs (same shape as the shard differential).
fn e10_feed(tags: usize, runs_per_tag: usize, run_len: usize) -> Vec<(String, Vec<Value>)> {
    let mut feed = Vec::new();
    let mut ts = 0u64;
    for _run in 0..runs_per_tag {
        for step in 0..=run_len {
            for tag in 0..tags {
                ts += 1;
                let stream = if step < run_len { "r1" } else { "r2" };
                feed.push((
                    stream.to_string(),
                    vec![
                        Value::str("rd"),
                        Value::str(format!("tag-{tag}")),
                        Value::Ts(Timestamp::from_secs(ts)),
                    ],
                ));
            }
        }
    }
    feed
}

#[test]
fn e10_star_sequence_interned_equals_seed() {
    let feed = e10_feed(7, 6, 3);
    assert_repr_differential("E10 star", E10_DDL, E10_QUERY, &feed);
}

// ------------------------------------------- dictionary crash recovery

/// The interner dictionary must survive the checkpoint byte codec: a
/// run interrupted by checkpoint → serialize → deserialize → restore
/// into a fresh engine must finish with the same output as the
/// uninterrupted run (restored state keys land on the symbols the
/// capturing engine assigned).
#[test]
fn dictionary_survives_checkpoint_restore() {
    let feed = e1_feed(5);
    let query = "SELECT * FROM cleaned_readings";
    let want = run_single(Representation::Interned, E1_DDL, query, &feed);
    assert!(!want.is_empty(), "reference output must be non-trivial");

    let cut = feed.len() / 2;

    let mut first = Engine::with_representation(Representation::Interned);
    execute_script(&mut first, E1_DDL).unwrap();
    let q = execute(&mut first, query).unwrap();
    let out_a = q.collector().unwrap().clone();
    for (stream, values) in &feed[..cut] {
        first.push(stream, values.clone()).unwrap();
    }
    let ck = first.checkpoint().unwrap();
    let bytes = ck.to_bytes();
    let (entries, _) = first.interner_stats();
    assert!(entries > 0, "E1 feed must have interned strings");
    assert_eq!(ck.dict.len(), entries, "checkpoint carries the dictionary");
    let mut rows = key_rows(out_a.take());

    let ck = EngineCheckpoint::from_bytes(&bytes).unwrap();
    let mut second = Engine::with_representation(Representation::Interned);
    execute_script(&mut second, E1_DDL).unwrap();
    let q = execute(&mut second, query).unwrap();
    let out_b = q.collector().unwrap().clone();
    second.restore(&ck).unwrap();
    assert_eq!(
        second.interner_stats().0,
        entries,
        "restore rebuilds the dictionary"
    );
    for (stream, values) in &feed[cut..] {
        second.push(stream, values.clone()).unwrap();
    }
    rows.extend(key_rows(out_b.take()));

    assert_eq!(
        rows, want,
        "restored run diverged from the uninterrupted reference"
    );
}
