//! Out-of-order ingestion differential suite: the paper's E1 (dedup),
//! E6 (pairing-mode `SEQ`, all four modes) and E10 (star sequence)
//! workloads replayed through a seeded bounded-disorder perturbation
//! ([`perturb_rows`]) and restored by the engine's reorder buffer.
//!
//! Assertions:
//!
//! * **Consistent level**: with reorder slack ≥ the perturbation bound,
//!   output is byte-identical to the in-order run — same rows, same
//!   timestamps, same order — on a single engine and through a
//!   [`ShardedEngine`] at N ∈ {1, 2, 4, 8}, with zero late drops.
//! * **Fast level**: speculative emission plus typed retractions
//!   reconciles to exactly the in-order output, and disorder really
//!   provokes retractions.
//! * **Recovery**: killing the engine mid-disorder and restoring from a
//!   v4 checkpoint (reorder buffer + dead letters included) produces
//!   the same output as the uninterrupted run.
//! * **Release order** (property): whatever the arrival order and
//!   slack, the released rows are a `(ts, arrival)`-sorted permutation
//!   of exactly the admitted (non-late) rows.

use eslev::prelude::*;
use eslev::rfid::scenario::{dedup, qc_line};
use proptest::prelude::*;

type Row = (Vec<Value>, Timestamp);

/// Perturbation bound for every differential: 2 seconds of simulated
/// delivery delay, restored with 2 seconds of reorder slack.
fn max_delay() -> Duration {
    Duration::from_secs(2)
}

fn key_rows(rows: Vec<Tuple>) -> Vec<Row> {
    rows.into_iter()
        .map(|t| (t.values().to_vec(), t.ts()))
        .collect()
}

/// Apply retractions to a fast query's raw emission log: a retraction
/// cancels the latest matching prior emission (same values, ts, seq).
fn reconcile(tuples: Vec<Tuple>) -> (Vec<Row>, usize) {
    let mut live: Vec<Tuple> = Vec::new();
    let mut retractions = 0usize;
    for t in tuples {
        if t.is_retraction() {
            retractions += 1;
            let pos = live
                .iter()
                .rposition(|p| p.values() == t.values() && p.ts() == t.ts() && p.seq() == t.seq())
                .expect("retraction matches a prior emission");
            live.remove(pos);
        } else {
            live.push(t);
        }
    }
    let rows = live
        .into_iter()
        .map(|t| (t.values().to_vec(), t.ts()))
        .collect();
    (rows, retractions)
}

/// In-order single-engine reference run.
fn run_reference(ddl: &str, query: &str, feed: &[(String, Vec<Value>)]) -> Vec<Row> {
    let mut engine = Engine::new();
    execute_script(&mut engine, ddl).expect("ddl plans");
    let q = execute(&mut engine, query).expect("query plans");
    let out = q.collector().expect("collected").clone();
    for (stream, values) in feed {
        engine.push(stream, values.clone()).expect("feed");
    }
    key_rows(out.take())
}

fn disordered_engine(
    ddl: &str,
    query: &str,
    streams: &[&str],
    slack: Duration,
) -> (Engine, Collector) {
    let mut engine = Engine::new();
    execute_script(&mut engine, ddl).expect("ddl plans");
    for s in streams {
        engine
            .set_disorder_tolerance(s, slack)
            .expect("tolerant stream");
    }
    let q = execute(&mut engine, query).expect("query plans");
    let out = q.collector().expect("collected").clone();
    (engine, out)
}

/// The disordered feed through a single engine with reorder slack.
fn run_disordered_single(
    ddl: &str,
    query: &str,
    streams: &[&str],
    slack: Duration,
    feed: &[(String, Vec<Value>)],
) -> (Vec<Tuple>, u64) {
    let (mut engine, out) = disordered_engine(ddl, query, streams, slack);
    for (stream, values) in feed {
        engine.push(stream, values.clone()).expect("feed");
    }
    engine.flush_disorder().expect("flush disorder");
    (out.take(), engine.late_tuples())
}

/// The disordered feed through the shard router: order is restored at
/// the router, so the shard engines replay an ordered feed.
fn run_disordered_sharded(
    shards: usize,
    ddl: &str,
    query: &str,
    streams: &[&str],
    slack: Duration,
    feed: &[(String, Vec<Value>)],
) -> (Vec<Tuple>, u64) {
    let ddl = ddl.to_string();
    let query = query.to_string();
    let mut se = ShardedEngine::build(shards, 256, ShardSpec::new(), move |e| {
        execute_script(e, &ddl)?;
        let q = execute(e, &query)?;
        Ok(vec![q.collector().expect("collected").clone()])
    })
    .expect("sharded build");
    for s in streams {
        se.set_disorder_tolerance(s, slack).expect("tolerant route");
    }
    for (stream, values) in feed {
        se.push(stream, values.clone()).expect("route");
    }
    se.flush_disorder().expect("flush disorder");
    se.flush().expect("flush");
    let rows = se.take_output(0).expect("slot 0");
    let late = se.late_tuples();
    se.stop().expect("clean stop");
    (rows, late)
}

/// The core assertion: a bounded shuffle restored with slack ≥ bound is
/// invisible — consistent output byte-identical to the in-order run,
/// zero late drops, single and sharded.
fn assert_disorder_differential(
    name: &str,
    ddl: &str,
    query: &str,
    streams: &[&str],
    feed: &[(String, Vec<Value>)],
    seed: u64,
) {
    let want = run_reference(ddl, query, feed);
    assert!(
        !want.is_empty(),
        "{name}: reference output must be non-trivial"
    );
    let shuffled = perturb_rows(feed.to_vec(), seed, max_delay());
    assert_ne!(
        shuffled, feed,
        "{name}: the perturbation must actually reorder the feed"
    );
    let (got, late) = run_disordered_single(ddl, query, streams, max_delay(), &shuffled);
    assert_eq!(late, 0, "{name}: slack == bound admits every tuple");
    assert_eq!(
        key_rows(got),
        want,
        "{name}: consistent output diverged from the in-order run"
    );
    for shards in [1usize, 2, 4, 8] {
        let (got, late) =
            run_disordered_sharded(shards, ddl, query, streams, max_delay(), &shuffled);
        assert_eq!(late, 0, "{name}: router slack == bound admits every tuple");
        assert_eq!(
            key_rows(got),
            want,
            "{name}: sharded consistent output at N={shards} diverged"
        );
    }
}

// ------------------------------------------------------------------ E1

const E1_DDL: &str = "
    CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);";

const E1_QUERY: &str = "SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)";

fn e1_feed(seed: u64) -> Vec<(String, Vec<Value>)> {
    let w = dedup::generate(&dedup::DedupConfig {
        presences: 150,
        duplicate_prob: 0.6,
        seed,
        ..dedup::DedupConfig::default()
    });
    w.readings
        .iter()
        .map(|r| ("readings".to_string(), r.to_values()))
        .collect()
}

#[test]
fn e1_dedup_consistent_survives_bounded_disorder() {
    assert_disorder_differential("E1 dedup", E1_DDL, E1_QUERY, &["readings"], &e1_feed(1), 42);
}

// ------------------------------------------------------------------ E6

const E6_DDL: &str = "
    CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);";

const E6_STREAMS: [&str; 4] = ["c1", "c2", "c3", "c4"];

fn e6_feed(seed: u64) -> Vec<(String, Vec<Value>)> {
    let w = qc_line::generate(&qc_line::QcConfig {
        products: 80,
        seed,
        ..qc_line::QcConfig::default()
    });
    let feeds: Vec<(String, Vec<Reading>)> = w
        .feeds
        .iter()
        .enumerate()
        .map(|(i, f)| (format!("c{}", i + 1), f.clone()))
        .collect();
    merge_feeds(feeds)
        .into_iter()
        .map(|item| (item.stream, item.reading.to_values()))
        .collect()
}

fn e6_query(mode: &str) -> String {
    format!(
        "SELECT C1.tagid, C4.tagtime FROM C1, C2, C3, C4
         WHERE SEQ(C1, C2, C3, C4) MODE {mode}
         AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid"
    )
}

#[test]
fn e6_all_pairing_modes_consistent_survive_bounded_disorder() {
    for mode in ["RECENT", "CHRONICLE", "UNRESTRICTED", "CONSECUTIVE"] {
        assert_disorder_differential(
            &format!("E6 {mode}"),
            E6_DDL,
            &e6_query(mode),
            &E6_STREAMS,
            &e6_feed(3),
            7,
        );
    }
}

// ----------------------------------------------------------------- E10

const E10_DDL: &str = "
    CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
    CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);";

const E10_QUERY: &str = "SELECT COUNT(R1*), R2.tagid FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE AND R1.tagid = R2.tagid";

fn e10_feed(tags: usize, runs_per_tag: usize, run_len: usize) -> Vec<(String, Vec<Value>)> {
    let mut feed = Vec::new();
    let mut ts = 0u64;
    for _run in 0..runs_per_tag {
        for step in 0..=run_len {
            for tag in 0..tags {
                ts += 1;
                let stream = if step < run_len { "r1" } else { "r2" };
                feed.push((
                    stream.to_string(),
                    vec![
                        Value::str("rd"),
                        Value::str(format!("tag-{tag}")),
                        Value::Ts(Timestamp::from_secs(ts)),
                    ],
                ));
            }
        }
    }
    feed
}

#[test]
fn e10_star_sequence_consistent_survives_bounded_disorder() {
    assert_disorder_differential(
        "E10 star",
        E10_DDL,
        E10_QUERY,
        &["r1", "r2"],
        &e10_feed(7, 6, 3),
        11,
    );
}

// ------------------------------------------------------------------ fast

/// Fast-level E1: speculative emissions arrive immediately and the
/// out-of-order arrivals provoke retractions; reconciling the log
/// reproduces the in-order output exactly.
#[test]
fn e1_fast_reconciles_to_in_order_output() {
    let feed = e1_feed(5);
    let want = run_reference(E1_DDL, E1_QUERY, &feed);
    let fast_query = format!("{E1_QUERY} CONSISTENCY FAST");
    let shuffled = perturb_rows(feed.clone(), 13, max_delay());
    assert_ne!(shuffled, feed);
    let (raw, late) =
        run_disordered_single(E1_DDL, &fast_query, &["readings"], max_delay(), &shuffled);
    assert_eq!(late, 0);
    let (got, retractions) = reconcile(raw);
    assert!(
        retractions > 0,
        "bounded disorder must provoke speculative retractions"
    );
    assert_eq!(
        got, want,
        "fast output failed to reconcile to the in-order run"
    );
}

/// Fast-level E10 (stateful star sequence): same reconciliation
/// guarantee for an aggregating sequence operator.
#[test]
fn e10_fast_reconciles_to_in_order_output() {
    let feed = e10_feed(5, 4, 3);
    let want = run_reference(E10_DDL, E10_QUERY, &feed);
    let fast_query = format!("{E10_QUERY} CONSISTENCY FAST");
    let shuffled = perturb_rows(feed.clone(), 29, max_delay());
    assert_ne!(shuffled, feed);
    let (raw, late) =
        run_disordered_single(E10_DDL, &fast_query, &["r1", "r2"], max_delay(), &shuffled);
    assert_eq!(late, 0);
    let (got, retractions) = reconcile(raw);
    assert!(
        retractions > 0,
        "disorder across R1/R2 must provoke retractions"
    );
    assert_eq!(
        got, want,
        "fast E10 failed to reconcile to the in-order run"
    );
}

/// Through the shard router order is restored *before* the shards, so a
/// fast query behind the router never observes disorder: its output is
/// already in order and carries zero retractions.
#[test]
fn sharded_fast_sees_ordered_feed_and_never_retracts() {
    let feed = e1_feed(9);
    let want = run_reference(E1_DDL, E1_QUERY, &feed);
    let fast_query = format!("{E1_QUERY} CONSISTENCY FAST");
    let shuffled = perturb_rows(feed, 17, max_delay());
    for shards in [1usize, 4] {
        let (raw, late) = run_disordered_sharded(
            shards,
            E1_DDL,
            &fast_query,
            &["readings"],
            max_delay(),
            &shuffled,
        );
        assert_eq!(late, 0);
        let (got, retractions) = reconcile(raw);
        assert_eq!(
            retractions, 0,
            "router-level reorder means shard-local speculation is inert"
        );
        assert_eq!(got, want, "sharded fast output at N={shards} diverged");
    }
}

// -------------------------------------------------------------- recovery

/// Kill-and-recover mid-disorder: checkpoint v4 carries the reorder
/// buffer and the dead-letter buffer, so resuming from the checkpoint
/// and replaying the remainder equals the uninterrupted disordered run
/// (which itself equals the in-order run).
#[test]
fn kill_and_recover_mid_disorder_equals_uninterrupted_run() {
    let feed = e1_feed(21);
    let want = run_reference(E1_DDL, E1_QUERY, &feed);
    let mut shuffled = perturb_rows(feed, 31, max_delay());
    let half = shuffled.len() / 2;
    // Plant one late-beyond-slack straggler in the first half so the
    // dead-letter buffer has state to carry across the checkpoint.
    let anchor_ts = shuffled[..half]
        .iter()
        .filter_map(|(_, vs)| {
            vs.iter().find_map(|v| match v {
                Value::Ts(t) => Some(*t),
                _ => None,
            })
        })
        .max()
        .expect("half feed has timestamps");
    shuffled.insert(
        half,
        (
            "readings".to_string(),
            vec![
                Value::str("straggler-reader"),
                Value::str("straggler-tag"),
                Value::Ts(Timestamp::from_micros(
                    anchor_ts
                        .as_micros()
                        .saturating_sub(3 * max_delay().as_micros()),
                )),
            ],
        ),
    );
    let half = half + 1;

    // Uninterrupted disordered run.
    let (unint, late) =
        run_disordered_single(E1_DDL, E1_QUERY, &["readings"], max_delay(), &shuffled);
    assert_eq!(late, 1, "exactly the planted straggler is late");
    assert_eq!(key_rows(unint), want);

    // Interrupted run: checkpoint after the first half (straggler
    // included), restore into a fresh engine, replay the rest.
    let (mut first, out1) = disordered_engine(E1_DDL, E1_QUERY, &["readings"], max_delay());
    for (stream, values) in &shuffled[..half] {
        first.push(stream, values.clone()).expect("feed");
    }
    assert_eq!(first.late_tuples(), 1);
    let bytes = first.checkpoint().expect("checkpoint").to_bytes();
    let ck = EngineCheckpoint::from_bytes(&bytes).expect("decode");
    let (mut resumed, out2) = disordered_engine(E1_DDL, E1_QUERY, &["readings"], max_delay());
    resumed.restore(&ck).expect("restore");
    drop(first);
    let carried: Vec<&DeadLetter> = resumed.dead_letters().collect();
    assert_eq!(carried.len(), 1, "dead letter survives the checkpoint");
    assert_eq!(carried[0].reason, RejectReason::Late);
    for (stream, values) in &shuffled[half..] {
        resumed.push(stream, values.clone()).expect("feed");
    }
    resumed.flush_disorder().expect("flush disorder");

    let mut got = out1.take();
    got.extend(out2.take());
    assert_eq!(
        key_rows(got),
        want,
        "recovered run diverged from the uninterrupted run"
    );
}

// -------------------------------------------------------------- property

proptest! {
    /// Whatever the arrival order and slack, the rows a tolerant stream
    /// releases are in nondecreasing timestamp order and form exactly
    /// the multiset of admitted (non-dead-lettered) rows.
    #[test]
    fn release_order_is_sorted_permutation_of_admitted(
        arrivals in proptest::collection::vec(0u64..10_000, 1..80),
        slack_ms in 0u64..2_000,
    ) {
        let mut engine = Engine::new();
        execute_script(&mut engine, E1_DDL).expect("ddl plans");
        engine
            .set_disorder_tolerance("readings", Duration::from_millis(slack_ms))
            .expect("tolerant stream");
        let q = execute(&mut engine, "SELECT * FROM readings").expect("plans");
        let out = q.collector().expect("collected").clone();
        for (i, ms) in arrivals.iter().enumerate() {
            engine
                .push(
                    "readings",
                    vec![
                        Value::str("r"),
                        Value::str(format!("t{i}")),
                        Value::Ts(Timestamp::from_millis(*ms)),
                    ],
                )
                .expect("late rows dead-letter, they do not error");
        }
        engine.flush_disorder().expect("flush");
        let dead: Vec<String> = engine
            .dead_letters()
            .map(|d| d.values[1].as_str().expect("tag").to_string())
            .collect();
        prop_assert_eq!(dead.len() as u64, engine.late_tuples());
        let released = out.take();
        // Sorted by timestamp…
        for w in released.windows(2) {
            prop_assert!(w[0].ts() <= w[1].ts(), "release order regressed");
        }
        // …and a permutation of exactly the admitted rows.
        let mut got: Vec<String> = released
            .iter()
            .map(|t| t.value(1).as_str().expect("tag").to_string())
            .collect();
        let mut admitted: Vec<String> = (0..arrivals.len())
            .map(|i| format!("t{i}"))
            .filter(|tag| !dead.contains(tag))
            .collect();
        got.sort();
        admitted.sort();
        prop_assert_eq!(got, admitted);
    }
}
