//! Offline stand-in for the `serde` crate: marker traits plus no-op
//! derive macros. The workspace tags types as serializable for future
//! wire formats but performs no serialization through external crates,
//! so the traits carry no methods.

/// Marker: the type is (conceptually) serializable.
pub trait Serialize {}

/// Marker: the type is (conceptually) deserializable.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

// Common std impls so container types derive cleanly if ever needed.
macro_rules! markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {} impl Deserialize for $t {})*
    };
}

markers!(bool, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64, String, char);

impl Serialize for &str {}

impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<T: Serialize> Serialize for std::sync::Arc<T> {}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {}
