//! Offline stand-in for `serde_derive`: the `Serialize` / `Deserialize`
//! derive macros expand to marker-trait impls. The workspace derives the
//! traits on plain data types but never serializes through an external
//! format crate, so no codegen beyond the marker impl is needed.

use proc_macro::TokenStream;

/// Extract the identifier following `struct` or `enum` in the derive input.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter();
    while let Some(tt) = tokens.next() {
        if let proc_macro::TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(proc_macro::TokenTree::Ident(name)) = tokens.next() {
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

/// Generics are not supported by this stand-in (the workspace only
/// derives on concrete types); emit an empty impl body for the named type.
fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        None => TokenStream::new(),
    }
}

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize", input)
}
