//! Offline stand-in for the `criterion` crate: same macro/builder API,
//! but measurement is a plain fixed-budget wall-clock loop reporting
//! mean and minimum per iteration (no statistics, no HTML reports).

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (recorded, reported as
/// elements/second when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored; every iteration re-runs
/// setup outside the timed section).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Accept CLI args for compatibility (filters and criterion flags are
    /// ignored by this stand-in).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        let name = id.to_string();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function("", f);
        g.finish();
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            measurement_time: self.criterion.measurement_time,
            warm_up_time: self.criterion.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id.to_string(), self.throughput);
    }

    /// Benchmark a closure over one input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Measured per-iteration durations in nanoseconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up (untimed).
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Time `routine` with a fresh untimed `setup` product per iteration.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine(setup()));
        }
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let rate = match throughput {
            Some(Throughput::Elements(n)) => format!("  {:>10.0} elem/s", n as f64 / (min / 1e9)),
            Some(Throughput::Bytes(n)) => format!("  {:>10.0} B/s", n as f64 / (min / 1e9)),
            None => String::new(),
        };
        println!(
            "{group}/{id}: mean {:>10.3} ms  min {:>10.3} ms  ({} samples){rate}",
            mean / 1e6,
            min / 1e6,
            self.samples.len()
        );
    }
}

/// Define a benchmark group function (criterion's two macro forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Define the benchmark `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
