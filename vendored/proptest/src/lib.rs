//! Offline stand-in for the `proptest` crate: the `proptest!` macro and
//! the strategy combinators the workspace uses, generating deterministic
//! random cases (seeded from the test name) without shrinking. On
//! failure the panic message carries the case index; set
//! `PROPTEST_CASES` to change the per-test case count.

use std::rc::Rc;

pub mod string;

/// Deterministic per-test random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name` — stable across runs.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift with rejection of the biased zone.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            let wide = (v as u128) * (bound as u128);
            if (wide as u64) <= zone {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// Error produced by `prop_assert!` family; aborts the current case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-`proptest!` configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// A value generator. Unlike crates.io proptest there is no shrinking:
/// a strategy is simply a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase (and make cloneable/shareable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive structures: `self` generates leaves, `expand` wraps an
    /// inner strategy into composites; recursion nests up to `depth`
    /// levels (the size-hint parameters of crates.io proptest are
    /// accepted and ignored).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let composite = expand(current).boxed();
            current = Union::new(vec![leaf.clone(), composite]).boxed();
        }
        current
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among strategies of a common value type
/// (the `prop_oneof!` backing type).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// String strategies from a character-class pattern (see [`string`]).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        string::Pattern::parse(self)
            .unwrap_or_else(|e| panic!("bad string strategy pattern `{self}`: {e}"))
            .generate(rng)
    }
}

/// Default strategies for primitive types (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T`: `any::<i64>()`, `any::<bool>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `Vec` strategy: each element drawn from `element`, length from
    /// `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                for case in 0..cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __proptest_rng);)+
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __proptest_result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case, cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking
/// directly (so the harness can report the case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`", __l, __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $($crate::Strategy::boxed($strat)),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_and_vecs(v in collection::vec((0u64..5, -10i64..10), 0..40), b in any::<bool>()) {
            prop_assert!(v.len() < 40);
            for (x, y) in &v {
                prop_assert!(*x < 5);
                prop_assert!((-10..10).contains(y));
            }
            let _ = b;
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20..40).contains(&x), "x = {x}");
        }

        #[test]
        fn string_patterns(s in "q[a-z0-9_]{0,6}", t in "[ -~]{0,20}") {
            prop_assert!(s.starts_with('q'));
            prop_assert!(s.len() <= 7);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::for_case("recursive", 0);
        for _ in 0..200 {
            assert!(depth(&strat.new_value(&mut rng)) <= 3);
        }
    }
}
