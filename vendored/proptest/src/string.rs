//! A tiny character-class pattern language for string strategies.
//!
//! Supports the regex subset the workspace's tests use: literal
//! characters, character classes `[a-z0-9_%]` (ranges and literals), and
//! counted repetition `{lo,hi}` / `{n}` after an atom. Anything fancier
//! (alternation, groups, `*`/`+`) is rejected with an error.

use crate::TestRng;

/// One pattern atom with its repetition bounds.
#[derive(Debug, Clone)]
struct Atom {
    /// The characters this atom can produce.
    choices: Vec<char>,
    /// Inclusive repetition bounds.
    lo: u32,
    hi: u32,
}

/// A parsed pattern: a concatenation of atoms.
#[derive(Debug, Clone)]
pub struct Pattern {
    atoms: Vec<Atom>,
}

impl Pattern {
    /// Parse a pattern; errors on unsupported syntax.
    pub fn parse(pattern: &str) -> Result<Pattern, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| "unterminated character class".to_string())?;
                    let body = &chars[i + 1..i + 1 + close];
                    i += close + 2;
                    class_choices(body)?
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .ok_or_else(|| "dangling escape".to_string())?;
                    i += 2;
                    vec![c]
                }
                c @ ('*' | '+' | '?' | '(' | ')' | '|') => {
                    return Err(format!("unsupported pattern operator `{c}`"));
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| "unterminated repetition".to_string())?;
                let body: String = chars[i + 1..i + 1 + close].iter().collect();
                i += close + 2;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().map_err(|e| format!("bad bound: {e}"))?,
                        hi.trim().parse().map_err(|e| format!("bad bound: {e}"))?,
                    ),
                    None => {
                        let n = body.trim().parse().map_err(|e| format!("bad bound: {e}"))?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if lo > hi {
                return Err(format!("repetition bounds inverted: {{{lo},{hi}}}"));
            }
            atoms.push(Atom { choices, lo, hi });
        }
        Ok(Pattern { atoms })
    }

    /// Generate one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = atom.lo + rng.below((atom.hi - atom.lo + 1) as u64) as u32;
            for _ in 0..n {
                let i = rng.below(atom.choices.len() as u64) as usize;
                out.push(atom.choices[i]);
            }
        }
        out
    }
}

/// Expand a class body (`a-z0-9_%`) into its concrete characters.
fn class_choices(body: &[char]) -> Result<Vec<char>, String> {
    if body.is_empty() {
        return Err("empty character class".to_string());
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // `a-z` is a range when `-` sits between two chars; a leading or
        // trailing `-` is a literal.
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            if lo > hi {
                return Err(format!("inverted class range `{lo}-{hi}`"));
            }
            out.extend(lo..=hi);
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_patterns() {
        for p in [
            "q[a-z0-9_]{0,6}",
            "[a-c%_]{0,6}",
            "[ -~]{0,80}",
            "[a-zA-Z_][a-zA-Z0-9_]{0,10}",
            "[a-c]{0,8}",
            "[a-zA-Z0-9 ,.()*<>=']{0,60}",
        ] {
            Pattern::parse(p).unwrap();
        }
        assert!(Pattern::parse("a|b").is_err());
        assert!(Pattern::parse("[abc").is_err());
    }

    #[test]
    fn generated_strings_match_class() {
        let p = Pattern::parse("[a-c]{2,4}").unwrap();
        let mut rng = TestRng::for_case("class", 0);
        for _ in 0..100 {
            let s = p.generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let p = Pattern::parse("[a-]").unwrap();
        let mut rng = TestRng::for_case("dash", 0);
        for _ in 0..20 {
            let s = p.generate(&mut rng);
            assert!(s == "a" || s == "-");
        }
    }
}
