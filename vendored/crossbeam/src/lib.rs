//! Offline stand-in for the `crossbeam` crate: the `channel` module with
//! bounded MPSC channels, implemented over `std::sync::mpsc`.

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel; cloneable.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the channel is disconnected;
    /// carries the unsent message.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Create a bounded channel with capacity `cap` (blocking sends once
    /// full — the back-pressure behaviour the engine driver relies on).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking iteration helper mirroring crossbeam's API.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter(self.0.into_iter())
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            Iter(self.0.iter())
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T>(mpsc::IntoIter<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.next()
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T>(mpsc::Iter<'a, T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_iterate() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..3 {
                tx2.send(i).unwrap();
            }
        });
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn disconnected_errors() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
