//! Offline stand-in for the `bytes` crate: `Bytes` / `BytesMut` plus the
//! `Buf` / `BufMut` traits, covering the big-endian get/put accessors the
//! EPC codec uses. Backed by a plain `Vec<u8>` with a read cursor rather
//! than refcounted slices.

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Read `n` bytes off the front.
    fn copy_front(&mut self, n: usize) -> &[u8];

    /// Read a big-endian `u8`.
    fn get_u8(&mut self) -> u8 {
        self.copy_front(1)[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.copy_front(2).try_into().expect("2 bytes"))
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.copy_front(4).try_into().expect("4 bytes"))
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.copy_front(8).try_into().expect("8 bytes"))
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wrap a static slice (copied; this stand-in has no zero-copy path).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// View of the unread bytes.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_front(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.remaining(), "buffer underflow");
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(7);
        b.put_u32(11);
        b.put_u64(u64::MAX - 1);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 16);
        assert_eq!(frozen.get_u32(), 7);
        assert_eq!(frozen.get_u32(), 11);
        assert_eq!(frozen.get_u64(), u64::MAX - 1);
        assert!(frozen.is_empty());
    }
}
