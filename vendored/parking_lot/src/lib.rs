//! Offline stand-in for the `parking_lot` crate: `Mutex` and `RwLock`
//! with non-poisoning, infallible guards, implemented over `std::sync`.
//! Only the surface the workspace uses is provided.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never returns an error: a
/// poisoned inner lock is recovered, matching parking_lot's
/// no-poisoning semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with infallible, non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
