//! Offline stand-in for the `rand` crate (0.8-style API subset):
//! deterministic `StdRng` built on xoshiro256++ with SplitMix64 seeding,
//! and the `Rng` / `SeedableRng` traits with `gen`, `gen_range` and
//! `gen_bool`. Value streams differ from crates.io `rand`; all workspace
//! generators compute their ground truth alongside generation, so only
//! determinism per seed matters.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Random: Sized {
    /// Draw a uniformly random value (`f64` in `[0, 1)`).
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Random for i64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, span)` by multiply-shift with rejection on the
/// biased zone (Lemire); `span` must be ≤ `u64::MAX as u128 + 1`.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value from a range: `rng.gen_range(0..10)`, `(1..=6)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::random(self) < p
    }

    /// Uniform value of type `T` (`f64` in `[0, 1)`).
    #[allow(clippy::should_implement_trait)] // mirrors rand 0.8's method name
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64 (differs from crates.io `rand`, which uses ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| a.gen::<u64>() == c.gen::<u64>());
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u32..=3);
            assert!(w <= 3);
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
