//! Patient monitoring (§2.1's data aggregation + ad-hoc query tasks):
//! RFID-associated blood-pressure streams, a windowed MAX per patient, a
//! hypertension alert transducer, and the physician's *ad-hoc snapshot
//! query* against a materialized window — no persistent store involved.
//!
//! Run with: `cargo run --example patient_monitoring`

use eslev::prelude::*;
use eslev::rfid::scenario::vitals::{self, VitalsConfig};

fn main() -> Result<(), DsmsError> {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM vitals (patient VARCHAR, bp INT, t TIMESTAMP);
         CREATE STREAM hypertension_alerts (patient VARCHAR, bp INT, t TIMESTAMP);",
    )?;

    // Continuous alerting: raise a row whenever a reading crosses 160.
    execute(
        &mut engine,
        "INSERT INTO hypertension_alerts
         SELECT patient, bp, t FROM vitals WHERE bp >= 160",
    )?;

    // Rolling per-patient maximum over the last 10 minutes.
    let rolling = execute(
        &mut engine,
        "SELECT patient, max(bp) FROM vitals OVER (RANGE 10 MINUTES PRECEDING CURRENT)
         GROUP BY patient",
    )?;
    let rolling_rows = rolling.collector().expect("collected").clone();

    // Materialize the last 30 minutes for ad-hoc questions.
    engine.materialize("vitals", WindowExtent::Preceding(Duration::from_mins(30)))?;

    // Feed the simulated ward.
    let cfg = VitalsConfig::default();
    let w = vitals::generate(&cfg);
    for r in &w.readings {
        engine.push("vitals", r.to_values())?;
    }

    let alerts = engine.stream_pushed("hypertension_alerts")?;
    let truth_high: usize = w.episodes.iter().map(|e| e.readings).sum();
    println!("patients                  : {}", cfg.patients);
    println!("readings                  : {}", w.readings.len());
    println!("hypertensive episodes     : {}", w.episodes.len());
    println!("readings above threshold  : {truth_high}");
    println!("alert rows emitted        : {alerts}");
    assert_eq!(alerts as usize, truth_high);

    // The physician asks, right now: what's patient-2's recent picture?
    let snapshot = ad_hoc(
        &engine,
        "SELECT count(bp), max(bp), avg(bp) FROM vitals WHERE patient = 'patient-2'",
    )?;
    let row = &snapshot[0];
    println!(
        "ad-hoc patient-2 (last 30 min): {} readings, max {}, avg {:.1}",
        row.value(0),
        row.value(1),
        row.value(2).as_float().unwrap_or(0.0)
    );
    assert!(row.value(0).as_int().unwrap_or(0) > 0);

    // And the rolling MAX stream saw every episode peak.
    let peaks: std::collections::HashMap<String, i64> = rolling_rows
        .take()
        .iter()
        .filter_map(|r| Some((r.value(0).as_str()?.to_string(), r.value(1).as_int()?)))
        .fold(std::collections::HashMap::new(), |mut m, (p, v)| {
            let e = m.entry(p).or_insert(0);
            *e = (*e).max(v);
            m
        });
    let global_peak_truth = w.episodes.iter().map(|e| e.peak).max().unwrap_or(0);
    let global_peak_seen = peaks.values().copied().max().unwrap_or(0);
    println!("episode peak (truth/seen) : {global_peak_truth} / {global_peak_seen}");
    assert_eq!(global_peak_truth, global_peak_seen);

    Ok(())
}
