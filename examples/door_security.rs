//! Door security (Example 8 / §3.2): alert when an item leaves with no
//! person detected within ±1 minute — a sliding window synchronized
//! across the sub-query boundary, extending both before *and after* the
//! item reading (so alerts can only fire once the window closes).
//!
//! Run with: `cargo run --example door_security`

use eslev::prelude::*;
use eslev::rfid::scenario::door::{self, DoorConfig};

fn main() -> Result<(), DsmsError> {
    let mut engine = Engine::new();
    execute(
        &mut engine,
        "CREATE STREAM tag_readings (tagid VARCHAR, tagtype VARCHAR, tagtime TIMESTAMP)",
    )?;

    let query = execute(
        &mut engine,
        "SELECT item.tagid
         FROM tag_readings AS item
         WHERE item.tagtype = 'item' AND NOT EXISTS
           (SELECT * FROM tag_readings AS person
            OVER [1 MINUTES PRECEDING AND FOLLOWING item]
            WHERE person.tagtype = 'person')",
    )?;
    let alerts = query.collector().expect("collected").clone();

    let cfg = DoorConfig {
        item_exits: 500,
        theft_fraction: 0.08,
        ..DoorConfig::default()
    };
    let w = door::generate(&cfg);
    for r in &w.readings {
        engine.push("tag_readings", r.to_values())?;
    }
    // Close the last windows.
    let horizon = w
        .readings
        .last()
        .map(|r| r.ts + Duration::from_mins(5))
        .unwrap_or(Timestamp::ZERO);
    engine.advance_to(horizon)?;

    let raised: Vec<String> = alerts
        .take()
        .iter()
        .map(|t| t.value(0).as_str().unwrap_or("").to_string())
        .collect();
    let truth: std::collections::BTreeSet<&str> = w.thefts.iter().map(|s| s.as_str()).collect();
    let got: std::collections::BTreeSet<&str> = raised.iter().map(|s| s.as_str()).collect();

    let true_pos = got.intersection(&truth).count();
    println!("item exits          : {}", cfg.item_exits);
    println!("thefts (truth)      : {}", truth.len());
    println!("alerts raised       : {}", got.len());
    println!("true positives      : {true_pos}");
    println!(
        "precision / recall  : {:.3} / {:.3}",
        true_pos as f64 / got.len().max(1) as f64,
        true_pos as f64 / truth.len().max(1) as f64
    );
    assert_eq!(got, truth, "alerts must match ground truth exactly");

    Ok(())
}
