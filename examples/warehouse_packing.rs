//! Warehouse packing (Figure 1, Examples 4 & 7): detect which products
//! were packed into which case using the star-sequence operator
//! `SEQ(R1*, R2) MODE CHRONICLE` with the paper's two timing thresholds,
//! and verify the detections against the simulator's ground truth.
//!
//! Run with: `cargo run --example warehouse_packing`

use eslev::prelude::*;
use eslev::rfid::scenario::packing::{self, PackingConfig};

fn main() -> Result<(), DsmsError> {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )?;

    // Example 7, verbatim: aggregate form — when was packing started,
    // how many products, which case.
    let query = execute(
        &mut engine,
        "SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
         FROM R1, R2
         WHERE SEQ(R1*, R2) MODE CHRONICLE
         AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
         AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS",
    )?;
    let detections = query.collector().expect("collected").clone();

    // Simulate 200 cases with overlapping bursts (Figure 1(b)).
    let cfg = PackingConfig {
        cases: 200,
        overlap: true,
        ..PackingConfig::default()
    };
    let w = packing::generate(&cfg);
    // Merge the two reader feeds into one time-ordered replay.
    let feed = merge_feeds(vec![
        ("r1".to_string(), w.products.clone()),
        ("r2".to_string(), w.cases.clone()),
    ]);
    for item in feed {
        engine.push(&item.stream, item.reading.to_values())?;
    }

    let rows = detections.take();
    println!("cases packed (truth)    : {}", w.truth.len());
    println!("containments detected   : {}", rows.len());

    // Score against ground truth: case tag and product count must match.
    let mut correct = 0;
    for (row, truth) in rows.iter().zip(&w.truth) {
        let case_ok = row.value(2).as_str() == Some(truth.case_tag.as_str());
        let count_ok = row.value(1).as_int() == Some(truth.product_tags.len() as i64);
        if case_ok && count_ok {
            correct += 1;
        }
    }
    println!(
        "exact case+count matches: {correct}/{} ({:.1} %)",
        w.truth.len(),
        100.0 * correct as f64 / w.truth.len() as f64
    );
    let total_products: usize = w.truth.iter().map(|t| t.product_tags.len()).sum();
    println!("products packed (truth) : {total_products}");
    assert_eq!(rows.len(), w.truth.len());
    assert_eq!(correct, w.truth.len());

    Ok(())
}
