//! Clinic laboratory workflow enforcement (Example 5 / §3.1.3): raise an
//! alert whenever the A → B → C operation sequence is violated — wrong
//! order, wrong start, or not finishing within the hour (detected by
//! *active expiration*, with no further arrivals).
//!
//! Run with: `cargo run --example clinic_workflow`

use eslev::prelude::*;
use eslev::rfid::scenario::clinic::{self, ClinicConfig, RunKind};

fn main() -> Result<(), DsmsError> {
    let mut engine = Engine::new();
    execute_script(
        &mut engine,
        "CREATE STREAM A1 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A2 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
         CREATE STREAM A3 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);",
    )?;

    // §3.1.3, verbatim: alert on any violation of the sequence or its
    // one-hour deadline.
    let query = execute(
        &mut engine,
        "SELECT A1.tagid, A2.tagid, A3.tagid
         FROM A1, A2, A3
         WHERE EXCEPTION_SEQ(A1, A2, A3)
         OVER [1 HOURS FOLLOWING A1]",
    )?;
    let alerts = query.collector().expect("collected").clone();

    let cfg = ClinicConfig {
        runs: 300,
        ..ClinicConfig::default()
    };
    let w = clinic::generate(&cfg);
    let streams = ["a1", "a2", "a3"];
    for (port, reading) in &w.feed {
        engine.push(
            streams[*port],
            vec![
                Value::str(&reading.reader),
                Value::str(&reading.tag),
                Value::Ts(reading.ts),
            ],
        )?;
    }
    // Final heartbeat so trailing timeouts fire.
    let horizon = w
        .feed
        .last()
        .map(|(_, r)| r.ts + Duration::from_hours(2))
        .unwrap_or(Timestamp::ZERO + Duration::from_hours(2));
    engine.advance_to(horizon)?;

    let n_alerts = alerts.len();
    let by_kind = |k: RunKind| w.truth.iter().filter(|r| r.kind == k).count();
    println!("test runs             : {}", w.truth.len());
    println!("  normal              : {}", by_kind(RunKind::Normal));
    println!("  wrong order         : {}", by_kind(RunKind::WrongOrder));
    println!("  wrong start         : {}", by_kind(RunKind::WrongStart));
    println!("  timeout             : {}", by_kind(RunKind::Timeout));
    println!("violations (truth)    : {}", w.violations);
    println!("alerts raised         : {n_alerts}");
    assert_eq!(
        n_alerts, w.violations,
        "every violation alerts exactly once"
    );

    Ok(())
}
