//! Quickstart: duplicate elimination and EPC-pattern aggregation on a
//! simulated RFID gate — Examples 1 and 3 of the paper, end to end.
//!
//! Run with: `cargo run --example quickstart`

use eslev::prelude::*;
use eslev::rfid::scenario::dedup::{self, DedupConfig};

fn main() -> Result<(), DsmsError> {
    let mut engine = Engine::new();
    register_epc_udfs(engine.functions_mut());

    // Schemas: the raw reader feed and the cleaned derived stream.
    execute_script(
        &mut engine,
        "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);
         CREATE STREAM cleaned_readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);",
    )?;

    // Example 1: the paper's duplicate-filtering transducer, verbatim.
    execute(
        &mut engine,
        "INSERT INTO cleaned_readings
         SELECT * FROM readings AS r1
         WHERE NOT EXISTS
           (SELECT * FROM TABLE( readings OVER
              (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
            WHERE r2.reader_id = r1.reader_id
            AND r2.tag_id = r1.tag_id)",
    )?;

    // A continuous count over the *cleaned* stream.
    let counted = execute(&mut engine, "SELECT count(tag_id) FROM cleaned_readings")?;
    let counts = counted.collector().expect("bare SELECT collects").clone();

    // Feed a duplicate-heavy simulated workload (50 % re-read chance).
    let workload = dedup::generate(&DedupConfig {
        presences: 2_000,
        duplicate_prob: 0.5,
        ..DedupConfig::default()
    });
    let raw = workload.readings.len();
    for r in &workload.readings {
        engine.push("readings", r.to_values())?;
    }

    let cleaned = engine.stream_pushed("cleaned_readings")?;
    let last_count = counts
        .take()
        .last()
        .and_then(|t| t.value(0).as_int())
        .unwrap_or(0);

    println!("raw readings            : {raw}");
    println!("physical tag presences  : {}", workload.unique_presences);
    println!("cleaned readings        : {cleaned}");
    println!("continuous COUNT output : {last_count}");
    assert_eq!(cleaned as usize, workload.unique_presences);

    Ok(())
}
