//! EPC-pattern analytics (Example 3 / the ALE requirement from §1):
//! count readings whose EPC matches `20.*.[5000-9999]`, three ways —
//! the paper's LIKE + `extract_serial` UDF query, the compiled
//! `epc_match` UDF, and location tracking into a persistent table
//! (Example 2) on the side.
//!
//! Run with: `cargo run --example epc_analytics`

use eslev::prelude::*;
use eslev::rfid::scenario::epc_population::{self, EpcConfig};
use eslev::rfid::scenario::tracking::{self, TrackingConfig};

fn main() -> Result<(), DsmsError> {
    let mut engine = Engine::new();
    register_epc_udfs(engine.functions_mut());
    register_epc_match_udf(engine.functions_mut());

    execute_script(
        &mut engine,
        "CREATE STREAM readings (reader_id VARCHAR, tid VARCHAR, read_time TIMESTAMP);
         CREATE STREAM tag_locations (readerid VARCHAR, tid VARCHAR, tagtime TIMESTAMP, loc VARCHAR);
         CREATE TABLE object_movement (tagid VARCHAR, location VARCHAR, start_time TIMESTAMP);",
    )?;

    // Example 3, verbatim (LIKE + UDF).
    let like_udf = execute(
        &mut engine,
        "SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
         AND extract_serial(tid) > 5000
         AND extract_serial(tid) < 9999",
    )?;
    let like_counts = like_udf.collector().expect("collected").clone();

    // The compiled-pattern equivalent.
    let compiled = execute(
        &mut engine,
        "SELECT count(tid) FROM readings WHERE epc_match('20.*.[5001-9998]', tid)",
    )?;
    let compiled_counts = compiled.collector().expect("collected").clone();

    // Example 2, verbatim: persist location changes.
    execute(
        &mut engine,
        "INSERT INTO object_movement
         SELECT tid, loc, tagtime
         FROM tag_locations WHERE NOT EXISTS
           (SELECT tagid FROM object_movement
            WHERE tagid = tid AND location = loc)",
    )?;

    // Feed the EPC population.
    let epc_cfg = EpcConfig {
        readings: 20_000,
        match_fraction: 0.25,
        // The verbatim query's strict bounds mean serials 5001..=9998.
        pattern: "20.*.[5001-9998]".parse().expect("valid pattern"),
        ..EpcConfig::default()
    };
    let epcs = epc_population::generate(&epc_cfg);
    for r in &epcs.readings {
        engine.push(
            "readings",
            vec![Value::str(&r.reader), Value::str(&r.tag), Value::Ts(r.ts)],
        )?;
    }

    // Feed the movement workload.
    let track_cfg = TrackingConfig::default();
    let moves = tracking::generate(&track_cfg);
    for r in &moves.readings {
        engine.push("tag_locations", r.to_values())?;
    }

    let last = |c: &Collector| {
        c.take()
            .last()
            .and_then(|t| t.value(0).as_int())
            .unwrap_or(0)
    };
    let like_n = last(&like_counts);
    let compiled_n = last(&compiled_counts);
    println!("EPC readings              : {}", epcs.readings.len());
    println!("matching (ground truth)   : {}", epcs.matching);
    println!("LIKE + extract_serial     : {like_n}");
    println!("compiled epc_match        : {compiled_n}");
    assert_eq!(like_n as usize, epcs.matching);
    assert_eq!(compiled_n as usize, epcs.matching);

    let table = engine.table("object_movement")?;
    println!("location readings         : {}", moves.readings.len());
    println!("movement rows persisted   : {}", table.len());
    println!("distinct (tag,loc) truth  : {}", moves.distinct_pairs);
    assert_eq!(table.len(), moves.distinct_pairs);

    Ok(())
}
