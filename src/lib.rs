//! # eslev — ESL-EV: RFID stream processing with temporal event detection
//!
//! A full reproduction of *RFID Data Processing with a Data Stream Query
//! Language* (Bai, Wang, Liu, Zaniolo, Liu — ICDE 2007): a DSMS with a
//! SQL-based continuous query language extended with the ESL-EV temporal
//! event operators — `SEQ`, star sequences, `EXCEPTION_SEQ` /
//! `CLEVEL_SEQ`, Tuple Pairing Modes, and the paper's sliding-window
//! extensions.
//!
//! This crate is the facade: it re-exports the workspace layers.
//!
//! | Layer | Crate | What it is |
//! |---|---|---|
//! | [`dsms`] | `eslev-dsms` | the stream engine substrate (tuples, windows, operators, tables, UDAs/UDFs) |
//! | [`core`] | `eslev-core` | the paper's contribution: temporal event detection |
//! | [`rfid`] | `eslev-rfid` | EPC codec, ALE patterns, simulated readers, scenario workloads |
//! | [`lang`] | `eslev-lang` | the ESL-EV SQL dialect: parser + planner |
//! | [`baseline`] | `eslev-baseline` | RCEDA-style event-graph engine and naive-join comparators |
//!
//! # Quickstart
//!
//! ```
//! use eslev::prelude::*;
//!
//! let mut engine = Engine::new();
//! eslev::rfid::epc::register_epc_udfs(engine.functions_mut());
//! execute_script(
//!     &mut engine,
//!     "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);",
//! )
//! .unwrap();
//! let query = execute(
//!     &mut engine,
//!     "SELECT count(tag_id) FROM readings WHERE tag_id LIKE '20.%.%'",
//! )
//! .unwrap();
//! let rows = query.collector().unwrap().clone();
//! engine
//!     .push(
//!         "readings",
//!         vec![
//!             Value::str("dock-1"),
//!             Value::str("20.17.5001"),
//!             Value::Ts(Timestamp::from_secs(1)),
//!         ],
//!     )
//!     .unwrap();
//! assert_eq!(rows.take()[0].value(0), &Value::Int(1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod repl;

pub use eslev_baseline as baseline;
pub use eslev_core as core;
pub use eslev_dsms as dsms;
pub use eslev_lang as lang;
pub use eslev_rfid as rfid;

/// Everything a typical application needs.
pub mod prelude {
    pub use eslev_core::prelude::*;
    pub use eslev_dsms::prelude::*;
    pub use eslev_lang::prelude::*;
    pub use eslev_rfid::prelude::*;
}
