//! The interactive ESL-EV shell (see `src/bin/eslev.rs`).
//!
//! A line-oriented REPL over one [`Engine`] — or, with `--shards N`, an
//! EPC-partitioned [`ShardedEngine`]: SQL statements end with `;` and
//! execute through the language front-end (broadcast to every shard in
//! sharded mode); `?`-prefixed queries run as ad-hoc snapshot queries;
//! `.`-commands drive simulation — feeding scenario workloads, advancing
//! stream time, materializing windows and inspecting query state. The
//! logic lives here (library) so tests can drive the shell without a
//! subprocess.

use crate::prelude::*;
use eslev_dsms::engine::QueryStats;
use std::fmt::Write as _;

/// The engine behind the shell: one inline engine, or a shard router in
/// front of N worker-thread engines. One lives per shell, so the size
/// skew between the variants costs nothing.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Single(Engine),
    Sharded(ShardedEngine),
}

/// Where `.poll` reads a query's rows from.
enum PollSource {
    /// Single mode: the collector itself.
    Local(Collector),
    /// Sharded mode: a merge slot of the router.
    Merged(usize),
}

/// Summary of one statement's effect, shippable across the worker-thread
/// boundary in sharded mode.
enum SqlEffect {
    Created,
    Modified(usize),
    Registered,
    Collected(String),
}

/// REPL state: the engine plus collectors of registered SELECTs.
pub struct Repl {
    backend: Backend,
    /// `(query name, poll source)` for bare SELECTs, in registration order.
    collectors: Vec<(String, PollSource)>,
    /// Partial statement buffer (until `;`).
    pending: String,
}

impl Default for Repl {
    fn default() -> Self {
        Repl::new()
    }
}

impl Repl {
    /// Fresh single-engine shell with EPC UDFs pre-registered.
    pub fn new() -> Repl {
        let mut engine = Engine::new();
        register_epc_udfs(engine.functions_mut());
        register_epc_match_udf(engine.functions_mut());
        Repl {
            backend: Backend::Single(engine),
            collectors: Vec::new(),
            pending: String::new(),
        }
    }

    /// Fresh shell over an EPC-partitioned [`ShardedEngine`] with
    /// `shards` workers. SQL statements are broadcast to every shard;
    /// `.poll` reads deterministically merged output.
    pub fn with_shards(shards: usize) -> Result<Repl, DsmsError> {
        Repl::with_config(Some(shards), false, false)
    }

    /// Fresh shell with every option explicit: optional sharding,
    /// multi-query shared execution (`--share`), which routes
    /// fingerprint-equal continuous queries through one physical chain
    /// per engine (inspect it with `SHOW SHARED`), and the columnar
    /// batch path (`--columnar`), which runs capable operator chains
    /// over SoA [`ColumnBatch`]es instead of row slices (inspect the
    /// chosen path with `EXPLAIN ANALYZE`).
    ///
    /// [`ColumnBatch`]: eslev_dsms::batch::ColumnBatch
    pub fn with_config(
        shards: Option<usize>,
        share: bool,
        columnar: bool,
    ) -> Result<Repl, DsmsError> {
        match shards {
            None => {
                let mut r = Repl::new();
                let Backend::Single(e) = &mut r.backend else {
                    unreachable!()
                };
                e.set_shared_execution(share);
                e.set_columnar(columnar);
                Ok(r)
            }
            Some(n) => {
                let se = ShardedEngine::build(n, 1024, ShardSpec::new(), move |e| {
                    e.set_shared_execution(share);
                    e.set_columnar(columnar);
                    register_epc_udfs(e.functions_mut());
                    register_epc_match_udf(e.functions_mut());
                    Ok(vec![])
                })?;
                Ok(Repl {
                    backend: Backend::Sharded(se),
                    collectors: Vec::new(),
                    pending: String::new(),
                })
            }
        }
    }

    /// Access to the underlying engine (tests).
    ///
    /// # Panics
    /// In sharded mode — the engines live on their worker threads.
    pub fn engine(&self) -> &Engine {
        match &self.backend {
            Backend::Single(e) => e,
            Backend::Sharded(_) => panic!("engine() is single-mode only; use sharded()"),
        }
    }

    /// The shard router, when running with `--shards` (tests).
    pub fn sharded(&self) -> Option<&ShardedEngine> {
        match &self.backend {
            Backend::Sharded(se) => Some(se),
            Backend::Single(_) => None,
        }
    }

    /// Feed one input line; returns the text to print (possibly empty,
    /// e.g. while a multi-line statement is still open).
    pub fn line(&mut self, input: &str) -> String {
        let trimmed = input.trim();
        if trimmed.is_empty() {
            return String::new();
        }
        if self.pending.is_empty() {
            if let Some(cmd) = trimmed.strip_prefix('.') {
                return self.command(cmd);
            }
            if let Some(q) = trimmed.strip_prefix('?') {
                return self.ad_hoc(q);
            }
            // Observability statements are intercepted before the SQL
            // parser: they are shell-level, not part of the language.
            if let Some(out) = self.observability(trimmed) {
                return out;
            }
        }
        self.pending.push_str(input);
        self.pending.push('\n');
        if !trimmed.ends_with(';') {
            return String::new();
        }
        let stmt = std::mem::take(&mut self.pending);
        self.execute(&stmt)
    }

    fn execute(&mut self, sql: &str) -> String {
        match &mut self.backend {
            Backend::Single(engine) => match execute_script(engine, sql) {
                Err(e) => format!("error: {e}"),
                Ok(outcomes) => {
                    let mut fx = Vec::new();
                    let mut sources = Vec::new();
                    for o in outcomes {
                        match o {
                            ExecOutcome::Created => fx.push(SqlEffect::Created),
                            ExecOutcome::Modified(n) => fx.push(SqlEffect::Modified(n)),
                            ExecOutcome::Registered(_) => fx.push(SqlEffect::Registered),
                            ExecOutcome::Collected(id, c) => {
                                fx.push(SqlEffect::Collected(engine.query_name(id).to_string()));
                                sources.push(PollSource::Local(c));
                            }
                        }
                    }
                    self.render_effects(fx, sources)
                }
            },
            Backend::Sharded(se) => {
                let owned = sql.to_string();
                let res = se.exec_with_outputs(move |e| {
                    let outcomes = execute_script(e, &owned)?;
                    let mut fx = Vec::new();
                    let mut collectors = Vec::new();
                    for o in outcomes {
                        match o {
                            ExecOutcome::Created => fx.push(SqlEffect::Created),
                            ExecOutcome::Modified(n) => fx.push(SqlEffect::Modified(n)),
                            ExecOutcome::Registered(_) => fx.push(SqlEffect::Registered),
                            ExecOutcome::Collected(id, c) => {
                                fx.push(SqlEffect::Collected(e.query_name(id).to_string()));
                                collectors.push(c);
                            }
                        }
                    }
                    Ok((fx, collectors))
                });
                match res {
                    Err(e) => format!("error: {e}"),
                    Ok((mut per_shard, slots)) => {
                        // Shards are replicas; shard 0's summary speaks
                        // for all, and the new merge slots line up with
                        // its Collected entries in order.
                        let fx = if per_shard.is_empty() {
                            Vec::new()
                        } else {
                            per_shard.remove(0)
                        };
                        let sources = slots.into_iter().map(PollSource::Merged).collect();
                        self.render_effects(fx, sources)
                    }
                }
            }
        }
    }

    /// Render statement effects, registering any collected queries.
    fn render_effects(&mut self, fx: Vec<SqlEffect>, sources: Vec<PollSource>) -> String {
        let mut out = String::new();
        let mut sources = sources.into_iter();
        for f in fx {
            match f {
                SqlEffect::Created => out.push_str("created.\n"),
                SqlEffect::Modified(n) => {
                    let _ = writeln!(out, "{n} rows modified.");
                }
                SqlEffect::Registered => out.push_str("continuous query registered.\n"),
                SqlEffect::Collected(name) => {
                    let Some(src) = sources.next() else { continue };
                    let _ = writeln!(
                        out,
                        "collecting query #{} ({name}); read it with .poll {}",
                        self.collectors.len(),
                        self.collectors.len()
                    );
                    self.collectors.push((name, src));
                }
            }
        }
        out
    }

    /// Route one row to the backend.
    fn push_row(&mut self, stream: &str, values: Vec<Value>) -> Result<(), DsmsError> {
        match &mut self.backend {
            Backend::Single(e) => e.push(stream, values),
            Backend::Sharded(se) => se.push(stream, values),
        }
    }

    /// Stream-time high-water mark of the backend (scenario re-runs
    /// shift their timestamps past it).
    fn current_time(&self) -> Timestamp {
        match &self.backend {
            Backend::Single(e) => e.now(),
            Backend::Sharded(se) => se.sent_watermarks().high_water(),
        }
    }

    /// Advance stream time on the backend.
    fn advance_time(&mut self, ts: Timestamp) -> Result<(), DsmsError> {
        match &mut self.backend {
            Backend::Single(e) => e.advance_to(ts),
            Backend::Sharded(se) => se.advance_to(ts),
        }
    }

    /// A stream's schema (shard 0 speaks for all in sharded mode).
    fn schema_of(&self, stream: &str) -> Result<SchemaRef, DsmsError> {
        match &self.backend {
            Backend::Single(e) => e.stream_schema(stream),
            Backend::Sharded(se) => {
                let name = stream.to_string();
                se.exec_all(move |e| e.stream_schema(&name))?
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| Err(DsmsError::plan("sharded engine has no shards")))
            }
        }
    }

    /// Run DDL, tolerating duplicate-name errors (so scenarios re-run).
    fn ensure_ddl(&mut self, ddl: &str) -> Result<(), DsmsError> {
        match &mut self.backend {
            Backend::Single(engine) => {
                for stmt in ddl.split(';').filter(|s| !s.trim().is_empty()) {
                    match execute(engine, stmt) {
                        Ok(_) => {}
                        Err(DsmsError::Duplicate(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            }
            Backend::Sharded(se) => {
                let owned = ddl.to_string();
                se.exec_with_outputs(move |e| {
                    for stmt in owned.split(';').filter(|s| !s.trim().is_empty()) {
                        match execute(e, stmt) {
                            Ok(_) => {}
                            Err(DsmsError::Duplicate(_)) => {}
                            Err(e) => return Err(e),
                        }
                    }
                    Ok(((), Vec::new()))
                })?;
                Ok(())
            }
        }
    }

    /// Merged per-query flow counters (summed across shards).
    fn merged_query_stats(&self) -> Result<Vec<QueryStats>, DsmsError> {
        match &self.backend {
            Backend::Single(e) => Ok(e.query_stats()),
            Backend::Sharded(se) => {
                let per_shard = se.exec_all(|e| e.query_stats())?;
                let mut iter = per_shard.into_iter();
                let mut base = iter.next().unwrap_or_default();
                for stats in iter {
                    for (b, s) in base.iter_mut().zip(stats) {
                        b.active |= s.active;
                        b.emitted += s.emitted;
                        b.retained += s.retained;
                        b.tuples_in += s.tuples_in;
                        b.tuples_out += s.tuples_out;
                        b.state_key_bytes += s.state_key_bytes;
                        // Worst shard speaks for the tail latency.
                        b.wall_p99_ns = b.wall_p99_ns.max(s.wall_p99_ns);
                    }
                }
                Ok(base)
            }
        }
    }

    /// Merged per-stream stats (pushes summed, stream time maxed).
    fn merged_stream_stats(&self) -> Result<Vec<StreamInfo>, DsmsError> {
        match &self.backend {
            Backend::Single(e) => Ok(e.stream_stats()),
            Backend::Sharded(se) => {
                let per_shard = se.exec_all(|e| e.stream_stats())?;
                let mut iter = per_shard.into_iter();
                let mut base = iter.next().unwrap_or_default();
                for stats in iter {
                    for (b, s) in base.iter_mut().zip(stats) {
                        b.pushed += s.pushed;
                        b.last_ts = b.last_ts.max(s.last_ts);
                        b.buffered += s.buffered;
                        b.lag_ms = b.lag_ms.max(s.lag_ms);
                    }
                }
                Ok(base)
            }
        }
    }

    /// Interner dictionary size `(entries, bytes)`, summed across shards
    /// (each shard owns an independent dictionary, so the sum is what
    /// the whole process holds).
    fn merged_interner_stats(&self) -> Result<(usize, usize), DsmsError> {
        match &self.backend {
            Backend::Single(e) => Ok(e.interner_stats()),
            Backend::Sharded(se) => {
                let per_shard = se.exec_all(|e| e.interner_stats())?;
                Ok(per_shard
                    .into_iter()
                    .fold((0, 0), |(en, by), (e, b)| (en + e, by + b)))
            }
        }
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.backend {
            Backend::Single(e) => e.metrics_snapshot(),
            Backend::Sharded(se) => se.metrics_snapshot(),
        }
    }

    /// Handle `SHOW STATS`, `SHOW STREAMS`, `SHOW SHARDS`, `SHOW
    /// RECOVERY`, `CHECKPOINT` and `EXPLAIN <query>` (case-insensitive,
    /// optional trailing `;`). Returns `None` when the line is not one
    /// of them, letting it flow to the SQL front-end.
    fn observability(&mut self, trimmed: &str) -> Option<String> {
        let stmt = trimmed.trim_end_matches(';').trim();
        let mut words = stmt.split_whitespace();
        let first = words.next()?.to_ascii_uppercase();
        match first.as_str() {
            "SHOW" => {
                let what = words.next()?.to_ascii_uppercase();
                if words.next().is_some() {
                    return None;
                }
                match what.as_str() {
                    "STATS" => Some(match self.merged_query_stats() {
                        Ok(s) => {
                            let mut out = render_stats(&s);
                            match self.merged_interner_stats() {
                                Ok((entries, bytes)) => {
                                    let _ =
                                        writeln!(out, "interner entries={entries} bytes={bytes}");
                                }
                                Err(e) => {
                                    let _ = writeln!(out, "interner error: {e}");
                                }
                            }
                            out
                        }
                        Err(e) => format!("error: {e}"),
                    }),
                    "STREAMS" => Some(match self.merged_stream_stats() {
                        Ok(s) => render_streams(&s),
                        Err(e) => format!("error: {e}"),
                    }),
                    "SHARDS" => Some(self.show_shards()),
                    "SHARED" => Some(self.show_shared()),
                    "RECOVERY" => Some(self.show_recovery()),
                    "REJECTED" => Some(self.show_rejected()),
                    _ => None,
                }
            }
            "CHECKPOINT" => {
                if words.next().is_some() {
                    return None;
                }
                Some(self.run_checkpoint())
            }
            "EXPLAIN" => {
                let name = words.next()?;
                if name.eq_ignore_ascii_case("ANALYZE") {
                    // `EXPLAIN ANALYZE <sql|name>`: the optimized plan
                    // annotated with live per-operator runtime stats.
                    let arg = stmt[first.len()..].trim_start()[name.len()..].trim();
                    if arg.is_empty() {
                        return Some("usage: EXPLAIN ANALYZE <sql statement | query name>".into());
                    }
                    return Some(self.explain_analyze(arg));
                }
                if words.next().is_some() {
                    // Multi-word: `EXPLAIN <sql>` renders the logical
                    // plan (naive, rewrites, optimized) for a statement
                    // without registering it.
                    let sql = stmt[first.len()..].trim();
                    return Some(match &self.backend {
                        Backend::Single(engine) => match eslev_lang::explain(engine, sql) {
                            Ok(s) => s,
                            Err(e) => format!("error: {e}"),
                        },
                        Backend::Sharded(se) => {
                            let owned = sql.to_string();
                            match se.exec_all(move |e| eslev_lang::explain(e, &owned)) {
                                Err(e) => format!("error: {e}"),
                                Ok(rs) => match rs.into_iter().next() {
                                    Some(Ok(s)) => s,
                                    Some(Err(e)) => format!("error: {e}"),
                                    None => "error: no shards".to_string(),
                                },
                            }
                        }
                    });
                }
                match &self.backend {
                    Backend::Single(engine) => match engine.query_report_by_name(name) {
                        Some(r) => Some(r.render()),
                        None => Some(format!(
                            "error: no query named `{name}` — SHOW STATS lists them"
                        )),
                    },
                    Backend::Sharded(se) => {
                        let owned = name.to_string();
                        let reports = se
                            .exec_all(move |e| e.query_report_by_name(&owned).map(|r| r.render()));
                        Some(match reports {
                            Err(e) => format!("error: {e}"),
                            Ok(rs) => match rs.into_iter().next().flatten() {
                                Some(r) => {
                                    format!("shard 0 (other shards run identical plans):\n{r}")
                                }
                                None => format!(
                                    "error: no query named `{name}` — SHOW STATS lists them"
                                ),
                            },
                        })
                    }
                }
            }
            _ => None,
        }
    }

    /// Render `EXPLAIN ANALYZE <sql|name>` via
    /// [`eslev_lang::explain_analyze`]. Sharded mode reads shard 0 —
    /// every shard runs an identical plan, only the slice of data
    /// differs.
    fn explain_analyze(&self, arg: &str) -> String {
        match &self.backend {
            Backend::Single(engine) => match eslev_lang::explain_analyze(engine, arg) {
                Ok(s) => s,
                Err(e) => format!("error: {e}"),
            },
            Backend::Sharded(se) => {
                let owned = arg.to_string();
                match se.exec_all(move |e| eslev_lang::explain_analyze(e, &owned)) {
                    Err(e) => format!("error: {e}"),
                    Ok(rs) => match rs.into_iter().next() {
                        Some(Ok(s)) => {
                            format!("shard 0 (other shards run identical plans):\n{s}")
                        }
                        Some(Err(e)) => format!("error: {e}"),
                        None => "error: no shards".to_string(),
                    },
                }
            }
        }
    }

    /// `.trace on|off` toggles the flight recorder; `.trace <path>`
    /// drains the recorded events (merged across shards in sharded
    /// mode) into a chrome://tracing JSON file.
    fn trace_cmd(&mut self, args: &[&str]) -> String {
        match args.first().copied() {
            Some(toggle @ ("on" | "off")) => {
                let on = toggle == "on";
                let res = match &mut self.backend {
                    Backend::Single(e) => {
                        e.set_tracing(on);
                        Ok(())
                    }
                    Backend::Sharded(se) => se.set_tracing(on),
                };
                match res {
                    Ok(()) => format!("tracing {}.", if on { "enabled" } else { "disabled" }),
                    Err(e) => format!("error: {e}"),
                }
            }
            Some(path) => {
                let events = match &mut self.backend {
                    Backend::Single(e) => Ok(e.take_trace()),
                    Backend::Sharded(se) => se.take_trace(),
                };
                match events {
                    Err(e) => format!("error: {e}"),
                    Ok(events) if events.is_empty() => {
                        "no trace events recorded — `.trace on` first, then feed data.".to_string()
                    }
                    Ok(events) => match std::fs::write(path, chrome_trace_json(&events)) {
                        Ok(()) => format!(
                            "wrote {} trace events to `{path}` — load it at chrome://tracing.",
                            events.len()
                        ),
                        Err(e) => format!("error: cannot write `{path}`: {e}"),
                    },
                }
            }
            None => "usage: .trace on|off|<path.json>".to_string(),
        }
    }

    /// Render `SHOW SHARED`: one row per shared subplan chain. Sharded
    /// mode merges the per-shard rows (every shard runs identical
    /// chains, so flow counters sum and the subscriber list is shared).
    fn show_shared(&self) -> String {
        let stats = match &self.backend {
            Backend::Single(e) => {
                if !e.shared_execution() {
                    return "shared execution is off — restart with --share to fuse \
                            fingerprint-equal queries.\n"
                        .to_string();
                }
                e.shared_stats()
            }
            Backend::Sharded(se) => {
                let per_shard = match se.exec_all(|e| (e.shared_execution(), e.shared_stats())) {
                    Ok(s) => s,
                    Err(e) => return format!("error: {e}"),
                };
                if per_shard.iter().any(|(on, _)| !on) {
                    return "shared execution is off — restart with --share to fuse \
                            fingerprint-equal queries.\n"
                        .to_string();
                }
                let mut iter = per_shard.into_iter().map(|(_, s)| s);
                let mut base = iter.next().unwrap_or_default();
                for stats in iter {
                    for (b, s) in base.iter_mut().zip(stats) {
                        b.tuples_in += s.tuples_in;
                        b.memo_hits += s.memo_hits;
                        b.retained += s.retained;
                        b.state_key_bytes += s.state_key_bytes;
                    }
                }
                base
            }
        };
        let mut out = String::new();
        for s in &stats {
            let _ = writeln!(
                out,
                "chain {:<24} fp=0x{:016x} shared_by=[{}] active={} in={} memo_hits={} \
                 retained={} key_bytes={}",
                s.label,
                s.fingerprint,
                s.subscribers.join(", "),
                s.active_subscribers,
                s.tuples_in,
                s.memo_hits,
                s.retained,
                s.state_key_bytes,
            );
        }
        if out.is_empty() {
            out.push_str("no shared chains yet — register two fingerprint-equal queries.\n");
        }
        out
    }

    /// Render `SHOW SHARDS`: per-shard routing and progress.
    fn show_shards(&self) -> String {
        let Backend::Sharded(se) = &self.backend else {
            return "not sharded — restart with --shards N to partition by EPC.\n".to_string();
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} shards, low watermark {}",
            se.shards(),
            se.low_watermark()
        );
        for s in se.shard_stats() {
            let _ = writeln!(
                out,
                "shard {:<3} routed={:<10} queue={:<6} cause={:<10} watermark={}",
                s.shard, s.routed, s.queue_depth, s.processed_cause, s.watermark
            );
        }
        let routes = se.routing();
        if routes.is_empty() {
            out.push_str("no routes resolved yet (routes bind on first push).\n");
        } else {
            for (stream, rule) in routes {
                let _ = writeln!(out, "route {stream:<24} {rule}");
            }
        }
        out
    }

    /// Render `SHOW REJECTED`: the bounded dead-letter buffer — rows
    /// rejected at ingest, tagged `malformed` (schema violation) or
    /// `late` (behind the disorder slack). Sharded mode merges the
    /// router's own rejections with every shard engine's buffer.
    fn show_rejected(&self) -> String {
        let letters: Vec<(Option<usize>, DeadLetter)> = match &self.backend {
            Backend::Single(e) => e.dead_letters().map(|d| (None, d.clone())).collect(),
            Backend::Sharded(se) => match se.dead_letters() {
                Ok(ls) => ls,
                Err(e) => return format!("error: {e}"),
            },
        };
        if letters.is_empty() {
            return "no rejected rows (buffer keeps the newest 256).\n".to_string();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} rejected row(s), oldest first (buffer keeps the newest 256):",
            letters.len()
        );
        for (shard, d) in &letters {
            let origin = match shard {
                None => "-".to_string(),
                Some(i) => i.to_string(),
            };
            let row: Vec<String> = d.values.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(
                out,
                "shard {:<3} stream {:<16} reason {:<9} [{}]  {}",
                origin,
                d.stream,
                d.reason.to_string(),
                row.join(", "),
                d.error
            );
        }
        out
    }

    /// Render `CHECKPOINT`: snapshot every stateful operator (and, when
    /// sharded, truncate the replayed journal prefix).
    fn run_checkpoint(&mut self) -> String {
        match &mut self.backend {
            Backend::Single(engine) => match engine.checkpoint() {
                Ok(ckpt) => format!(
                    "checkpoint taken ({} bytes of operator state).\n",
                    ckpt.to_bytes().len()
                ),
                Err(e) => format!("error: {e}"),
            },
            Backend::Sharded(se) => match se.checkpoint() {
                Ok(()) => {
                    let stats = se.recovery_stats();
                    let mut out = String::new();
                    let _ = writeln!(
                        out,
                        "checkpoint taken across {} shards (round {}).",
                        se.shards(),
                        stats.checkpoints
                    );
                    for s in &stats.shards {
                        let _ = writeln!(
                            out,
                            "shard {:<3} checkpoint_cause={:<10} journal_len={}",
                            s.shard,
                            s.checkpoint_cause
                                .map_or_else(|| "-".to_string(), |c| c.to_string()),
                            s.journal_len
                        );
                    }
                    out
                }
                Err(e) => format!("error: {e}"),
            },
        }
    }

    /// Render `SHOW RECOVERY`: checkpoint/restart/replay counters and
    /// per-shard journal state.
    fn show_recovery(&self) -> String {
        let Backend::Sharded(se) = &self.backend else {
            return "not sharded — restart with --shards N for supervised recovery \
                    (CHECKPOINT still snapshots operator state in-process).\n"
                .to_string();
        };
        let stats = se.recovery_stats();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "checkpoints={} restarts={} replayed_tuples={}",
            stats.checkpoints, stats.restarts, stats.replayed_tuples
        );
        for s in &stats.shards {
            let _ = writeln!(
                out,
                "shard {:<3} journal_len={:<8} appended={:<10} checkpoint_cause={:<10} last_panic={}",
                s.shard,
                s.journal_len,
                s.journal_appended,
                s.checkpoint_cause.map_or_else(|| "-".to_string(), |c| c.to_string()),
                s.last_panic.as_deref().unwrap_or("-")
            );
        }
        out
    }

    fn ad_hoc(&mut self, sql: &str) -> String {
        match &self.backend {
            Backend::Single(engine) => match ad_hoc(engine, sql) {
                Err(e) => format!("error: {e}"),
                Ok(rows) => render_rows(&rows),
            },
            Backend::Sharded(_) => {
                "error: ad-hoc snapshot queries are not supported with --shards".to_string()
            }
        }
    }

    fn command(&mut self, cmd: &str) -> String {
        let mut parts = cmd.split_whitespace();
        let verb = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match verb {
            "help" => HELP.to_string(),
            "stats" => match self.merged_query_stats() {
                Ok(s) => render_stats(&s),
                Err(e) => format!("error: {e}"),
            },
            "metrics" => match args.first().copied().unwrap_or("prom") {
                "prom" => self.metrics_snapshot().to_prometheus(),
                "json" => self.metrics_snapshot().to_json(),
                other => format!("unknown format `{other}` — use prom or json"),
            },
            "advance" => match args.first().and_then(|s| s.parse::<u64>().ok()) {
                Some(secs) => {
                    let target = self.current_time() + Duration::from_secs(secs);
                    match self.advance_time(target) {
                        Ok(()) => format!("stream time advanced to {target}"),
                        Err(e) => format!("error: {e}"),
                    }
                }
                None => "usage: .advance <seconds>".to_string(),
            },
            "materialize" => match (args.first(), args.get(1).and_then(|s| s.parse::<u64>().ok())) {
                (Some(stream), Some(secs)) => match &mut self.backend {
                    Backend::Single(engine) => match engine
                        .materialize(stream, WindowExtent::Preceding(Duration::from_secs(secs)))
                    {
                        Ok(_) => format!("materialized `{stream}` over the last {secs} s; query it with ?SELECT ..."),
                        Err(e) => format!("error: {e}"),
                    },
                    Backend::Sharded(_) => {
                        "error: .materialize is not supported with --shards".to_string()
                    }
                },
                _ => "usage: .materialize <stream> <seconds>".to_string(),
            },
            "tolerate" => match (args.first(), args.get(1).and_then(|s| s.parse::<f64>().ok())) {
                (Some(stream), Some(secs)) if secs >= 0.0 => {
                    let slack = Duration::from_micros((secs * 1_000_000.0) as u64);
                    let res = match &mut self.backend {
                        Backend::Single(engine) => engine.set_disorder_tolerance(stream, slack),
                        Backend::Sharded(se) => se.set_disorder_tolerance(stream, slack),
                    };
                    match res {
                        Ok(()) => format!(
                            "`{stream}` now tolerates {secs} s of disorder; \
                             late-beyond-slack rows land in SHOW REJECTED"
                        ),
                        Err(e) => format!("error: {e}"),
                    }
                }
                _ => "usage: .tolerate <stream> <seconds>".to_string(),
            },
            "poll" => {
                let idx = args.first().and_then(|s| s.parse::<usize>().ok());
                match idx {
                    Some(i) => match self.poll(i) {
                        Some(out) => out,
                        None => format!("no collected query #{i}"),
                    },
                    None => {
                        let mut out = String::new();
                        for (i, (name, src)) in self.collectors.iter().enumerate() {
                            let pending = match src {
                                PollSource::Local(c) => c.len(),
                                PollSource::Merged(slot) => match &self.backend {
                                    Backend::Sharded(se) => se.buffered(*slot),
                                    Backend::Single(_) => 0,
                                },
                            };
                            let _ = writeln!(out, "#{i} {name}: {pending} rows pending");
                        }
                        if out.is_empty() {
                            out.push_str("no collected queries.\n");
                        }
                        out
                    }
                }
            }
            "trace" => self.trace_cmd(&args),
            "feed" => match (args.first(), args.get(1)) {
                (Some(stream), Some(path)) => self.feed_csv(stream, path),
                _ => "usage: .feed <stream> <file.csv>   (columns in schema order;                       TIMESTAMP columns as seconds, e.g. 12.5)"
                    .to_string(),
            },
            "scenario" => self.scenario(&args),
            "quit" | "exit" => "bye.".to_string(),
            other => format!("unknown command `.{other}` — try .help"),
        }
    }

    /// Drain one collected query; `None` when the index is unknown.
    fn poll(&mut self, i: usize) -> Option<String> {
        let (name, src) = self.collectors.get(i)?;
        let name = name.clone();
        let rows = match src {
            PollSource::Local(c) => c.take(),
            PollSource::Merged(slot) => {
                let slot = *slot;
                let Backend::Sharded(se) = &mut self.backend else {
                    return Some(format!("{name}: merge slot without a sharded backend"));
                };
                // Flush so the merge frontier covers everything routed.
                if let Err(e) = se.flush() {
                    return Some(format!("error: {e}"));
                }
                match se.take_output(slot) {
                    Ok(rows) => rows,
                    Err(e) => return Some(format!("error: {e}")),
                }
            }
        };
        Some(format!(
            "{name}: {} new rows\n{}",
            rows.len(),
            render_rows(&rows)
        ))
    }

    /// Generate and feed a named scenario workload; creates the streams
    /// the scenario needs when absent.
    fn scenario(&mut self, args: &[&str]) -> String {
        use crate::rfid::scenario as sc;
        let Some(name) = args.first() else {
            return "usage: .scenario <dedup|packing|clinic|door|qc|tracking|vitals> [n]"
                .to_string();
        };
        let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
        // Re-running a scenario must not rewind stream time: shift every
        // generated timestamp past the engine's current high-water mark.
        let base = Duration::from_micros(self.current_time().as_micros());
        let shift = move |ts: Timestamp| ts + base;
        let result: Result<String, DsmsError> = (|| match *name {
            "dedup" => {
                self.ensure_ddl(
                    "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP)",
                )?;
                let w = sc::dedup::generate(&sc::dedup::DedupConfig {
                    presences: n,
                    ..Default::default()
                });
                for r in &w.readings {
                    self.push_row(
                        "readings",
                        vec![
                            Value::str(&r.reader),
                            Value::str(&r.tag),
                            Value::Ts(shift(r.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} raw readings ({} physical presences) into `readings`",
                    w.readings.len(),
                    w.unique_presences
                ))
            }
            "packing" => {
                self.ensure_ddl(
                    "CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP)",
                )?;
                let w = sc::packing::generate(&sc::packing::PackingConfig {
                    cases: n,
                    ..Default::default()
                });
                let feed = merge_feeds(vec![
                    ("r1".into(), w.products.clone()),
                    ("r2".into(), w.cases.clone()),
                ]);
                for item in &feed {
                    self.push_row(
                        &item.stream,
                        vec![
                            Value::str(&item.reading.reader),
                            Value::str(&item.reading.tag),
                            Value::Ts(shift(item.reading.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} product + {} case readings into `R1`/`R2` ({} cases of truth)",
                    w.products.len(),
                    w.cases.len(),
                    w.truth.len()
                ))
            }
            "clinic" => {
                self.ensure_ddl(
                    "CREATE STREAM A1 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM A2 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM A3 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP)",
                )?;
                let w = sc::clinic::generate(&sc::clinic::ClinicConfig {
                    runs: n,
                    ..Default::default()
                });
                let streams = ["a1", "a2", "a3"];
                for (port, r) in &w.feed {
                    self.push_row(
                        streams[*port],
                        vec![
                            Value::str(&r.reader),
                            Value::str(&r.tag),
                            Value::Ts(shift(r.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} operations ({} runs, {} violations) into `A1`/`A2`/`A3`; \
                     .advance past the deadline to flush timeouts",
                    w.feed.len(),
                    w.truth.len(),
                    w.violations
                ))
            }
            "door" => {
                self.ensure_ddl(
                    "CREATE STREAM tag_readings (tagid VARCHAR, tagtype VARCHAR, tagtime TIMESTAMP)",
                )?;
                let w = sc::door::generate(&sc::door::DoorConfig {
                    item_exits: n,
                    ..Default::default()
                });
                for r in &w.readings {
                    self.push_row(
                        "tag_readings",
                        vec![
                            Value::str(&r.tag),
                            Value::str(r.tagtype),
                            Value::Ts(shift(r.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} door readings ({} thefts of truth) into `tag_readings`",
                    w.readings.len(),
                    w.thefts.len()
                ))
            }
            "qc" => {
                self.ensure_ddl(
                    "CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP)",
                )?;
                let w = sc::qc_line::generate(&sc::qc_line::QcConfig {
                    products: n,
                    ..Default::default()
                });
                let feeds: Vec<(String, Vec<Reading>)> = w
                    .feeds
                    .iter()
                    .enumerate()
                    .map(|(i, f)| (format!("c{}", i + 1), f.clone()))
                    .collect();
                for item in merge_feeds(feeds) {
                    self.push_row(
                        &item.stream,
                        vec![
                            Value::str(&item.reading.reader),
                            Value::str(&item.reading.tag),
                            Value::Ts(shift(item.reading.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed the QC line ({} products, {} completed) into `C1`..`C4`",
                    n,
                    w.completed.len()
                ))
            }
            "tracking" => {
                self.ensure_ddl(
                    "CREATE STREAM tag_locations (readerid VARCHAR, tid VARCHAR, tagtime TIMESTAMP, loc VARCHAR)",
                )?;
                let w = sc::tracking::generate(&sc::tracking::TrackingConfig::default());
                for r in &w.readings {
                    self.push_row(
                        "tag_locations",
                        vec![
                            Value::str(&r.reader),
                            Value::str(&r.tag),
                            Value::Ts(shift(r.ts)),
                            Value::str(&r.location),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} location readings ({} distinct pairs) into `tag_locations`",
                    w.readings.len(),
                    w.distinct_pairs
                ))
            }
            "vitals" => {
                self.ensure_ddl("CREATE STREAM vitals (patient VARCHAR, bp INT, t TIMESTAMP)")?;
                let w = sc::vitals::generate(&sc::vitals::VitalsConfig::default());
                for r in &w.readings {
                    self.push_row(
                        "vitals",
                        vec![
                            Value::str(&r.patient),
                            Value::Int(r.bp),
                            Value::Ts(shift(r.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} vitals readings ({} episodes) into `vitals`",
                    w.readings.len(),
                    w.episodes.len()
                ))
            }
            other => Ok(format!("unknown scenario `{other}` — try .help")),
        })();
        match result {
            Ok(s) => s,
            Err(e) => format!("error: {e}"),
        }
    }
}

impl Repl {
    /// Feed a headerless CSV file into a stream: one reading per line,
    /// columns in schema order, TIMESTAMP columns given in (fractional)
    /// seconds. Lines starting with `#` are skipped.
    fn feed_csv(&mut self, stream: &str, path: &str) -> String {
        let schema = match self.schema_of(stream) {
            Ok(s) => s,
            Err(e) => return format!("error: {e}"),
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return format!("error: cannot read `{path}`: {e}"),
        };
        let mut pushed = 0usize;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != schema.arity() {
                return format!(
                    "error: line {}: expected {} fields, got {} (pushed {pushed} rows)",
                    lineno + 1,
                    schema.arity(),
                    fields.len()
                );
            }
            let mut values = Vec::with_capacity(fields.len());
            for (f, col) in fields.iter().zip(&schema.columns) {
                let v = match col.ty {
                    ValueType::Str => Ok(Value::str(*f)),
                    ValueType::Int => f.parse::<i64>().map(Value::Int).map_err(|e| e.to_string()),
                    ValueType::Float => f
                        .parse::<f64>()
                        .map(Value::Float)
                        .map_err(|e| e.to_string()),
                    ValueType::Bool => f
                        .parse::<bool>()
                        .map(Value::Bool)
                        .map_err(|e| e.to_string()),
                    ValueType::Ts => f
                        .parse::<f64>()
                        .map(|secs| Value::Ts(Timestamp::from_micros((secs * 1e6) as u64)))
                        .map_err(|e| e.to_string()),
                    ValueType::Null => Ok(Value::Null),
                };
                match v {
                    Ok(v) => values.push(v),
                    Err(e) => {
                        return format!(
                            "error: line {}: bad `{}` for column {}: {e} (pushed {pushed} rows)",
                            lineno + 1,
                            f,
                            col.name
                        )
                    }
                }
            }
            if let Err(e) = self.push_row(stream, values) {
                return format!("error: line {}: {e} (pushed {pushed} rows)", lineno + 1);
            }
            pushed += 1;
        }
        format!("fed {pushed} rows from `{path}` into `{stream}`")
    }
}

fn render_rows(rows: &[Tuple]) -> String {
    let mut out = String::new();
    for r in rows.iter().take(50) {
        let _ = writeln!(out, "{r}");
    }
    if rows.len() > 50 {
        let _ = writeln!(out, "... ({} more rows)", rows.len() - 50);
    }
    out
}

fn render_stats(stats: &[QueryStats]) -> String {
    let mut out = String::new();
    for s in stats {
        let _ = writeln!(
            out,
            "{} {:<32} in={:<8} out={:<8} emitted={:<8} retained={:<8} key_bytes={:<8} p99={}ns",
            if s.active { "live" } else { "dead" },
            s.name,
            s.tuples_in,
            s.tuples_out,
            s.emitted,
            s.retained,
            s.state_key_bytes,
            s.wall_p99_ns
        );
    }
    if out.is_empty() {
        out.push_str("no queries registered.\n");
    }
    out
}

fn render_streams(streams: &[StreamInfo]) -> String {
    let mut out = String::new();
    for s in streams {
        let _ = write!(
            out,
            "{:<24} pushed={:<10} last_ts={:<14} lag_ms={}",
            s.name,
            s.pushed,
            s.last_ts.to_string(),
            s.lag_ms
        );
        if let Some(slack) = s.disorder_slack {
            let _ = write!(out, " buffered={} slack={slack}", s.buffered);
        }
        out.push('\n');
    }
    if out.is_empty() {
        out.push_str("no streams registered.\n");
    }
    out
}

const HELP: &str = r#"ESL-EV shell:
  <SQL statement>;           run a CREATE / INSERT INTO / SELECT statement
                             (bare SELECTs collect; read them with .poll)
  ?SELECT ...                one-shot ad-hoc snapshot query
                             (needs a table or a .materialize'd stream)
  SHOW STATS                 per-query flow counters (in/out/emitted/retained)
  SHOW STREAMS               per-stream push counts and stream time
  SHOW SHARDS                per-shard routing and progress (with --shards N)
  SHOW SHARED                shared subplan chains and subscribers (with --share)
  SHOW REJECTED              dead-lettered rows (malformed / late-beyond-slack)
  EXPLAIN <query>            per-operator counters and sampled latencies
  EXPLAIN <SQL statement>    logical plan, applied rewrites, physical summary
  EXPLAIN ANALYZE <sql|name> optimized plan annotated with live runtime
                             stats (rows, batches, wall ns, state bytes)
  .feed <stream> <file.csv>  feed a headerless CSV (cols in schema order,
                             TIMESTAMP columns as fractional seconds)
  .scenario <name> [n]       feed a simulated workload:
                             dedup | packing | clinic | door | qc | tracking | vitals
  .advance <seconds>         advance stream time (fires window expirations)
  .materialize <stream> <s>  keep the last <s> seconds queryable via ?SELECT
  .tolerate <stream> <s>     reorder out-of-order arrivals up to <s> seconds;
                             later rows go to SHOW REJECTED as late
  .poll [i]                  drain collected rows of query i (or list all)
  .stats                     per-query emitted/retained counters
  .metrics [prom|json]       full metrics snapshot (Prometheus text or JSON)
  .trace on|off|<path.json>  toggle the flight recorder / dump recorded
                             events as chrome://tracing JSON
  .help                      this text
  .quit                      exit
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_commands() {
        let mut r = Repl::new();
        assert!(r.line(".help").contains(".scenario"));
        assert!(r.line(".bogus").contains("unknown command"));
        assert!(r.line("").is_empty());
    }

    #[test]
    fn ddl_query_feed_poll_cycle() {
        let mut r = Repl::new();
        let out = r.line(
            "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);",
        );
        assert!(out.contains("created"), "{out}");
        // Multi-line statement.
        assert!(r.line("SELECT tag_id FROM readings").is_empty());
        let out = r.line("WHERE reader_id = 'gate-reader';");
        assert!(out.contains(".poll 0"), "{out}");
        let out = r.line(".scenario dedup 50");
        assert!(out.contains("physical presences"), "{out}");
        let out = r.line(".poll 0");
        assert!(out.contains("new rows"), "{out}");
        assert!(out.contains("tag-"), "{out}");
    }

    #[test]
    fn adhoc_and_materialize() {
        let mut r = Repl::new();
        r.line("CREATE STREAM vitals (patient VARCHAR, bp INT, t TIMESTAMP);");
        let out = r.line("?SELECT * FROM vitals");
        assert!(out.contains("materialize"), "{out}");
        let out = r.line(".materialize vitals 3600");
        assert!(out.contains("materialized"), "{out}");
        r.line(".scenario vitals");
        let out = r.line("?SELECT count(bp) FROM vitals");
        assert!(!out.contains("error"), "{out}");
    }

    #[test]
    fn scenario_reruns_without_duplicate_errors() {
        let mut r = Repl::new();
        assert!(!r.line(".scenario packing 10").contains("error"));
        assert!(!r.line(".scenario packing 10").contains("error"));
    }

    #[test]
    fn advance_and_stats() {
        let mut r = Repl::new();
        r.line("CREATE STREAM s (tagid VARCHAR, t TIMESTAMP);");
        r.line("SELECT tagid FROM s;");
        let out = r.line(".advance 60");
        assert!(out.contains("advanced"), "{out}");
        let out = r.line(".stats");
        assert!(out.contains("live"), "{out}");
    }

    #[test]
    fn feed_csv_round_trip() {
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings;");
        let dir = std::env::temp_dir().join("eslev-test-feed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("readings.csv");
        std::fs::write(
            &path,
            "# reader, tag, seconds\ngate,tag-1,1.5\ngate,tag-2,2.25\n",
        )
        .unwrap();
        let out = r.line(&format!(".feed readings {}", path.display()));
        assert!(out.contains("fed 2 rows"), "{out}");
        let out = r.line(".poll 0");
        assert!(out.contains("tag-1") && out.contains("tag-2"), "{out}");
        // Bad arity reported with line number.
        std::fs::write(&path, "only-two,fields\n").unwrap();
        let out = r.line(&format!(".feed readings {}", path.display()));
        assert!(out.contains("line 1"), "{out}");
        // Missing file / unknown stream.
        assert!(r.line(".feed readings /no/such/file.csv").contains("error"));
        assert!(r
            .line(&format!(".feed ghost {}", path.display()))
            .contains("error"));
    }

    #[test]
    fn show_stats_show_streams_and_explain() {
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings WHERE reader_id <> '';");
        r.line(".scenario dedup 20");
        // Case-insensitive, trailing semicolon optional.
        let out = r.line("show stats;");
        assert!(out.contains("live"), "{out}");
        assert!(out.contains("in="), "{out}");
        assert!(out.contains("key_bytes="), "{out}");
        assert!(out.contains("interner entries="), "{out}");
        let out = r.line("SHOW STREAMS");
        assert!(out.contains("readings"), "{out}");
        assert!(out.contains("pushed="), "{out}");
        let name = r.engine().query_stats()[0].name.clone();
        let out = r.line(&format!("EXPLAIN {name};"));
        assert!(out.contains("in="), "{out}");
        let out = r.line("EXPLAIN no_such_query");
        assert!(out.contains("error"), "{out}");
        // Non-observability SHOW-like SQL still reaches the parser.
        let out = r.line("SHOW STATS EXTRA WORDS;");
        assert!(out.starts_with("error:"), "{out}");
    }

    #[test]
    fn explain_statement_renders_logical_plan() {
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        let out = r.line("EXPLAIN SELECT tag_id FROM readings;");
        assert!(out.contains("logical:"), "{out}");
        assert!(out.contains("rewrites:"), "{out}");
        assert!(out.contains("physical:"), "{out}");
        // The statement was only planned, never registered.
        assert!(r.engine().query_stats().is_empty());
        // Errors surface instead of falling through to the SQL parser.
        let out = r.line("EXPLAIN SELECT nope FROM ghost");
        assert!(out.starts_with("error:"), "{out}");
    }

    #[test]
    fn explain_analyze_statement_and_name() {
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings WHERE reader_id <> '';");
        r.line(".scenario dedup 20");
        let out = r.line("EXPLAIN ANALYZE SELECT tag_id FROM readings WHERE reader_id <> '';");
        assert!(out.contains("optimized:"), "{out}");
        assert!(out.contains("[rows "), "{out}");
        let name = r.engine().query_stats()[0].name.clone();
        let out = r.line(&format!("explain analyze {name}"));
        assert!(out.contains("runtime:"), "{out}");
        let out = r.line("EXPLAIN ANALYZE");
        assert!(out.contains("usage:"), "{out}");
        let out = r.line("EXPLAIN ANALYZE no_such_query;");
        assert!(out.starts_with("error:"), "{out}");
    }

    #[test]
    fn sharded_explain_analyze_reads_shard_zero() {
        let mut r = Repl::with_shards(2).unwrap();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings WHERE reader_id <> '';");
        r.line(".scenario dedup 30");
        let out = r.line("EXPLAIN ANALYZE SELECT tag_id FROM readings WHERE reader_id <> '';");
        assert!(out.contains("shard 0"), "{out}");
        assert!(out.contains("[rows "), "{out}");
    }

    #[test]
    fn trace_command_round_trip() {
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings;");
        // Nothing recorded while tracing is off.
        let dir = std::env::temp_dir().join("eslev-test-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        r.line(".scenario dedup 10");
        let out = r.line(&format!(".trace {}", path.display()));
        assert!(out.contains("no trace events"), "{out}");
        // Toggle on, feed enough rows to cross the 1-in-64 sampling
        // boundary a few times, dump.
        assert!(r.line(".trace on").contains("enabled"));
        r.line(".scenario dedup 100");
        let out = r.line(&format!(".trace {}", path.display()));
        assert!(out.contains("trace events"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("tuple-admitted"), "{json}");
        assert!(r.line(".trace off").contains("disabled"));
        assert!(r.line(".trace").contains("usage"));
        assert!(r
            .line(".trace /no/such/dir/trace.json")
            .contains("no trace events"));
    }

    #[test]
    fn sharded_trace_merges_shards() {
        let mut r = Repl::with_shards(2).unwrap();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings;");
        assert!(r.line(".trace on").contains("enabled"));
        r.line(".scenario dedup 40");
        r.line(".poll 0");
        let dir = std::env::temp_dir().join("eslev-test-trace-sharded");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let out = r.line(&format!(".trace {}", path.display()));
        assert!(out.contains("trace events"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        // Per-shard timelines carry their shard as the pid.
        assert!(json.contains("\"pid\":0"), "{json}");
        assert!(json.contains("\"pid\":1"), "{json}");
    }

    #[test]
    fn stats_and_streams_show_latency_columns() {
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings;");
        r.line(".scenario dedup 20");
        let out = r.line("SHOW STATS");
        assert!(out.contains("p99="), "{out}");
        let out = r.line("SHOW STREAMS");
        assert!(out.contains("lag_ms="), "{out}");
    }

    #[test]
    fn metrics_command_exports_prom_and_json() {
        let mut r = Repl::new();
        r.line("CREATE STREAM s (tagid VARCHAR, t TIMESTAMP);");
        r.line("SELECT tagid FROM s;");
        let prom = r.line(".metrics");
        assert!(prom.contains("eslev_punctuations_total"), "{prom}");
        assert!(prom.contains("eslev_query_tuples_in_total"), "{prom}");
        let json = r.line(".metrics json");
        assert!(json.contains("\"metrics\""), "{json}");
        assert!(r.line(".metrics xml").contains("unknown format"));
    }

    #[test]
    fn sql_errors_are_reported_inline() {
        let mut r = Repl::new();
        let out = r.line("SELECT * FROM missing;");
        assert!(out.starts_with("error:"), "{out}");
        // The shell recovers for the next statement.
        let out = r.line("CREATE STREAM s (tagid VARCHAR, t TIMESTAMP);");
        assert!(out.contains("created"), "{out}");
    }

    #[test]
    fn show_shards_in_single_mode_points_at_flag() {
        let mut r = Repl::new();
        let out = r.line("SHOW SHARDS;");
        assert!(out.contains("--shards"), "{out}");
    }

    #[test]
    fn show_rejected_lists_dead_letters_with_reasons() {
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        let out = r.line("SHOW REJECTED;");
        assert!(out.contains("no rejected rows"), "{out}");
        if let Backend::Single(e) = &mut r.backend {
            let _ = e.push("readings", vec![Value::Int(1)]);
            e.set_disorder_tolerance("readings", Duration::from_millis(100))
                .unwrap();
            for ms in [1000u64, 2000] {
                e.push(
                    "readings",
                    vec![
                        Value::str("r"),
                        Value::str("t"),
                        Value::Ts(Timestamp::from_millis(ms)),
                    ],
                )
                .unwrap();
            }
            e.push(
                "readings",
                vec![
                    Value::str("r"),
                    Value::str("too-late"),
                    Value::Ts(Timestamp::from_millis(10)),
                ],
            )
            .unwrap();
        }
        let out = r.line("SHOW REJECTED;");
        assert!(out.contains("2 rejected"), "{out}");
        assert!(out.contains("malformed"), "{out}");
        assert!(out.contains("late"), "{out}");
    }

    #[test]
    fn show_rejected_merges_router_and_shard_buffers() {
        let mut r = Repl::with_shards(2).unwrap();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        if let Backend::Sharded(se) = &mut r.backend {
            se.set_disorder_tolerance("readings", Duration::from_millis(100))
                .unwrap();
            for (ms, tag) in [(1000u64, "a"), (2000, "b")] {
                se.push(
                    "readings",
                    vec![
                        Value::str("r"),
                        Value::str(tag),
                        Value::Ts(Timestamp::from_millis(ms)),
                    ],
                )
                .unwrap();
            }
            // Behind the released frontier (1000): rejected at the router.
            se.push(
                "readings",
                vec![
                    Value::str("r"),
                    Value::str("too-late"),
                    Value::Ts(Timestamp::from_millis(10)),
                ],
            )
            .unwrap();
            se.flush().unwrap();
            assert_eq!(se.late_tuples(), 1);
        }
        let out = r.line("SHOW REJECTED;");
        assert!(out.contains("1 rejected"), "{out}");
        assert!(out.contains("late"), "{out}");
        assert!(out.contains("shard -"), "{out}");
    }

    #[test]
    fn tolerate_command_buffers_and_dead_letters_via_repl_surface() {
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings;");
        assert!(r.line(".tolerate ghost 1").contains("error"));
        assert!(r.line(".tolerate readings").contains("usage"));
        let out = r.line(".tolerate readings 1");
        assert!(out.contains("tolerates"), "{out}");
        // Out-of-order CSV: 5.0 then 6.0 releases 5.0 (slack 1 s); the
        // straggler at 1.0 is behind the released frontier → dead letter.
        let dir = std::env::temp_dir().join("eslev-test-tolerate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disorder.csv");
        std::fs::write(&path, "gate,tag-a,5.0\ngate,tag-b,6.0\ngate,tag-late,1.0\n").unwrap();
        let out = r.line(&format!(".feed readings {}", path.display()));
        assert!(out.contains("fed 3 rows"), "{out}");
        let out = r.line("SHOW STREAMS");
        assert!(out.contains("slack="), "{out}");
        let out = r.line("SHOW REJECTED");
        assert!(out.contains("late"), "{out}");
        assert!(out.contains("tag-late"), "{out}");
        // Only the in-order prefix reached the query; tag-b is buffered.
        let out = r.line(".poll 0");
        assert!(out.contains("tag-a") && !out.contains("tag-late"), "{out}");
    }

    #[test]
    fn sharded_ddl_query_scenario_poll_cycle() {
        let mut r = Repl::with_shards(4).unwrap();
        let out = r.line(
            "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);",
        );
        assert!(out.contains("created"), "{out}");
        let out = r.line("SELECT tag_id FROM readings WHERE reader_id <> '';");
        assert!(out.contains(".poll 0"), "{out}");
        let out = r.line(".scenario dedup 50");
        assert!(out.contains("physical presences"), "{out}");
        let out = r.line(".poll 0");
        assert!(out.contains("new rows"), "{out}");
        assert!(out.contains("tag-"), "{out}");
        // SHOW SHARDS renders per-shard progress and the resolved route.
        let out = r.line("SHOW SHARDS;");
        assert!(out.contains("4 shards"), "{out}");
        assert!(out.contains("route readings"), "{out}");
        assert!(out.contains("key("), "{out}");
        // Aggregated stats and streams.
        let out = r.line("SHOW STATS;");
        assert!(out.contains("live"), "{out}");
        let out = r.line("SHOW STREAMS;");
        assert!(out.contains("readings"), "{out}");
        // Metrics carry shard labels.
        let json = r.line(".metrics json");
        assert!(json.contains("eslev_shard_tuples_total"), "{json}");
        // Advance and unsupported commands answer gracefully.
        assert!(r.line(".advance 60").contains("advanced"));
        assert!(r.line(".materialize readings 10").contains("--shards"));
        assert!(r.line("?SELECT * FROM readings").contains("--shards"));
    }

    #[test]
    fn checkpoint_and_show_recovery_statements() {
        // Single mode: CHECKPOINT snapshots in-process, SHOW RECOVERY
        // points at the sharded flag.
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings;");
        r.line(".scenario dedup 20");
        let out = r.line("CHECKPOINT;");
        assert!(out.contains("checkpoint taken"), "{out}");
        let out = r.line("SHOW RECOVERY;");
        assert!(out.contains("--shards"), "{out}");

        // Sharded mode: CHECKPOINT reports per-shard causes and SHOW
        // RECOVERY the counters; case-insensitive like the other
        // observability statements.
        let mut r = Repl::with_shards(3).unwrap();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings;");
        r.line(".scenario dedup 30");
        let out = r.line("checkpoint");
        assert!(out.contains("across 3 shards"), "{out}");
        assert!(out.contains("checkpoint_cause="), "{out}");
        let out = r.line("show recovery");
        assert!(out.contains("checkpoints=1"), "{out}");
        assert!(out.contains("restarts=0"), "{out}");
        assert!(out.contains("journal_len="), "{out}");
        // Extra words flow through to the SQL parser, like SHOW STATS.
        let out = r.line("CHECKPOINT NOW;");
        assert!(out.starts_with("error:"), "{out}");
    }

    #[test]
    fn columnar_flag_shows_up_in_explain_surfaces() {
        // Row mode: capable stages report columnar=row.
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings WHERE reader_id <> '';");
        r.line(".scenario dedup 20");
        let out = r.line("EXPLAIN SELECT tag_id FROM readings WHERE reader_id <> '';");
        assert!(out.contains("columnar: row"), "{out}");
        let out = r.line("EXPLAIN ANALYZE SELECT tag_id FROM readings WHERE reader_id <> '';");
        assert!(out.contains("columnar=row"), "{out}");

        // Columnar mode: the same plan reports columnar=yes and still
        // answers the query.
        let mut r = Repl::with_config(None, false, true).unwrap();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings WHERE reader_id <> '';");
        r.line(".scenario dedup 20");
        let out = r.line("EXPLAIN SELECT tag_id FROM readings WHERE reader_id <> '';");
        assert!(out.contains("columnar: yes"), "{out}");
        let out = r.line("EXPLAIN ANALYZE SELECT tag_id FROM readings WHERE reader_id <> '';");
        assert!(out.contains("columnar=yes"), "{out}");
        let out = r.line(".poll 0");
        assert!(out.contains("tag-"), "{out}");

        // Sharded columnar mode works end to end as well.
        let mut r = Repl::with_config(Some(2), false, true).unwrap();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings WHERE reader_id <> '';");
        r.line(".scenario dedup 20");
        let out = r.line("EXPLAIN ANALYZE SELECT tag_id FROM readings WHERE reader_id <> '';");
        assert!(out.contains("columnar=yes"), "{out}");
        let out = r.line(".poll 0");
        assert!(out.contains("tag-"), "{out}");
    }

    #[test]
    fn sharded_output_matches_single_mode() {
        // The same REPL session in single and 3-shard mode must poll the
        // same rows in the same order.
        let mut rows = Vec::new();
        for mode in [1usize, 3] {
            let mut r = if mode == 1 {
                Repl::new()
            } else {
                Repl::with_shards(mode).unwrap()
            };
            r.line(
                "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);",
            );
            r.line("SELECT tag_id FROM readings;");
            let dir = std::env::temp_dir().join("eslev-test-shard-feed");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("rows.csv");
            std::fs::write(
                &path,
                "g,tag-1,1.0\ng,tag-2,1.5\ng,tag-1,2.0\ng,tag-3,2.5\ng,tag-2,3.0\n",
            )
            .unwrap();
            let out = r.line(&format!(".feed readings {}", path.display()));
            assert!(out.contains("fed 5 rows"), "{out}");
            rows.push(r.line(".poll 0"));
        }
        assert_eq!(rows[0], rows[1], "sharded poll must match single mode");
    }
}
