//! The interactive ESL-EV shell (see `src/bin/eslev.rs`).
//!
//! A line-oriented REPL over one [`Engine`]: SQL statements end with `;`
//! and execute through the language front-end; `?`-prefixed queries run
//! as ad-hoc snapshot queries; `.`-commands drive simulation — feeding
//! scenario workloads, advancing stream time, materializing windows and
//! inspecting query state. The logic lives here (library) so tests can
//! drive the shell without a subprocess.

use crate::prelude::*;
use eslev_dsms::engine::QueryStats;
use std::fmt::Write as _;

/// REPL state: the engine plus collectors of registered SELECTs.
pub struct Repl {
    engine: Engine,
    /// `(query name, collector)` for bare SELECTs, in registration order.
    collectors: Vec<(String, Collector)>,
    /// Partial statement buffer (until `;`).
    pending: String,
}

impl Default for Repl {
    fn default() -> Self {
        Repl::new()
    }
}

impl Repl {
    /// Fresh shell with EPC UDFs pre-registered.
    pub fn new() -> Repl {
        let mut engine = Engine::new();
        register_epc_udfs(engine.functions_mut());
        register_epc_match_udf(engine.functions_mut());
        Repl {
            engine,
            collectors: Vec::new(),
            pending: String::new(),
        }
    }

    /// Access to the underlying engine (tests).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Feed one input line; returns the text to print (possibly empty,
    /// e.g. while a multi-line statement is still open).
    pub fn line(&mut self, input: &str) -> String {
        let trimmed = input.trim();
        if trimmed.is_empty() {
            return String::new();
        }
        if self.pending.is_empty() {
            if let Some(cmd) = trimmed.strip_prefix('.') {
                return self.command(cmd);
            }
            if let Some(q) = trimmed.strip_prefix('?') {
                return self.ad_hoc(q);
            }
            // Observability statements are intercepted before the SQL
            // parser: they are shell-level, not part of the language.
            if let Some(out) = self.observability(trimmed) {
                return out;
            }
        }
        self.pending.push_str(input);
        self.pending.push('\n');
        if !trimmed.ends_with(';') {
            return String::new();
        }
        let stmt = std::mem::take(&mut self.pending);
        self.execute(&stmt)
    }

    fn execute(&mut self, sql: &str) -> String {
        match execute_script(&mut self.engine, sql) {
            Err(e) => format!("error: {e}"),
            Ok(outcomes) => {
                let mut out = String::new();
                for o in outcomes {
                    match o {
                        ExecOutcome::Created => out.push_str("created.\n"),
                        ExecOutcome::Modified(n) => {
                            let _ = writeln!(out, "{n} rows modified.");
                        }
                        ExecOutcome::Registered(_) => {
                            out.push_str("continuous query registered.\n")
                        }
                        ExecOutcome::Collected(id, c) => {
                            let name = self.engine.query_name(id).to_string();
                            let _ = writeln!(
                                out,
                                "collecting query #{} ({name}); read it with .poll {}",
                                self.collectors.len(),
                                self.collectors.len()
                            );
                            self.collectors.push((name, c));
                        }
                    }
                }
                out
            }
        }
    }

    /// Handle `SHOW STATS`, `SHOW STREAMS` and `EXPLAIN <query>`
    /// (case-insensitive, optional trailing `;`). Returns `None` when the
    /// line is not one of them, letting it flow to the SQL front-end.
    fn observability(&self, trimmed: &str) -> Option<String> {
        let stmt = trimmed.trim_end_matches(';').trim();
        let mut words = stmt.split_whitespace();
        let first = words.next()?.to_ascii_uppercase();
        match first.as_str() {
            "SHOW" => {
                let what = words.next()?.to_ascii_uppercase();
                if words.next().is_some() {
                    return None;
                }
                match what.as_str() {
                    "STATS" => Some(render_stats(&self.engine.query_stats())),
                    "STREAMS" => Some(render_streams(&self.engine.stream_stats())),
                    _ => None,
                }
            }
            "EXPLAIN" => {
                let name = words.next()?;
                if words.next().is_some() {
                    return None;
                }
                match self.engine.query_report_by_name(name) {
                    Some(r) => Some(r.render()),
                    None => Some(format!(
                        "error: no query named `{name}` — SHOW STATS lists them"
                    )),
                }
            }
            _ => None,
        }
    }

    fn ad_hoc(&mut self, sql: &str) -> String {
        match ad_hoc(&self.engine, sql) {
            Err(e) => format!("error: {e}"),
            Ok(rows) => render_rows(&rows),
        }
    }

    fn command(&mut self, cmd: &str) -> String {
        let mut parts = cmd.split_whitespace();
        let verb = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match verb {
            "help" => HELP.to_string(),
            "stats" => render_stats(&self.engine.query_stats()),
            "metrics" => match args.first().copied().unwrap_or("prom") {
                "prom" => self.engine.metrics_snapshot().to_prometheus(),
                "json" => self.engine.metrics_snapshot().to_json(),
                other => format!("unknown format `{other}` — use prom or json"),
            },
            "advance" => match args.first().and_then(|s| s.parse::<u64>().ok()) {
                Some(secs) => {
                    let target = self.engine.now() + Duration::from_secs(secs);
                    match self.engine.advance_to(target) {
                        Ok(()) => format!("stream time advanced to {target}"),
                        Err(e) => format!("error: {e}"),
                    }
                }
                None => "usage: .advance <seconds>".to_string(),
            },
            "materialize" => match (args.first(), args.get(1).and_then(|s| s.parse::<u64>().ok())) {
                (Some(stream), Some(secs)) => match self
                    .engine
                    .materialize(stream, WindowExtent::Preceding(Duration::from_secs(secs)))
                {
                    Ok(_) => format!("materialized `{stream}` over the last {secs} s; query it with ?SELECT ..."),
                    Err(e) => format!("error: {e}"),
                },
                _ => "usage: .materialize <stream> <seconds>".to_string(),
            },
            "poll" => {
                let idx = args.first().and_then(|s| s.parse::<usize>().ok());
                match idx {
                    Some(i) => match self.collectors.get(i) {
                        Some((name, c)) => {
                            let rows = c.take();
                            format!("{name}: {} new rows\n{}", rows.len(), render_rows(&rows))
                        }
                        None => format!("no collected query #{i}"),
                    },
                    None => {
                        let mut out = String::new();
                        for (i, (name, c)) in self.collectors.iter().enumerate() {
                            let _ = writeln!(out, "#{i} {name}: {} rows pending", c.len());
                        }
                        if out.is_empty() {
                            out.push_str("no collected queries.\n");
                        }
                        out
                    }
                }
            }
            "feed" => match (args.first(), args.get(1)) {
                (Some(stream), Some(path)) => self.feed_csv(stream, path),
                _ => "usage: .feed <stream> <file.csv>   (columns in schema order;                       TIMESTAMP columns as seconds, e.g. 12.5)"
                    .to_string(),
            },
            "scenario" => self.scenario(&args),
            "quit" | "exit" => "bye.".to_string(),
            other => format!("unknown command `.{other}` — try .help"),
        }
    }

    /// Generate and feed a named scenario workload; creates the streams
    /// the scenario needs when absent.
    fn scenario(&mut self, args: &[&str]) -> String {
        use crate::rfid::scenario as sc;
        let Some(name) = args.first() else {
            return "usage: .scenario <dedup|packing|clinic|door|qc|tracking|vitals> [n]"
                .to_string();
        };
        let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
        // Re-running a scenario must not rewind stream time: shift every
        // generated timestamp past the engine's current high-water mark.
        let base = Duration::from_micros(self.engine.now().as_micros());
        let shift = move |ts: Timestamp| ts + base;
        let ensure = |engine: &mut Engine, ddl: &str| -> Result<(), DsmsError> {
            for stmt in ddl.split(';').filter(|s| !s.trim().is_empty()) {
                // Ignore duplicate-name errors so scenarios re-run.
                match execute(engine, stmt) {
                    Ok(_) => {}
                    Err(DsmsError::Duplicate(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        };
        let result: Result<String, DsmsError> = (|| match *name {
            "dedup" => {
                ensure(
                    &mut self.engine,
                    "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP)",
                )?;
                let w = sc::dedup::generate(&sc::dedup::DedupConfig {
                    presences: n,
                    ..Default::default()
                });
                for r in &w.readings {
                    self.engine.push(
                        "readings",
                        vec![
                            Value::str(&r.reader),
                            Value::str(&r.tag),
                            Value::Ts(shift(r.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} raw readings ({} physical presences) into `readings`",
                    w.readings.len(),
                    w.unique_presences
                ))
            }
            "packing" => {
                ensure(
                    &mut self.engine,
                    "CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM R2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP)",
                )?;
                let w = sc::packing::generate(&sc::packing::PackingConfig {
                    cases: n,
                    ..Default::default()
                });
                let feed = merge_feeds(vec![
                    ("r1".into(), w.products.clone()),
                    ("r2".into(), w.cases.clone()),
                ]);
                for item in &feed {
                    self.engine.push(
                        &item.stream,
                        vec![
                            Value::str(&item.reading.reader),
                            Value::str(&item.reading.tag),
                            Value::Ts(shift(item.reading.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} product + {} case readings into `R1`/`R2` ({} cases of truth)",
                    w.products.len(),
                    w.cases.len(),
                    w.truth.len()
                ))
            }
            "clinic" => {
                ensure(
                    &mut self.engine,
                    "CREATE STREAM A1 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM A2 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM A3 (staff VARCHAR, tagid VARCHAR, tagtime TIMESTAMP)",
                )?;
                let w = sc::clinic::generate(&sc::clinic::ClinicConfig {
                    runs: n,
                    ..Default::default()
                });
                let streams = ["a1", "a2", "a3"];
                for (port, r) in &w.feed {
                    self.engine.push(
                        streams[*port],
                        vec![
                            Value::str(&r.reader),
                            Value::str(&r.tag),
                            Value::Ts(shift(r.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} operations ({} runs, {} violations) into `A1`/`A2`/`A3`; \
                     .advance past the deadline to flush timeouts",
                    w.feed.len(),
                    w.truth.len(),
                    w.violations
                ))
            }
            "door" => {
                ensure(
                    &mut self.engine,
                    "CREATE STREAM tag_readings (tagid VARCHAR, tagtype VARCHAR, tagtime TIMESTAMP)",
                )?;
                let w = sc::door::generate(&sc::door::DoorConfig {
                    item_exits: n,
                    ..Default::default()
                });
                for r in &w.readings {
                    self.engine.push(
                        "tag_readings",
                        vec![
                            Value::str(&r.tag),
                            Value::str(r.tagtype),
                            Value::Ts(shift(r.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} door readings ({} thefts of truth) into `tag_readings`",
                    w.readings.len(),
                    w.thefts.len()
                ))
            }
            "qc" => {
                ensure(
                    &mut self.engine,
                    "CREATE STREAM C1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM C2 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM C3 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
                     CREATE STREAM C4 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP)",
                )?;
                let w = sc::qc_line::generate(&sc::qc_line::QcConfig {
                    products: n,
                    ..Default::default()
                });
                let feeds: Vec<(String, Vec<Reading>)> = w
                    .feeds
                    .iter()
                    .enumerate()
                    .map(|(i, f)| (format!("c{}", i + 1), f.clone()))
                    .collect();
                for item in merge_feeds(feeds) {
                    self.engine.push(
                        &item.stream,
                        vec![
                            Value::str(&item.reading.reader),
                            Value::str(&item.reading.tag),
                            Value::Ts(shift(item.reading.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed the QC line ({} products, {} completed) into `C1`..`C4`",
                    n,
                    w.completed.len()
                ))
            }
            "tracking" => {
                ensure(
                    &mut self.engine,
                    "CREATE STREAM tag_locations (readerid VARCHAR, tid VARCHAR, tagtime TIMESTAMP, loc VARCHAR)",
                )?;
                let w = sc::tracking::generate(&sc::tracking::TrackingConfig::default());
                for r in &w.readings {
                    self.engine.push(
                        "tag_locations",
                        vec![
                            Value::str(&r.reader),
                            Value::str(&r.tag),
                            Value::Ts(shift(r.ts)),
                            Value::str(&r.location),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} location readings ({} distinct pairs) into `tag_locations`",
                    w.readings.len(),
                    w.distinct_pairs
                ))
            }
            "vitals" => {
                ensure(
                    &mut self.engine,
                    "CREATE STREAM vitals (patient VARCHAR, bp INT, t TIMESTAMP)",
                )?;
                let w = sc::vitals::generate(&sc::vitals::VitalsConfig::default());
                for r in &w.readings {
                    self.engine.push(
                        "vitals",
                        vec![
                            Value::str(&r.patient),
                            Value::Int(r.bp),
                            Value::Ts(shift(r.ts)),
                        ],
                    )?;
                }
                Ok(format!(
                    "fed {} vitals readings ({} episodes) into `vitals`",
                    w.readings.len(),
                    w.episodes.len()
                ))
            }
            other => Ok(format!("unknown scenario `{other}` — try .help")),
        })();
        match result {
            Ok(s) => s,
            Err(e) => format!("error: {e}"),
        }
    }
}

impl Repl {
    /// Feed a headerless CSV file into a stream: one reading per line,
    /// columns in schema order, TIMESTAMP columns given in (fractional)
    /// seconds. Lines starting with `#` are skipped.
    fn feed_csv(&mut self, stream: &str, path: &str) -> String {
        let schema = match self.engine.stream_schema(stream) {
            Ok(s) => s,
            Err(e) => return format!("error: {e}"),
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return format!("error: cannot read `{path}`: {e}"),
        };
        let mut pushed = 0usize;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != schema.arity() {
                return format!(
                    "error: line {}: expected {} fields, got {} (pushed {pushed} rows)",
                    lineno + 1,
                    schema.arity(),
                    fields.len()
                );
            }
            let mut values = Vec::with_capacity(fields.len());
            for (f, col) in fields.iter().zip(&schema.columns) {
                let v = match col.ty {
                    ValueType::Str => Ok(Value::str(*f)),
                    ValueType::Int => f.parse::<i64>().map(Value::Int).map_err(|e| e.to_string()),
                    ValueType::Float => f
                        .parse::<f64>()
                        .map(Value::Float)
                        .map_err(|e| e.to_string()),
                    ValueType::Bool => f
                        .parse::<bool>()
                        .map(Value::Bool)
                        .map_err(|e| e.to_string()),
                    ValueType::Ts => f
                        .parse::<f64>()
                        .map(|secs| Value::Ts(Timestamp::from_micros((secs * 1e6) as u64)))
                        .map_err(|e| e.to_string()),
                    ValueType::Null => Ok(Value::Null),
                };
                match v {
                    Ok(v) => values.push(v),
                    Err(e) => {
                        return format!(
                            "error: line {}: bad `{}` for column {}: {e} (pushed {pushed} rows)",
                            lineno + 1,
                            f,
                            col.name
                        )
                    }
                }
            }
            if let Err(e) = self.engine.push(stream, values) {
                return format!("error: line {}: {e} (pushed {pushed} rows)", lineno + 1);
            }
            pushed += 1;
        }
        format!("fed {pushed} rows from `{path}` into `{stream}`")
    }
}

fn render_rows(rows: &[Tuple]) -> String {
    let mut out = String::new();
    for r in rows.iter().take(50) {
        let _ = writeln!(out, "{r}");
    }
    if rows.len() > 50 {
        let _ = writeln!(out, "... ({} more rows)", rows.len() - 50);
    }
    out
}

fn render_stats(stats: &[QueryStats]) -> String {
    let mut out = String::new();
    for s in stats {
        let _ = writeln!(
            out,
            "{} {:<32} in={:<8} out={:<8} emitted={:<8} retained={}",
            if s.active { "live" } else { "dead" },
            s.name,
            s.tuples_in,
            s.tuples_out,
            s.emitted,
            s.retained
        );
    }
    if out.is_empty() {
        out.push_str("no queries registered.\n");
    }
    out
}

fn render_streams(streams: &[StreamInfo]) -> String {
    let mut out = String::new();
    for s in streams {
        let _ = write!(
            out,
            "{:<24} pushed={:<10} last_ts={}",
            s.name, s.pushed, s.last_ts
        );
        if let Some(slack) = s.disorder_slack {
            let _ = write!(out, " buffered={} slack={slack}", s.buffered);
        }
        out.push('\n');
    }
    if out.is_empty() {
        out.push_str("no streams registered.\n");
    }
    out
}

const HELP: &str = r#"ESL-EV shell:
  <SQL statement>;           run a CREATE / INSERT INTO / SELECT statement
                             (bare SELECTs collect; read them with .poll)
  ?SELECT ...                one-shot ad-hoc snapshot query
                             (needs a table or a .materialize'd stream)
  SHOW STATS                 per-query flow counters (in/out/emitted/retained)
  SHOW STREAMS               per-stream push counts and stream time
  EXPLAIN <query>            per-operator counters and sampled latencies
  .feed <stream> <file.csv>  feed a headerless CSV (cols in schema order,
                             TIMESTAMP columns as fractional seconds)
  .scenario <name> [n]       feed a simulated workload:
                             dedup | packing | clinic | door | qc | tracking | vitals
  .advance <seconds>         advance stream time (fires window expirations)
  .materialize <stream> <s>  keep the last <s> seconds queryable via ?SELECT
  .poll [i]                  drain collected rows of query i (or list all)
  .stats                     per-query emitted/retained counters
  .metrics [prom|json]       full metrics snapshot (Prometheus text or JSON)
  .help                      this text
  .quit                      exit
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_commands() {
        let mut r = Repl::new();
        assert!(r.line(".help").contains(".scenario"));
        assert!(r.line(".bogus").contains("unknown command"));
        assert!(r.line("").is_empty());
    }

    #[test]
    fn ddl_query_feed_poll_cycle() {
        let mut r = Repl::new();
        let out = r.line(
            "CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);",
        );
        assert!(out.contains("created"), "{out}");
        // Multi-line statement.
        assert!(r.line("SELECT tag_id FROM readings").is_empty());
        let out = r.line("WHERE reader_id = 'gate-reader';");
        assert!(out.contains(".poll 0"), "{out}");
        let out = r.line(".scenario dedup 50");
        assert!(out.contains("physical presences"), "{out}");
        let out = r.line(".poll 0");
        assert!(out.contains("new rows"), "{out}");
        assert!(out.contains("tag-"), "{out}");
    }

    #[test]
    fn adhoc_and_materialize() {
        let mut r = Repl::new();
        r.line("CREATE STREAM vitals (patient VARCHAR, bp INT, t TIMESTAMP);");
        let out = r.line("?SELECT * FROM vitals");
        assert!(out.contains("materialize"), "{out}");
        let out = r.line(".materialize vitals 3600");
        assert!(out.contains("materialized"), "{out}");
        r.line(".scenario vitals");
        let out = r.line("?SELECT count(bp) FROM vitals");
        assert!(!out.contains("error"), "{out}");
    }

    #[test]
    fn scenario_reruns_without_duplicate_errors() {
        let mut r = Repl::new();
        assert!(!r.line(".scenario packing 10").contains("error"));
        assert!(!r.line(".scenario packing 10").contains("error"));
    }

    #[test]
    fn advance_and_stats() {
        let mut r = Repl::new();
        r.line("CREATE STREAM s (tagid VARCHAR, t TIMESTAMP);");
        r.line("SELECT tagid FROM s;");
        let out = r.line(".advance 60");
        assert!(out.contains("advanced"), "{out}");
        let out = r.line(".stats");
        assert!(out.contains("live"), "{out}");
    }

    #[test]
    fn feed_csv_round_trip() {
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings;");
        let dir = std::env::temp_dir().join("eslev-test-feed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("readings.csv");
        std::fs::write(
            &path,
            "# reader, tag, seconds\ngate,tag-1,1.5\ngate,tag-2,2.25\n",
        )
        .unwrap();
        let out = r.line(&format!(".feed readings {}", path.display()));
        assert!(out.contains("fed 2 rows"), "{out}");
        let out = r.line(".poll 0");
        assert!(out.contains("tag-1") && out.contains("tag-2"), "{out}");
        // Bad arity reported with line number.
        std::fs::write(&path, "only-two,fields\n").unwrap();
        let out = r.line(&format!(".feed readings {}", path.display()));
        assert!(out.contains("line 1"), "{out}");
        // Missing file / unknown stream.
        assert!(r.line(".feed readings /no/such/file.csv").contains("error"));
        assert!(r
            .line(&format!(".feed ghost {}", path.display()))
            .contains("error"));
    }

    #[test]
    fn show_stats_show_streams_and_explain() {
        let mut r = Repl::new();
        r.line("CREATE STREAM readings (reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP);");
        r.line("SELECT tag_id FROM readings WHERE reader_id <> '';");
        r.line(".scenario dedup 20");
        // Case-insensitive, trailing semicolon optional.
        let out = r.line("show stats;");
        assert!(out.contains("live"), "{out}");
        assert!(out.contains("in="), "{out}");
        let out = r.line("SHOW STREAMS");
        assert!(out.contains("readings"), "{out}");
        assert!(out.contains("pushed="), "{out}");
        let name = r.engine().query_stats()[0].name.clone();
        let out = r.line(&format!("EXPLAIN {name};"));
        assert!(out.contains("in="), "{out}");
        let out = r.line("EXPLAIN no_such_query");
        assert!(out.contains("error"), "{out}");
        // Non-observability SHOW-like SQL still reaches the parser.
        let out = r.line("SHOW STATS EXTRA WORDS;");
        assert!(out.starts_with("error:"), "{out}");
    }

    #[test]
    fn metrics_command_exports_prom_and_json() {
        let mut r = Repl::new();
        r.line("CREATE STREAM s (tagid VARCHAR, t TIMESTAMP);");
        r.line("SELECT tagid FROM s;");
        let prom = r.line(".metrics");
        assert!(prom.contains("eslev_punctuations_total"), "{prom}");
        assert!(prom.contains("eslev_query_tuples_in_total"), "{prom}");
        let json = r.line(".metrics json");
        assert!(json.contains("\"metrics\""), "{json}");
        assert!(r.line(".metrics xml").contains("unknown format"));
    }

    #[test]
    fn sql_errors_are_reported_inline() {
        let mut r = Repl::new();
        let out = r.line("SELECT * FROM missing;");
        assert!(out.starts_with("error:"), "{out}");
        // The shell recovers for the next statement.
        let out = r.line("CREATE STREAM s (tagid VARCHAR, t TIMESTAMP);");
        assert!(out.contains("created"), "{out}");
    }
}
