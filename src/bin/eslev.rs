//! The ESL-EV interactive shell.
//!
//! ```text
//! $ cargo run --bin eslev
//! eslev> CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
//! eslev> .scenario packing 50
//! eslev> SELECT COUNT(R1*), R2.tagid FROM R1, R2 WHERE SEQ(R1*, R2) MODE CHRONICLE;
//! eslev> .poll 0
//! ```
//!
//! All logic lives in [`eslev::repl`]; this binary is the stdin loop.
//! Pass `--shards N` to run the shell over an EPC-partitioned
//! [`eslev::dsms::shard::ShardedEngine`] (inspect it with `SHOW SHARDS`),
//! `--columnar` to execute capable query chains over SoA column
//! batches (the chosen path shows up in `EXPLAIN ANALYZE`).

use eslev::repl::Repl;
use std::io::{BufRead, Write};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut shards: Option<usize> = None;
    let mut share = false;
    let mut columnar = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => shards = Some(n),
                _ => {
                    eprintln!("--shards needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--share" => share = true,
            "--columnar" => columnar = true,
            other => {
                eprintln!(
                    "unknown argument `{other}` (supported: --shards N, --share, --columnar)"
                );
                std::process::exit(2);
            }
        }
    }
    let mut repl = match Repl::with_config(shards, share, columnar) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    match shards {
        Some(n) => println!("ESL-EV shell ({n} shards) — .help for commands, .quit to exit"),
        None => println!("ESL-EV shell — .help for commands, .quit to exit"),
    }
    print!("eslev> ");
    let _ = stdout.flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed == ".quit" || trimmed == ".exit" {
            println!("bye.");
            break;
        }
        let out = repl.line(&line);
        if !out.is_empty() {
            print!("{out}");
            if !out.ends_with('\n') {
                println!();
            }
        }
        print!("eslev> ");
        let _ = stdout.flush();
    }
}
