//! The ESL-EV interactive shell.
//!
//! ```text
//! $ cargo run --bin eslev
//! eslev> CREATE STREAM R1 (readerid VARCHAR, tagid VARCHAR, tagtime TIMESTAMP);
//! eslev> .scenario packing 50
//! eslev> SELECT COUNT(R1*), R2.tagid FROM R1, R2 WHERE SEQ(R1*, R2) MODE CHRONICLE;
//! eslev> .poll 0
//! ```
//!
//! All logic lives in [`eslev::repl`]; this binary is the stdin loop.

use eslev::repl::Repl;
use std::io::{BufRead, Write};

fn main() {
    let mut repl = Repl::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("ESL-EV shell — .help for commands, .quit to exit");
    print!("eslev> ");
    let _ = stdout.flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed == ".quit" || trimmed == ".exit" {
            println!("bye.");
            break;
        }
        let out = repl.line(&line);
        if !out.is_empty() {
            print!("{out}");
            if !out.ends_with('\n') {
                println!();
            }
        }
        print!("eslev> ");
        let _ = stdout.flush();
    }
}
